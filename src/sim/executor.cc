#include "sim/executor.hh"

#include <algorithm>
#include <exception>

#include "sim/faults.hh"
#include "sim/policy.hh"
#include "support/logging.hh"
#include "trace/event.hh"

namespace lfm::sim
{

namespace
{

thread_local Executor *tExecutor = nullptr;
thread_local ThreadId tTid = trace::kNoThread;

/** Baton values for the fast atomic handoff. */
constexpr std::uint32_t kBatonGo = 1;
constexpr std::uint32_t kBatonAbort = 2;

/** Busy-poll iterations before falling back to a futex wait. On a
 * single-hardware-thread machine spinning can only delay the peer,
 * so the budget collapses to zero there. */
int
spinBudget()
{
    static const int budget =
        std::thread::hardware_concurrency() > 1 ? 128 : 0;
    return budget;
}

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::this_thread::yield();
#endif
}

} // namespace

Executor::Executor() = default;

Executor::~Executor()
{
    // run() always joins its host threads before returning, so there
    // is nothing left to clean up here.
}

Executor &
Executor::current()
{
    LFM_ASSERT(tExecutor != nullptr,
               "simulator API used outside of a simulation");
    return *tExecutor;
}

Executor *
Executor::currentPtr()
{
    return tExecutor;
}

bool
Executor::insideSimThread() const
{
    return tExecutor == this && tTid != trace::kNoThread;
}

// ------------------------------------------------------------------
// Registration
// ------------------------------------------------------------------

ObjectId
Executor::registerObject(trace::ObjectKind kind, std::string name,
                         std::uint32_t flags)
{
    std::lock_guard<std::mutex> guard(m_);
    const ObjectId id = nextObjectId_++;
    exec_.trace.registerObject({id, kind, std::move(name), flags});
    if (kind == trace::ObjectKind::Variable)
        cells_[id] = CellState{(flags & trace::kStartsUninit) == 0, false};
    return id;
}

void
Executor::setCellUninitialized(ObjectId cell)
{
    std::lock_guard<std::mutex> guard(m_);
    cells_[cell].initialized = false;
}

void
Executor::initMutex(ObjectId m, bool recursive)
{
    std::lock_guard<std::mutex> guard(m_);
    mutexes_[m].recursive = recursive;
}

void
Executor::initSemaphore(ObjectId sem, std::int64_t count)
{
    std::lock_guard<std::mutex> guard(m_);
    SemState &s = sems_[sem];
    s.count = count;
    s.postSeqs.assign(static_cast<std::size_t>(std::max<std::int64_t>(
                          count, 0)),
                      trace::kSpuriousWakeup);
}

void
Executor::initBarrier(ObjectId bar, int parties)
{
    std::lock_guard<std::mutex> guard(m_);
    LFM_ASSERT(parties >= 1, "barrier needs at least one party");
    barriers_[bar].parties = parties;
}

// ------------------------------------------------------------------
// Run orchestration
// ------------------------------------------------------------------

Execution
Executor::run(const ProgramFactory &factory, SchedulePolicy &policy,
              const ExecOptions &options)
{
    LFM_ASSERT(!running_, "Executor::run is not reentrant");
    running_ = true;

    exec_ = Execution{};
    threads_.clear();
    mutexes_.clear();
    rwlocks_.clear();
    sems_.clear();
    barriers_.clear();
    cells_.clear();
    threadObjToTid_.clear();
    granted_ = trace::kNoThread;
    abortFlag_ = false;
    lastRun_ = trace::kNoThread;
    nextObjectId_ = 1;
    waitArrivalCounter_ = 0;
    fastHandoff_ = !options.legacyHandoff;
    collectTrace_ = options.collectTrace;
    recordDecisions_ = options.recordDecisions;
    seqCounter_ = 0;
    unparked_.store(0, std::memory_order_relaxed);
    choicesScratch_.clear();
    faults_ = options.faults;
    if (faults_ != nullptr) {
        // Per-execution tryLock-fault stream: a pure function of
        // (plan seed, execution seed), so faulted runs replay.
        std::uint64_t state =
            faults_->seed ^ (options.seed * 0x9e3779b97f4a7c15ull) ^
            0x7431f0c4ull;
        faultRng_ = support::Rng(support::splitMix64(state));
    }

    Executor *prevExec = tExecutor;
    ThreadId prevTid = tTid;
    tExecutor = this;
    tTid = trace::kNoThread;

    Program program = factory();
    LFM_ASSERT(!program.threads.empty(), "program has no threads");

    policy.beginExecution(options.seed);

    {
        std::lock_guard<std::mutex> guard(m_);
        for (auto &spec : program.threads) {
            launchThread(std::move(spec.name), std::move(spec.body),
                         false, 0);
        }
    }

    schedulerLoop(policy, options);

    for (auto &lt : threads_) {
        if (lt->host.joinable())
            lt->host.join();
    }

    // The oracle judges final state, which only exists for runs that
    // actually completed; truncated / cancelled / deadline-expired
    // and deadlocked runs are reported through their flags instead.
    if (program.oracle &&
        exec_.outcome == support::RunOutcome::Completed &&
        !exec_.deadlocked)
        exec_.oracleFailure = program.oracle();

    tExecutor = prevExec;
    tTid = prevTid;
    running_ = false;
    return std::move(exec_);
}

ThreadId
Executor::launchThread(std::string name, std::function<void()> body,
                       bool hasParent, SeqNo spawnSeq)
{
    // Caller holds m_.
    const ThreadId tid = static_cast<ThreadId>(threads_.size());
    auto lt = std::make_unique<LogicalThread>();
    lt->tid = tid;
    lt->name = name.empty() ? "T" + std::to_string(tid) : std::move(name);
    lt->body = std::move(body);
    lt->status = ThreadStatus::Starting;
    lt->hasParent = hasParent;
    lt->spawnSeq = spawnSeq;

    const ObjectId objId = nextObjectId_++;
    lt->objId = objId;
    exec_.trace.registerObject(
        {objId, trace::ObjectKind::Thread, lt->name, 0});
    exec_.trace.registerThread(tid, lt->name);
    threadObjToTid_[objId] = tid;

    LogicalThread *raw = lt.get();
    threads_.push_back(std::move(lt));
    // The fresh host counts as unparked until it reaches its first
    // schedule point; increment before it can possibly park.
    unparked_.fetch_add(1, std::memory_order_relaxed);
    raw->host = std::thread([this, raw] { threadMain(raw); });
    return tid;
}

SeqNo
Executor::record(trace::EventKind kind, ObjectId obj, ObjectId obj2,
                 std::uint64_t aux, std::string label)
{
    // Caller holds m_.
    if (!collectTrace_)
        return seqCounter_++;
    trace::Event event;
    event.thread = tTid;
    event.kind = kind;
    event.obj = obj;
    event.obj2 = obj2;
    event.aux = aux;
    event.label = std::move(label);
    return exec_.trace.append(std::move(event));
}

// ------------------------------------------------------------------
// Scheduler-loop side
// ------------------------------------------------------------------

void
Executor::waitQuiescent(std::unique_lock<std::mutex> &lk)
{
    cv_.wait(lk, [this] {
        // An outstanding grant means the chosen thread has not woken
        // yet (it is still flagged AtPoint); wait for it to consume
        // the baton and park again.
        if (granted_ != trace::kNoThread)
            return false;
        for (const auto &lt : threads_) {
            if (lt->status != ThreadStatus::AtPoint &&
                lt->status != ThreadStatus::Finished)
                return false;
        }
        return true;
    });
}

void
Executor::awaitQuiescentFast(std::unique_lock<std::mutex> &lk)
{
    lk.unlock();
    for (int spins = spinBudget();;) {
        const std::uint32_t v =
            unparked_.load(std::memory_order_acquire);
        if (v == 0)
            break;
        if (spins > 0) {
            --spins;
            cpuRelax();
        } else {
            // Returns immediately if the value moved past v; the
            // last decrement to zero always notifies.
            unparked_.wait(v, std::memory_order_acquire);
        }
    }
    lk.lock();
}

void
Executor::grantAndWait(std::unique_lock<std::mutex> &lk,
                       LogicalThread &lt)
{
    unparked_.fetch_add(1, std::memory_order_relaxed);
    lk.unlock();
    lt.baton.store(kBatonGo, std::memory_order_release);
    lt.baton.notify_one();
    for (int spins = spinBudget();;) {
        const std::uint32_t v =
            unparked_.load(std::memory_order_acquire);
        if (v == 0)
            break;
        if (spins > 0) {
            --spins;
            cpuRelax();
        } else {
            unparked_.wait(v, std::memory_order_acquire);
        }
    }
    lk.lock();
}

bool
Executor::opEnabled(const LogicalThread &lt) const
{
    const PendingOp &op = lt.pending;
    switch (op.kind) {
      case OpKind::MutexLock: {
        auto it = mutexes_.find(op.obj);
        if (it == mutexes_.end())
            return true;
        const MutexState &s = it->second;
        return s.holder == trace::kNoThread ||
               (s.recursive && s.holder == lt.tid);
      }
      case OpKind::RwRdLock: {
        auto it = rwlocks_.find(op.obj);
        return it == rwlocks_.end() ||
               it->second.writer == trace::kNoThread;
      }
      case OpKind::RwWrLock: {
        auto it = rwlocks_.find(op.obj);
        return it == rwlocks_.end() ||
               (it->second.writer == trace::kNoThread &&
                it->second.readers.empty());
      }
      case OpKind::Reacquire: {
        auto it = mutexes_.find(op.obj2);
        return it == mutexes_.end() ||
               it->second.holder == trace::kNoThread;
      }
      case OpKind::SemWait: {
        auto it = sems_.find(op.obj);
        return it != sems_.end() && it->second.count > 0;
      }
      case OpKind::Join:
        return byTid(op.target).status == ThreadStatus::Finished;
      case OpKind::WaitBlock:
      case OpKind::BarrierBlock:
        return false;
      default:
        return true;
    }
}

void
Executor::buildChoices(std::vector<ChoiceRecord> &out,
                       bool spuriousAllowed) const
{
    out.clear();
    for (const auto &lt : threads_) {
        if (lt->status != ThreadStatus::AtPoint)
            continue;
        if (opEnabled(*lt)) {
            out.push_back({lt->tid, false, lt->pending.kind,
                           lt->pending.obj, lt->pending.label});
        } else if (spuriousAllowed &&
                   lt->pending.kind == OpKind::WaitBlock) {
            out.push_back({lt->tid, true, lt->pending.kind,
                           lt->pending.obj, lt->pending.label});
        }
    }
}

void
Executor::captureWaitsFor()
{
    // Caller holds m_. Record why each at-point thread is stuck.
    for (const auto &lt : threads_) {
        if (lt->status != ThreadStatus::AtPoint)
            continue;
        WaitsForEdge edge;
        edge.thread = lt->tid;
        edge.wants = lt->pending.kind;
        switch (lt->pending.kind) {
          case OpKind::MutexLock: {
            edge.obj = lt->pending.obj;
            auto it = mutexes_.find(edge.obj);
            if (it != mutexes_.end())
                edge.holder = it->second.holder;
            break;
          }
          case OpKind::Reacquire: {
            edge.obj = lt->pending.obj2;
            auto it = mutexes_.find(edge.obj);
            if (it != mutexes_.end())
                edge.holder = it->second.holder;
            break;
          }
          case OpKind::RwRdLock:
          case OpKind::RwWrLock: {
            edge.obj = lt->pending.obj;
            auto it = rwlocks_.find(edge.obj);
            if (it != rwlocks_.end()) {
                if (it->second.writer != trace::kNoThread)
                    edge.holder = it->second.writer;
                else if (!it->second.readers.empty())
                    edge.holder = it->second.readers.front();
            }
            break;
          }
          case OpKind::Join:
            edge.obj = byTid(lt->pending.target).objId;
            edge.holder = lt->pending.target;
            break;
          default:
            edge.obj = lt->pending.obj;
            break;
        }
        exec_.blockedThreads.push_back(edge);

        // Mirror the stuck acquisition into the trace so offline
        // detectors (lock-order graph) see the attempted edge.
        if (collectTrace_) {
            trace::Event event;
            event.thread = lt->tid;
            event.kind = trace::EventKind::Blocked;
            event.obj = edge.obj;
            event.aux = static_cast<std::uint64_t>(edge.holder);
            exec_.trace.append(std::move(event));
        } else {
            ++seqCounter_;
        }
    }
}

void
Executor::abortAll(std::unique_lock<std::mutex> &lk)
{
    abortFlag_ = true;
    if (!fastHandoff_) {
        cv_.notify_all();
        cv_.wait(lk, [this] {
            for (const auto &lt : threads_) {
                if (lt->status != ThreadStatus::Finished)
                    return false;
            }
            return true;
        });
        return;
    }
    // abortAll only runs at quiescence, so every live thread is
    // parked on its baton; hand each an abort token.
    for (const auto &lt : threads_) {
        if (lt->status == ThreadStatus::Finished)
            continue;
        unparked_.fetch_add(1, std::memory_order_relaxed);
        lt->baton.store(kBatonAbort, std::memory_order_release);
        lt->baton.notify_one();
    }
    awaitQuiescentFast(lk);
}

void
Executor::schedulerLoop(SchedulePolicy &policy, const ExecOptions &opt)
{
    std::unique_lock<std::mutex> lk(m_);
    if (fastHandoff_)
        awaitQuiescentFast(lk);
    else
        waitQuiescent(lk);

    for (;;) {
        // Failsafe checks run here, at quiescence, where abortAll is
        // legal. A null token / unarmed deadline costs one branch;
        // the clock read is amortised over 64 decisions.
        if (opt.cancel != nullptr && opt.cancel->cancelled()) {
            exec_.outcome = support::RunOutcome::Cancelled;
            abortAll(lk);
            break;
        }
        if (opt.deadline.armed() &&
            (exec_.decisionCount & 63) == 0 &&
            opt.deadline.expired()) {
            exec_.outcome = support::RunOutcome::DeadlineExpired;
            abortAll(lk);
            break;
        }

        buildChoices(choicesScratch_, opt.spuriousWakeups);
        const auto &choices = choicesScratch_;

        if (choices.empty()) {
            bool anyLive = false;
            for (const auto &lt : threads_) {
                if (lt->status != ThreadStatus::Finished)
                    anyLive = true;
            }
            if (!anyLive)
                break;
            exec_.deadlocked = true;
            captureWaitsFor();
            abortAll(lk);
            break;
        }

        if (exec_.decisionCount >= opt.maxDecisions) {
            exec_.stepLimitHit = true;
            exec_.outcome = support::RunOutcome::Truncated;
            abortAll(lk);
            break;
        }

        SchedView view{choices, exec_.decisionCount, lastRun_};
        const std::size_t idx = policy.pick(view);
        LFM_ASSERT(idx < choices.size(), "policy picked out of range");
        ++exec_.decisionCount;
        if (recordDecisions_)
            exec_.decisions.push_back({choices, idx});

        const ChoiceRecord &choice = choices[idx];
        if (opt.probe != nullptr)
            opt.probe->noteDecision(
                static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(choice.tid)),
                exec_.decisionCount - 1);
        if (choice.spuriousWake) {
            LogicalThread &lt = byTid(choice.tid);
            LFM_ASSERT(lt.pending.kind == OpKind::WaitBlock,
                       "spurious wake of a non-waiter");
            PendingOp op;
            op.kind = OpKind::Reacquire;
            op.obj = lt.pending.obj;
            op.obj2 = lt.pending.obj2;
            op.auxSeq = trace::kSpuriousWakeup;
            lt.pending = std::move(op);
            continue;
        }

        lastRun_ = choice.tid;
        if (fastHandoff_) {
            grantAndWait(lk, byTid(choice.tid));
        } else {
            granted_ = choice.tid;
            cv_.notify_all();
            waitQuiescent(lk);
        }
    }
}

// ------------------------------------------------------------------
// Simulated-thread side
// ------------------------------------------------------------------

Executor::LogicalThread &
Executor::self()
{
    LFM_ASSERT(tTid != trace::kNoThread,
               "operation requires a simulated thread");
    return byTid(tTid);
}

Executor::LogicalThread &
Executor::byTid(ThreadId tid)
{
    LFM_ASSERT(tid >= 0 &&
                   static_cast<std::size_t>(tid) < threads_.size(),
               "bad thread id");
    return *threads_[static_cast<std::size_t>(tid)];
}

const Executor::LogicalThread &
Executor::byTid(ThreadId tid) const
{
    LFM_ASSERT(tid >= 0 &&
                   static_cast<std::size_t>(tid) < threads_.size(),
               "bad thread id");
    return *threads_[static_cast<std::size_t>(tid)];
}

void
Executor::threadMain(LogicalThread *lt)
{
    tExecutor = this;
    tTid = lt->tid;
    try {
        PendingOp begin;
        begin.kind = OpKind::ThreadBegin;
        schedulePoint(std::move(begin));

        lt->body();

        {
            std::lock_guard<std::mutex> guard(m_);
            lt->endSeq = record(trace::EventKind::ThreadEnd, lt->objId);
            lt->status = ThreadStatus::Finished;
            if (!fastHandoff_)
                cv_.notify_all();
        }
        if (fastHandoff_ &&
            unparked_.fetch_sub(1, std::memory_order_acq_rel) == 1)
            unparked_.notify_all();
    } catch (const ExecutionAborted &) {
        {
            std::lock_guard<std::mutex> guard(m_);
            lt->aborted = true;
            lt->status = ThreadStatus::Finished;
            if (!fastHandoff_)
                cv_.notify_all();
        }
        if (fastHandoff_ &&
            unparked_.fetch_sub(1, std::memory_order_acq_rel) == 1)
            unparked_.notify_all();
    } catch (const std::exception &e) {
        {
            std::lock_guard<std::mutex> guard(m_);
            record(trace::EventKind::FailureMark, trace::kNoObject,
                   trace::kNoObject, 0,
                   std::string("uncaught exception: ") + e.what());
            exec_.failureMessages.emplace_back(
                std::string("uncaught exception: ") + e.what());
            lt->endSeq = record(trace::EventKind::ThreadEnd, lt->objId);
            lt->status = ThreadStatus::Finished;
            if (!fastHandoff_)
                cv_.notify_all();
        }
        if (fastHandoff_ &&
            unparked_.fetch_sub(1, std::memory_order_acq_rel) == 1)
            unparked_.notify_all();
    }
}

namespace
{

/**
 * Ops that RAII guards issue from (noexcept) destructors. Abort must
 * never propagate ExecutionAborted through these: the throw would
 * cross a noexcept frame and terminate(). On abort they are dropped
 * instead — the run's verdict is already sealed, so losing a release
 * op from a dying execution changes nothing — and the thread unwinds
 * at its next non-release schedule point.
 */
bool
releaseLikeOp(OpKind kind)
{
    switch (kind) {
      case OpKind::MutexUnlock:
      case OpKind::RwRdUnlock:
      case OpKind::RwWrUnlock:
      case OpKind::SignalOne:
      case OpKind::SignalAll:
      case OpKind::SemPost:
      case OpKind::Free:
        return true;
      default:
        return false;
    }
}

} // namespace

bool
Executor::parkAgain(std::unique_lock<std::mutex> &lk, LogicalThread &lt)
{
    lt.status = ThreadStatus::AtPoint;
    if (!fastHandoff_) {
        cv_.notify_all();
        cv_.wait(lk, [this, &lt] {
            return abortFlag_ || granted_ == lt.tid;
        });
        if (abortFlag_) {
            if (!releaseLikeOp(lt.pending.kind))
                throw ExecutionAborted{};
            return true;
        }
        granted_ = trace::kNoThread;
        lt.status = ThreadStatus::Running;
        return false;
    }

    // Fast path: drop the lock, report quiescence, then wait on our
    // private baton. The scheduler writes all shared state before it
    // stores the baton, and we re-lock before touching any, so the
    // mutex still orders every cross-thread access.
    lk.unlock();
    if (unparked_.fetch_sub(1, std::memory_order_acq_rel) == 1)
        unparked_.notify_all();
    std::uint32_t token;
    for (int spins = spinBudget();;) {
        token = lt.baton.load(std::memory_order_acquire);
        if (token != 0)
            break;
        if (spins > 0) {
            --spins;
            cpuRelax();
        } else {
            lt.baton.wait(0, std::memory_order_acquire);
        }
    }
    lt.baton.store(0, std::memory_order_relaxed);
    if (token == kBatonAbort) {
        if (!releaseLikeOp(lt.pending.kind))
            throw ExecutionAborted{};
        return true; // lk stays unlocked; the caller only returns
    }
    lk.lock();
    lt.status = ThreadStatus::Running;
    return false;
}

void
Executor::schedulePoint(PendingOp op)
{
    std::unique_lock<std::mutex> lk(m_);
    // Once the run is being aborted, no op may park: the scheduler
    // has left its loop and nobody would ever grant the baton.
    // Regular ops unwind the thread via ExecutionAborted; release
    // ops (see releaseLikeOp) are dropped, because they reach here
    // from noexcept destructor frames where a throw terminates.
    if (abortFlag_) {
        if (!releaseLikeOp(op.kind))
            throw ExecutionAborted{};
        return;
    }
    LogicalThread &lt = self();
    lt.pending = std::move(op);
    if (parkAgain(lk, lt))
        return;
    executeOp(lk, lt);
}

void
Executor::executeOp(std::unique_lock<std::mutex> &lk, LogicalThread &lt)
{
    using trace::EventKind;

    for (;;) {
        PendingOp &op = lt.pending;
        switch (op.kind) {
          case OpKind::ThreadBegin:
            record(EventKind::ThreadBegin, lt.objId, trace::kNoObject,
                   lt.hasParent ? lt.spawnSeq : trace::kSpuriousWakeup);
            return;

          case OpKind::Yield:
            record(EventKind::Yield);
            return;

          case OpKind::Read:
          case OpKind::Write: {
            CellState &cell = cells_[op.obj];
            std::uint64_t aux = 0;
            if (cell.freed) {
                const std::string msg =
                    "use-after-free access to " +
                    exec_.trace.objectName(op.obj);
                record(EventKind::FailureMark, op.obj, trace::kNoObject,
                       0, msg);
                exec_.failureMessages.push_back(msg);
            }
            if (op.kind == OpKind::Read && !cell.initialized) {
                aux = 1; // uninitialised read marker
            }
            if (op.kind == OpKind::Write)
                cell.initialized = true;
            record(op.kind == OpKind::Read ? EventKind::Read
                                           : EventKind::Write,
                   op.obj, trace::kNoObject, aux, op.label);
            return;
          }

          case OpKind::Alloc: {
            CellState &cell = cells_[op.obj];
            cell.initialized = false;
            cell.freed = false;
            record(EventKind::Alloc, op.obj, trace::kNoObject, 0,
                   op.label);
            return;
          }

          case OpKind::Free: {
            CellState &cell = cells_[op.obj];
            if (cell.freed) {
                const std::string msg =
                    "double free of " + exec_.trace.objectName(op.obj);
                record(EventKind::FailureMark, op.obj, trace::kNoObject,
                       0, msg);
                exec_.failureMessages.push_back(msg);
            }
            cell.freed = true;
            record(EventKind::Free, op.obj, trace::kNoObject, 0,
                   op.label);
            return;
          }

          case OpKind::MutexLock: {
            MutexState &s = mutexes_[op.obj];
            if (s.holder == lt.tid) {
                LFM_ASSERT(s.recursive,
                           "relock of non-recursive mutex got enabled");
                ++s.depth;
            } else {
                LFM_ASSERT(s.holder == trace::kNoThread,
                           "lock granted while held");
                s.holder = lt.tid;
                s.depth = 1;
                record(EventKind::Lock, op.obj, trace::kNoObject, 0,
                       op.label);
            }
            return;
          }

          case OpKind::MutexTryLock: {
            MutexState &s = mutexes_[op.obj];
            // Injected fault: POSIX allows tryLock to fail even on an
            // uncontended mutex; the plan forces that path at a seeded
            // rate. Robust callers (retry loops) must tolerate it.
            if (faults_ != nullptr && faults_->tryLockFailRate > 0.0 &&
                faultRng_.chance(faults_->tryLockFailRate)) {
                op.auxSeq = 0;
                return;
            }
            if (s.holder == trace::kNoThread ||
                (s.recursive && s.holder == lt.tid)) {
                if (s.holder == lt.tid) {
                    ++s.depth;
                } else {
                    s.holder = lt.tid;
                    s.depth = 1;
                    record(EventKind::Lock, op.obj, trace::kNoObject,
                           0, op.label);
                }
                op.auxSeq = 1; // success, read back by mutexTryLock
            } else {
                op.auxSeq = 0;
            }
            return;
          }

          case OpKind::MutexUnlock: {
            MutexState &s = mutexes_[op.obj];
            LFM_ASSERT(s.holder == lt.tid,
                       "unlock of mutex not held by caller");
            if (--s.depth == 0) {
                s.holder = trace::kNoThread;
                record(EventKind::Unlock, op.obj, trace::kNoObject, 0,
                       op.label);
            }
            return;
          }

          case OpKind::RwRdLock: {
            RWLockState &s = rwlocks_[op.obj];
            LFM_ASSERT(s.writer == trace::kNoThread,
                       "rdlock granted under writer");
            s.readers.push_back(lt.tid);
            record(EventKind::RdLock, op.obj, trace::kNoObject, 0,
                   op.label);
            return;
          }

          case OpKind::RwRdUnlock: {
            RWLockState &s = rwlocks_[op.obj];
            auto it =
                std::find(s.readers.begin(), s.readers.end(), lt.tid);
            LFM_ASSERT(it != s.readers.end(),
                       "rdunlock without matching rdlock");
            s.readers.erase(it);
            record(EventKind::RdUnlock, op.obj);
            return;
          }

          case OpKind::RwWrLock: {
            RWLockState &s = rwlocks_[op.obj];
            LFM_ASSERT(s.writer == trace::kNoThread &&
                           s.readers.empty(),
                       "wrlock granted while held");
            s.writer = lt.tid;
            record(EventKind::Lock, op.obj, trace::kNoObject, 0,
                   op.label);
            return;
          }

          case OpKind::RwWrUnlock: {
            RWLockState &s = rwlocks_[op.obj];
            LFM_ASSERT(s.writer == lt.tid,
                       "wrunlock by non-writer");
            s.writer = trace::kNoThread;
            record(EventKind::Unlock, op.obj);
            return;
          }

          case OpKind::WaitBegin: {
            MutexState &s = mutexes_[op.obj2];
            LFM_ASSERT(s.holder == lt.tid,
                       "cond wait without holding the mutex");
            LFM_ASSERT(s.depth == 1,
                       "cond wait with recursive lock depth > 1");
            s.holder = trace::kNoThread;
            s.depth = 0;
            record(EventKind::WaitBegin, op.obj, op.obj2, 0, op.label);
            lt.waitArrival = ++waitArrivalCounter_;
            PendingOp block;
            block.kind = OpKind::WaitBlock;
            block.obj = op.obj;
            block.obj2 = op.obj2;
            lt.pending = std::move(block);
            break; // park again and resume as Reacquire
          }

          case OpKind::Reacquire: {
            MutexState &s = mutexes_[op.obj2];
            LFM_ASSERT(s.holder == trace::kNoThread,
                       "reacquire granted while mutex held");
            s.holder = lt.tid;
            s.depth = 1;
            record(EventKind::WaitResume, op.obj, op.obj2, op.auxSeq);
            return;
          }

          case OpKind::SignalOne:
          case OpKind::SignalAll: {
            const bool broadcast = op.kind == OpKind::SignalAll;
            const SeqNo seq =
                record(broadcast ? EventKind::SignalAll
                                 : EventKind::SignalOne,
                       op.obj, trace::kNoObject, 0, op.label);
            // Collect waiters in FIFO arrival order.
            std::vector<LogicalThread *> waiters;
            for (auto &other : threads_) {
                if (other->status == ThreadStatus::AtPoint &&
                    other->pending.kind == OpKind::WaitBlock &&
                    other->pending.obj == op.obj)
                    waiters.push_back(other.get());
            }
            std::sort(waiters.begin(), waiters.end(),
                      [](const LogicalThread *a, const LogicalThread *b) {
                          return a->waitArrival < b->waitArrival;
                      });
            const std::size_t n =
                broadcast ? waiters.size()
                          : std::min<std::size_t>(1, waiters.size());
            for (std::size_t i = 0; i < n; ++i) {
                PendingOp wake;
                wake.kind = OpKind::Reacquire;
                wake.obj = waiters[i]->pending.obj;
                wake.obj2 = waiters[i]->pending.obj2;
                wake.auxSeq = seq;
                waiters[i]->pending = std::move(wake);
            }
            return;
          }

          case OpKind::SemWait: {
            SemState &s = sems_[op.obj];
            LFM_ASSERT(s.count > 0, "sem wait granted at zero");
            --s.count;
            SeqNo matched = trace::kSpuriousWakeup;
            if (!s.postSeqs.empty()) {
                matched = s.postSeqs.front();
                s.postSeqs.pop_front();
            }
            record(EventKind::SemWait, op.obj, trace::kNoObject,
                   matched, op.label);
            return;
          }

          case OpKind::SemPost: {
            SemState &s = sems_[op.obj];
            ++s.count;
            const SeqNo seq = record(EventKind::SemPost, op.obj,
                                     trace::kNoObject, 0, op.label);
            s.postSeqs.push_back(seq);
            return;
          }

          case OpKind::BarrierArrive: {
            BarrierState &b = barriers_[op.obj];
            ++b.arrived;
            if (b.arrived < b.parties) {
                PendingOp block;
                block.kind = OpKind::BarrierBlock;
                block.obj = op.obj;
                lt.pending = std::move(block);
                break; // park until the last party arrives
            }
            // Last arrival: emit one consecutive run of crossings so
            // the happens-before builder can group the generation.
            for (auto &other : threads_) {
                if (other->status == ThreadStatus::AtPoint &&
                    other->pending.kind == OpKind::BarrierBlock &&
                    other->pending.obj == op.obj) {
                    if (collectTrace_) {
                        trace::Event event;
                        event.thread = other->tid;
                        event.kind = EventKind::BarrierCross;
                        event.obj = op.obj;
                        event.aux = b.generation;
                        exec_.trace.append(std::move(event));
                    } else {
                        ++seqCounter_;
                    }
                    PendingOp resume;
                    resume.kind = OpKind::BarrierResume;
                    resume.obj = op.obj;
                    other->pending = std::move(resume);
                }
            }
            record(EventKind::BarrierCross, op.obj, trace::kNoObject,
                   b.generation);
            ++b.generation;
            b.arrived = 0;
            return;
          }

          case OpKind::BarrierResume:
            // The crossing event was already recorded by the last
            // arriver; nothing further to do.
            return;

          case OpKind::Join: {
            const LogicalThread &child = byTid(op.target);
            LFM_ASSERT(child.status == ThreadStatus::Finished,
                       "join granted before child finished");
            record(EventKind::Join, child.objId, trace::kNoObject,
                   child.endSeq);
            return;
          }

          case OpKind::Spawn: {
            const ObjectId childObj = nextObjectId_; // assigned next
            const SeqNo seq = record(EventKind::Spawn, childObj);
            const ThreadId child =
                launchThread(std::move(op.label),
                             std::move(op.spawnBody), true, seq);
            op.target = child;
            return;
          }

          default:
            LFM_PANIC("unexpected op kind granted: ",
                      opKindName(op.kind));
        }
        if (parkAgain(lk, lt))
            return;
    }
}

// ------------------------------------------------------------------
// Public operations (simulated-thread entry points)
// ------------------------------------------------------------------

void
Executor::access(ObjectId cell, bool isWrite, const char *label)
{
    PendingOp op;
    op.kind = isWrite ? OpKind::Write : OpKind::Read;
    op.obj = cell;
    if (label)
        op.label = label;
    schedulePoint(std::move(op));
}

void
Executor::cellAlloc(ObjectId cell)
{
    PendingOp op;
    op.kind = OpKind::Alloc;
    op.obj = cell;
    schedulePoint(std::move(op));
}

void
Executor::cellFree(ObjectId cell, const char *label)
{
    PendingOp op;
    op.kind = OpKind::Free;
    op.obj = cell;
    if (label)
        op.label = label;
    schedulePoint(std::move(op));
}

void
Executor::mutexLock(ObjectId m, const char *label)
{
    PendingOp op;
    op.kind = OpKind::MutexLock;
    op.obj = m;
    if (label)
        op.label = label;
    schedulePoint(std::move(op));
}

bool
Executor::mutexTryLock(ObjectId m, const char *label)
{
    PendingOp op;
    op.kind = OpKind::MutexTryLock;
    op.obj = m;
    if (label)
        op.label = label;
    schedulePoint(std::move(op));
    std::lock_guard<std::mutex> guard(m_);
    return self().pending.auxSeq != 0;
}

void
Executor::mutexUnlock(ObjectId m, const char *label)
{
    PendingOp op;
    op.kind = OpKind::MutexUnlock;
    op.obj = m;
    if (label)
        op.label = label;
    schedulePoint(std::move(op));
}

void
Executor::rwRdLock(ObjectId rw, const char *label)
{
    PendingOp op;
    op.kind = OpKind::RwRdLock;
    op.obj = rw;
    if (label)
        op.label = label;
    schedulePoint(std::move(op));
}

void
Executor::rwRdUnlock(ObjectId rw)
{
    PendingOp op;
    op.kind = OpKind::RwRdUnlock;
    op.obj = rw;
    schedulePoint(std::move(op));
}

void
Executor::rwWrLock(ObjectId rw, const char *label)
{
    PendingOp op;
    op.kind = OpKind::RwWrLock;
    op.obj = rw;
    if (label)
        op.label = label;
    schedulePoint(std::move(op));
}

void
Executor::rwWrUnlock(ObjectId rw)
{
    PendingOp op;
    op.kind = OpKind::RwWrUnlock;
    op.obj = rw;
    schedulePoint(std::move(op));
}

void
Executor::condWait(ObjectId cv, ObjectId m, const char *label)
{
    PendingOp op;
    op.kind = OpKind::WaitBegin;
    op.obj = cv;
    op.obj2 = m;
    if (label)
        op.label = label;
    schedulePoint(std::move(op));
}

void
Executor::condSignal(ObjectId cv, bool broadcast, const char *label)
{
    PendingOp op;
    op.kind = broadcast ? OpKind::SignalAll : OpKind::SignalOne;
    op.obj = cv;
    if (label)
        op.label = label;
    schedulePoint(std::move(op));
}

void
Executor::semWait(ObjectId sem, const char *label)
{
    PendingOp op;
    op.kind = OpKind::SemWait;
    op.obj = sem;
    if (label)
        op.label = label;
    schedulePoint(std::move(op));
}

void
Executor::semPost(ObjectId sem, const char *label)
{
    PendingOp op;
    op.kind = OpKind::SemPost;
    op.obj = sem;
    if (label)
        op.label = label;
    schedulePoint(std::move(op));
}

void
Executor::barrierArrive(ObjectId bar)
{
    PendingOp op;
    op.kind = OpKind::BarrierArrive;
    op.obj = bar;
    schedulePoint(std::move(op));
}

ThreadHandle
Executor::spawn(std::string name, std::function<void()> body)
{
    PendingOp op;
    op.kind = OpKind::Spawn;
    op.label = std::move(name);
    op.spawnBody = std::move(body);
    schedulePoint(std::move(op));
    // executeOp stored the child's tid back into our pending op.
    std::lock_guard<std::mutex> guard(m_);
    return ThreadHandle(self().pending.target);
}

void
Executor::joinThread(ThreadId tid)
{
    PendingOp op;
    op.kind = OpKind::Join;
    op.target = tid;
    schedulePoint(std::move(op));
}

void
Executor::yieldNow()
{
    PendingOp op;
    op.kind = OpKind::Yield;
    schedulePoint(std::move(op));
}

void
Executor::failureMark(std::string message)
{
    std::lock_guard<std::mutex> guard(m_);
    record(trace::EventKind::FailureMark, trace::kNoObject,
           trace::kNoObject, 0, message);
    exec_.failureMessages.push_back(std::move(message));
}

void
Executor::check(bool cond, const std::string &message)
{
    if (!cond)
        failureMark(message);
}

void
ThreadHandle::join()
{
    LFM_ASSERT(tid_ != trace::kNoThread, "join on empty handle");
    Executor::current().joinThread(tid_);
}

Execution
runProgram(const ProgramFactory &factory, SchedulePolicy &policy,
           const ExecOptions &options)
{
    Executor executor;
    return executor.run(factory, policy, options);
}

} // namespace lfm::sim
