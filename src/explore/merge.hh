/**
 * @file
 * Internal helpers shared by every stress backend (classic in
 * parallel.cc, fork-sandbox in sandboxed.cc, multi-process sharded in
 * sharded.cc): resume restoration from a recovered campaign journal
 * and the canonical seed-order merge. Keeping the merge in one place
 * is what makes "inline == pool == sandbox == sharded" an identity
 * instead of three parallel reimplementations that drift.
 */

#ifndef LFM_EXPLORE_MERGE_HH
#define LFM_EXPLORE_MERGE_HH

#include <cstdint>
#include <vector>

#include "explore/runner.hh"
#include "support/failsafe.hh"

namespace lfm::explore::detail
{

/** Per-seed bookkeeping slot; one per seed index, merge reads them
 * in seed order so the result is worker-count-invariant. */
struct SeedRec
{
    std::uint64_t steps = 0;
    bool manifested = false;
    bool ran = false;
    bool truncated = false;
    bool resumed = false;
    bool crashed = false;
};

/**
 * Restore journaled seeds of options.campaignId into records (sized
 * to the campaign's run count) and push resumed crash records onto
 * result.crashes. Journaled crashes stay crashes — a deterministic
 * executor would just die again. Returns the smallest resumed seed
 * index that manifested (for stopAtFirst short-circuiting), or
 * ~0ull when none did.
 */
inline std::uint64_t
restoreResumed(const StressOptions &options,
               std::vector<SeedRec> &records, StressResult &result)
{
    std::uint64_t firstManifest = ~std::uint64_t{0};
    if (options.resume == nullptr)
        return firstManifest;
    const auto *prior = options.resume->campaign(options.campaignId);
    if (prior == nullptr)
        return firstManifest;
    for (const auto &[index, rec] : *prior) {
        if (index >= records.size())
            continue;
        SeedRec &r = records[index];
        r.resumed = true;
        r.steps = rec.steps;
        r.manifested = rec.manifested();
        r.truncated = rec.truncated();
        if (rec.crashed()) {
            r.crashed = true;
            support::CrashInfo info;
            info.unit = index;
            info.signal = rec.signal;
            info.steps = rec.steps;
            result.crashes.push_back(info);
        } else {
            r.ran = true;
        }
        if (r.manifested && index < firstManifest)
            firstManifest = index;
    }
    return firstManifest;
}

/**
 * The canonical seed-order merge, replicating the sequential loop so
 * the result is bit-identical for every worker/shard count. Seeds a
 * failsafe cut abandoned never ran and are skipped — partial harvest,
 * not zeroes. Callers set result.outcome to the campaign-level cut
 * BEFORE calling; crashes (already collected in result.crashes)
 * worsen it to Crashed here.
 */
inline void
mergeSeedOrder(const std::vector<SeedRec> &records,
               const StressOptions &options, StressResult &result)
{
    double totalDecisions = 0.0;
    for (std::size_t i = 0; i < records.size(); ++i) {
        if (records[i].resumed)
            ++result.resumedRuns;
        if (!records[i].ran)
            continue;
        ++result.runs;
        totalDecisions += static_cast<double>(records[i].steps);
        if (records[i].truncated)
            ++result.truncatedRuns;
        if (records[i].manifested) {
            ++result.manifestations;
            result.manifestedSeeds.push_back(options.firstSeed + i);
            if (!result.firstManifestSeed)
                result.firstManifestSeed = options.firstSeed + i;
            if (options.stopAtFirst)
                break;
        }
    }
    result.crashedRuns = result.crashes.size();
    if (result.crashedRuns > 0)
        result.outcome = support::worseOutcome(
            result.outcome, support::RunOutcome::Crashed);
    if (result.runs > 0)
        result.avgDecisions =
            totalDecisions / static_cast<double>(result.runs);
}

} // namespace lfm::explore::detail

#endif // LFM_EXPLORE_MERGE_HH
