#include "explore/minimize.hh"

#include "sim/policy.hh"

namespace lfm::explore
{

namespace
{

/** Replay a decision-index path (first-choice beyond it). */
sim::Execution
replay(const sim::ProgramFactory &factory,
       const std::vector<std::size_t> &path)
{
    sim::FixedSchedulePolicy policy(path);
    sim::ExecOptions opt;
    opt.maxDecisions = 20000;
    return sim::runProgram(factory, policy, opt);
}

/** Extract the chosen-index path of an execution. */
std::vector<std::size_t>
pathOf(const sim::Execution &execution)
{
    std::vector<std::size_t> path;
    path.reserve(execution.decisions.size());
    for (const auto &d : execution.decisions)
        path.push_back(d.chosen);
    return path;
}

} // namespace

unsigned
countPreemptions(const sim::Execution &execution)
{
    unsigned preemptions = 0;
    trace::ThreadId last = trace::kNoThread;
    for (const auto &d : execution.decisions) {
        const auto &chosen = d.choices[d.chosen];
        if (last != trace::kNoThread && chosen.tid != last) {
            // A switch is a preemption only when the previous thread
            // was still available.
            for (const auto &c : d.choices) {
                if (c.tid == last && !c.spuriousWake) {
                    ++preemptions;
                    break;
                }
            }
        }
        last = chosen.tid;
    }
    return preemptions;
}

MinimizeResult
minimizeSchedule(const sim::ProgramFactory &factory,
                 const std::vector<std::size_t> &failingPath,
                 std::size_t maxReplays,
                 const ManifestPredicate &manifest)
{
    MinimizeResult result;

    auto current = replay(factory, failingPath);
    ++result.replays;
    result.preemptionsBefore = countPreemptions(current);
    if (!manifest(current)) {
        // Not failing to begin with; nothing to minimize.
        result.schedule = failingPath;
        result.preemptionsAfter = result.preemptionsBefore;
        return result;
    }

    bool improved = true;
    while (improved && result.replays < maxReplays) {
        improved = false;
        const auto &decisions = current.decisions;
        trace::ThreadId last = trace::kNoThread;
        for (std::size_t i = 0;
             i < decisions.size() && result.replays < maxReplays;
             ++i) {
            const auto &d = decisions[i];
            const auto &chosen = d.choices[d.chosen];
            // Candidate: this decision preempted `last`.
            std::size_t continueIdx = d.choices.size();
            if (last != trace::kNoThread && chosen.tid != last) {
                for (std::size_t c = 0; c < d.choices.size(); ++c) {
                    if (d.choices[c].tid == last &&
                        !d.choices[c].spuriousWake) {
                        continueIdx = c;
                        break;
                    }
                }
            }
            last = chosen.tid;
            if (continueIdx == d.choices.size())
                continue;

            std::vector<std::size_t> candidate = pathOf(current);
            candidate.resize(i);
            candidate.push_back(continueIdx);
            auto attempt = replay(factory, candidate);
            ++result.replays;
            if (manifest(attempt) &&
                countPreemptions(attempt) <
                    countPreemptions(current)) {
                current = std::move(attempt);
                improved = true;
                break; // rescan from the start of the new schedule
            }
        }
    }

    result.schedule = pathOf(current);
    result.preemptionsAfter = countPreemptions(current);
    result.stillFails = manifest(current);
    return result;
}

} // namespace lfm::explore
