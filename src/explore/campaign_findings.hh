/**
 * @file
 * The findings surface of a stress campaign: replay every manifesting
 * seed deterministically in-process, run the detection pipeline over
 * the replayed traces, and serialize the findings JSON.
 *
 * This is deliberately a *function of the campaign result*, not of
 * the campaign's execution history: StressResult::manifestedSeeds is
 * identical across backends, worker counts, shard counts, crashes,
 * retries and resumes, so two campaigns that agree on their result
 * produce byte-identical findings documents — the equality the chaos
 * gates compare with cmp(1).
 *
 * Header-only: the only consumers are the campaign CLI, the demo and
 * the tests, and keeping it out of lfm_explore avoids an explore ->
 * detect layering edge in the library graph.
 */

#ifndef LFM_EXPLORE_CAMPAIGN_FINDINGS_HH
#define LFM_EXPLORE_CAMPAIGN_FINDINGS_HH

#include <memory>
#include <vector>

#include "detect/batch.hh"
#include "detect/pipeline.hh"
#include "explore/parallel.hh"
#include "explore/runner.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace lfm::explore
{

/** Replay the campaign's manifesting seeds and return their traces
 * in seed order. Trace collection is forced on (the campaign itself
 * may have run countOnly). */
inline std::vector<trace::Trace>
replayManifestedSeeds(const sim::ProgramFactory &factory,
                      const PolicyFactory &makePolicy,
                      const StressOptions &options,
                      const StressResult &result)
{
    std::vector<trace::Trace> traces;
    traces.reserve(result.manifestedSeeds.size());
    std::shared_ptr<sim::SchedulePolicy> policy;
    for (const std::uint64_t seed : result.manifestedSeeds) {
        if (policy == nullptr) {
            policy = makePolicy();
            LFM_ASSERT(policy != nullptr,
                       "policy factory returned null");
        }
        sim::ExecOptions exec = options.exec;
        exec.seed = seed;
        exec.collectTrace = true;
        auto execution = sim::runProgram(factory, *policy, exec);
        traces.push_back(std::move(execution.trace));
    }
    return traces;
}

/** The canonical findings document for a campaign result. */
inline support::Json
campaignFindingsJson(const sim::ProgramFactory &factory,
                     const PolicyFactory &makePolicy,
                     const StressOptions &options,
                     const StressResult &result)
{
    const std::vector<trace::Trace> corpus =
        replayManifestedSeeds(factory, makePolicy, options, result);
    detect::Pipeline pipeline;
    const std::vector<detect::TraceReport> reports =
        detect::BatchRunner(1).run(pipeline, corpus);
    return detect::reportsJson(corpus, reports);
}

} // namespace lfm::explore

#endif // LFM_EXPLORE_CAMPAIGN_FINDINGS_HH
