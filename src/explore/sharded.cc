#include "explore/sharded.hh"

#include <dirent.h>
#include <poll.h>
#if defined(__linux__)
#include <sys/prctl.h>
#endif
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>

#include "explore/merge.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/sandbox_wire.hh"

namespace lfm::explore
{

namespace
{

using namespace support::sandbox_wire;
using support::RunOutcome;
using Clock = std::chrono::steady_clock;

/** Result-frame payload: the journaled record plus the crash prefix
 * (only crashes carry one; the journal drops it by design, so the
 * live frame is the only place it survives). */
struct ResultWire
{
    SeedRecord rec;
    std::uint32_t prefixLen = 0;
    std::uint16_t prefix[32] = {};
};
static_assert(sizeof(ResultWire) == 32 + 4 + 64 + 4,
              "keep the result frame layout stable");

std::string
shardFileName(const std::string &campaignName, unsigned shard)
{
    return campaignName + ".shard" + std::to_string(shard) + ".lfmj";
}

/** Everything the shard child needs, captured before fork. */
struct ChildCtx
{
    const sim::ProgramFactory &factory;
    const PolicyFactory &makePolicy;
    const StressOptions &opt;  // campaignId already resolved
    const ManifestPredicate &manifest;
    const ShardedOptions &sharded;
    support::Deadline effDeadline;
};

/** One seed, exactly the classic in-process path (lazy per-child
 * policy; per-seed determinism comes from the seed itself). */
SeedRecord
runSeedInline(const ChildCtx &ctx,
              std::shared_ptr<sim::SchedulePolicy> &policy,
              std::uint64_t unit)
{
    if (policy == nullptr) {
        policy = ctx.makePolicy();
        LFM_ASSERT(policy != nullptr, "policy factory returned null");
    }
    sim::ExecOptions exec = ctx.opt.exec;
    exec.seed = ctx.opt.firstSeed + unit;
    if (ctx.opt.countOnly) {
        exec.collectTrace = false;
        exec.recordDecisions = false;
    }
    exec.deadline =
        support::Deadline::earlier(exec.deadline, ctx.effDeadline);
    support::processProbe().reset(unit);
    exec.probe = &support::processProbe();
    auto execution = sim::runProgram(ctx.factory, *policy, exec);
    SeedRecord rec;
    rec.campaignId = ctx.opt.campaignId;
    rec.seedIndex = unit;
    rec.steps = execution.steps();
    if (ctx.manifest(execution))
        rec.flags |= SeedRecord::kManifested;
    if (execution.stepLimitHit)
        rec.flags |= SeedRecord::kTruncated;
    return rec;
}

/**
 * The shard child: recover + repair + reopen the shard journal, then
 * serve units off the command pipe, journaling each result BEFORE
 * reporting it (write-ahead: the supervisor can always harvest the
 * journal when the report never arrives). Exit codes: 0 = clean EOF,
 * 3 = chaos exit, 4 = journal failure (the satellite-1 contract — a
 * failed append fails the shard cleanly instead of carrying on with
 * results that would not survive a resume). noexcept for the same
 * reason as the sandbox child: never unwind a forked stack.
 */
[[noreturn]] void
shardChildMain(int cmdFd, int resFd, unsigned shard, unsigned attempt,
               const std::string &journalPath,
               const ChildCtx &ctx) noexcept
{
    const ShardChaos &chaos = ctx.sharded.chaos;
    if (chaos.exitShard == shard)
        ::_exit(3);
    support::armCrashReporter(resFd);

    support::RecoveredJournal raw =
        support::recoverJournal(journalPath);
    if (raw.corruptTail &&
        !support::repairJournalTail(journalPath, raw))
        ::_exit(4);
    const RecoveredCampaigns prior = RecoveredCampaigns::fromRaw(raw);
    CampaignJournal journal;
    if (!journal.open(journalPath))
        ::_exit(4);
    journal.seedSnapshot(prior.all);

    std::shared_ptr<sim::SchedulePolicy> policy;
    std::size_t completed = 0;
    for (;;) {
        std::uint64_t unit = 0;
        if (!readAll(cmdFd, &unit, sizeof(unit)))
            break;  // command pipe closed: no more work
        if (attempt == 0 && chaos.stallShard == shard) {
            for (;;)
                ::pause();  // straggler until SIGKILLed
        }
        (void)writeFrame(resFd, kUnitStart, &unit, sizeof(unit));

        ResultWire wire;
        if (ctx.sharded.sandboxSeeds) {
            // Fork-isolated seed: a crashing seed costs a grandchild,
            // not this shard (and not this shard's failure budget).
            const auto iso = support::runIsolated(
                ctx.sharded.limits,
                [&]() -> std::vector<std::uint8_t> {
                    const SeedRecord rec =
                        runSeedInline(ctx, policy, unit);
                    std::vector<std::uint8_t> out(sizeof(rec));
                    std::memcpy(out.data(), &rec, sizeof(rec));
                    return out;
                });
            if (iso.ok && iso.payload.size() >= sizeof(SeedRecord)) {
                std::memcpy(&wire.rec, iso.payload.data(),
                            sizeof(wire.rec));
            } else {
                wire.rec.campaignId = ctx.opt.campaignId;
                wire.rec.seedIndex = unit;
                wire.rec.steps = iso.crash.steps;
                wire.rec.flags = SeedRecord::kCrashed;
                wire.rec.signal = iso.crash.signal;
                wire.prefixLen = static_cast<std::uint32_t>(
                    std::min<std::size_t>(iso.crash.prefix.size(),
                                          32));
                for (std::uint32_t i = 0; i < wire.prefixLen; ++i)
                    wire.prefix[i] = iso.crash.prefix[i];
            }
        } else {
            // In-process: a crashing seed takes this shard down and
            // the armed reporter frames it for the supervisor.
            wire.rec = runSeedInline(ctx, policy, unit);
        }

        if (!journal.append(wire.rec))
            ::_exit(4);

        if (attempt == 0 && chaos.killShard == shard &&
            completed++ == chaos.killAfterSeeds) {
            // Journaled but never reported: the harvest path's moment.
            ::kill(::getpid(), SIGKILL);
        }

        std::vector<std::uint8_t> body(sizeof(unit) + sizeof(wire));
        std::memcpy(body.data(), &unit, sizeof(unit));
        std::memcpy(body.data() + sizeof(unit), &wire, sizeof(wire));
        (void)writeFrame(resFd, kUnitResult, body.data(),
                         body.size());
    }
    (void)writeFrame(resFd, kDone, nullptr, 0);
    ::_exit(0);
}

struct ShardSlot
{
    pid_t pid = -1;
    int cmdFd = -1;
    int resFd = -1;
    bool hasInflight = false;
    std::uint64_t inflight = 0;
    unsigned failures = 0;  ///< consecutive; reset on a result
    unsigned attempts = 0;  ///< incarnations spawned so far
    bool benched = false;
    bool cmdClosed = false;
    FrameBuffer frames;
    bool sawCrashFrame = false;
    support::CrashInfo crashFrame;
    bool pendingRestart = false;
    Clock::time_point restartAt{};
    Clock::time_point lastProgress{};
    std::string journalPath;

    bool live() const { return pid >= 0; }

    void
    closeFds()
    {
        if (cmdFd >= 0) {
            ::close(cmdFd);
            cmdFd = -1;
        }
        if (resFd >= 0) {
            ::close(resFd);
            resFd = -1;
        }
        cmdClosed = true;
    }
};

/** Append one record to a (currently writer-less) shard journal,
 * repairing a torn tail first. Used by the supervisor to journal a
 * crash blamed on a dead shard's in-flight seed. */
void
appendToShardJournal(const std::string &path, const SeedRecord &rec)
{
    support::RecoveredJournal raw = support::recoverJournal(path);
    if (raw.corruptTail && !support::repairJournalTail(path, raw))
        return;  // resume will re-run the seed; never corrupt further
    const RecoveredCampaigns prior = RecoveredCampaigns::fromRaw(raw);
    CampaignJournal journal;
    if (!journal.open(path))
        return;
    journal.seedSnapshot(prior.all);
    (void)journal.append(rec);
    journal.close();
}

} // namespace

std::string
shardJournalPath(const std::string &stateDir,
                 const std::string &campaignName, unsigned shard)
{
    return stateDir + "/" + shardFileName(campaignName, shard);
}

RecoveredCampaigns
loadShardJournals(const std::string &stateDir,
                  const std::string &campaignName,
                  bool *sawCorruptTail)
{
    RecoveredCampaigns merged;
    std::vector<std::string> files;
    if (DIR *dir = ::opendir(stateDir.c_str())) {
        const std::string prefix = campaignName + ".shard";
        while (const dirent *entry = ::readdir(dir)) {
            const std::string name = entry->d_name;
            if (name.size() <= prefix.size() + 5)
                continue;
            if (name.compare(0, prefix.size(), prefix) != 0)
                continue;
            if (name.compare(name.size() - 5, 5, ".lfmj") != 0)
                continue;
            files.push_back(stateDir + "/" + name);
        }
        ::closedir(dir);
    }
    std::sort(files.begin(), files.end());
    for (const std::string &path : files) {
        support::RecoveredJournal raw = support::recoverJournal(path);
        if (raw.corruptTail) {
            if (sawCorruptTail != nullptr)
                *sawCorruptTail = true;
            (void)support::repairJournalTail(path, raw);
        }
        const RecoveredCampaigns one =
            RecoveredCampaigns::fromRaw(raw);
        if (one.corruptTail)
            merged.corruptTail = true;
        if (!one.warning.empty()) {
            if (!merged.warning.empty())
                merged.warning += "; ";
            merged.warning += path + ": " + one.warning;
        }
        for (const SeedRecord &rec : one.all) {
            merged.byCampaign[rec.campaignId][rec.seedIndex] = rec;
            merged.all.push_back(rec);
        }
    }
    return merged;
}

StressResult
shardedStress(const sim::ProgramFactory &factory,
              const PolicyFactory &makePolicy,
              const StressOptions &options,
              const ShardedOptions &sharded,
              const ManifestPredicate &manifest,
              ShardedStats *statsOut)
{
    LFM_ASSERT(!options.onExecution,
               "onExecution cannot stream traces across the shard "
               "process boundary");
    LFM_ASSERT(options.journal == nullptr && options.resume == nullptr,
               "sharded campaigns own their journals and resume state "
               "(ShardedOptions.stateDir/campaignName/resume)");
    LFM_ASSERT(!options.sandbox.enabled(),
               "sharded already isolates in processes; use "
               "ShardedOptions.sandboxSeeds for per-seed containment");

    ShardedStats stats;
    StressResult result;
    const std::size_t runs = options.runs;
    const auto publish = [&] {
        if (statsOut != nullptr)
            *statsOut = stats;
    };
    if (runs == 0) {
        publish();
        return result;
    }
    ignoreSigpipeOnce();

    StressOptions opt = options;
    opt.campaignId = campaignKey(sharded.campaignName);

    // Fresh runs clear stale shard state; resume loads and repairs it.
    RecoveredCampaigns recovered;
    if (sharded.resume) {
        recovered = loadShardJournals(sharded.stateDir,
                                      sharded.campaignName,
                                      &stats.sawCorruptTail);
        opt.resume = &recovered;
    } else {
        for (unsigned i = 0; i < sharded.shards; ++i) {
            const std::string path = shardJournalPath(
                sharded.stateDir, sharded.campaignName, i);
            (void)::remove(path.c_str());
            (void)::remove(
                support::journalCheckpointPath(path).c_str());
        }
    }

    std::vector<detail::SeedRec> records(runs);
    std::uint64_t stopIndex =
        detail::restoreResumed(opt, records, result);

    std::deque<std::uint64_t> queue;
    for (std::size_t i = 0; i < runs; ++i)
        if (!records[i].resumed)
            queue.push_back(i);

    const support::Deadline effDeadline = support::Deadline::earlier(
        opt.deadline, opt.budget.deadline);
    const ChildCtx ctx{factory, makePolicy, opt,
                       manifest, sharded,   effDeadline};

    /** Apply one journaled/reported record to the merge slots; the
     * first application wins (values are deterministic — a duplicate
     * from harvest-then-requeue races carries identical bytes). */
    const auto applyRecord = [&](const SeedRecord &rec,
                                 const std::uint16_t *prefix,
                                 std::uint32_t prefixLen) -> bool {
        if (rec.campaignId != opt.campaignId ||
            rec.seedIndex >= runs)
            return false;
        detail::SeedRec &r = records[rec.seedIndex];
        if (r.ran || r.crashed || r.resumed)
            return false;
        r.steps = rec.steps;
        r.manifested = rec.manifested();
        r.truncated = rec.truncated();
        if (rec.crashed()) {
            r.crashed = true;
            support::CrashInfo info;
            info.unit = rec.seedIndex;
            info.signal = rec.signal;
            info.steps = rec.steps;
            if (prefix != nullptr)
                info.prefix.assign(prefix, prefix + prefixLen);
            result.crashes.push_back(info);
        } else {
            r.ran = true;
            if (r.manifested && opt.stopAtFirst)
                stopIndex = std::min(stopIndex, rec.seedIndex);
        }
        return true;
    };

    const std::size_t slotCount = std::max<std::size_t>(
        1, std::min<std::size_t>(sharded.shards == 0
                                     ? 1
                                     : sharded.shards,
                                 queue.size()));
    std::vector<ShardSlot> slots(slotCount);
    stats.shards = static_cast<unsigned>(slotCount);
    for (std::size_t i = 0; i < slots.size(); ++i)
        slots[i].journalPath = shardJournalPath(
            sharded.stateDir, sharded.campaignName,
            static_cast<unsigned>(i));

    const pid_t supervisorPid = ::getpid();
    const auto spawn = [&](ShardSlot &slot,
                           std::size_t slotIndex) -> bool {
        int cmd[2];
        int res[2];
        if (::pipe(cmd) != 0)
            return false;
        if (::pipe(res) != 0) {
            ::close(cmd[0]);
            ::close(cmd[1]);
            return false;
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(cmd[0]);
            ::close(cmd[1]);
            ::close(res[0]);
            ::close(res[1]);
            return false;
        }
        if (pid == 0) {
            // A shard must never outlive its supervisor: without
            // this, SIGKILLing the supervisor would leak a stalled
            // shard that keeps every inherited fd (the caller's
            // stdout included) open forever. The getppid() check
            // closes the fork-to-prctl window where the supervisor
            // already died and the signal would never arrive.
#if defined(__linux__)
            ::prctl(PR_SET_PDEATHSIG, SIGKILL);
            if (::getppid() != supervisorPid)
                ::_exit(0);
#endif
            ::close(cmd[1]);
            ::close(res[0]);
            for (const ShardSlot &other : slots) {
                if (other.cmdFd >= 0)
                    ::close(other.cmdFd);
                if (other.resFd >= 0)
                    ::close(other.resFd);
            }
            shardChildMain(cmd[0], res[1],
                           static_cast<unsigned>(slotIndex),
                           slot.attempts, slot.journalPath, ctx);
        }
        ::close(cmd[0]);
        ::close(res[1]);
        slot.pid = pid;
        slot.cmdFd = cmd[1];
        slot.resFd = res[0];
        slot.cmdClosed = false;
        slot.hasInflight = false;
        slot.frames.buf.clear();
        slot.sawCrashFrame = false;
        slot.pendingRestart = false;
        slot.lastProgress = Clock::now();
        ++slot.attempts;
        ++stats.spawns;
        return true;
    };

    const auto dispatch = [&](ShardSlot &slot) {
        while (!queue.empty()) {
            const std::uint64_t unit = queue.front();
            queue.pop_front();
            if (opt.stopAtFirst && unit > stopIndex)
                continue;  // semantic cut past the earliest manifest
            if (!writeAll(slot.cmdFd, &unit, sizeof(unit))) {
                queue.push_front(unit);
                return;
            }
            slot.hasInflight = true;
            slot.inflight = unit;
            slot.lastProgress = Clock::now();
            return;
        }
        if (!slot.cmdClosed && slot.cmdFd >= 0) {
            ::close(slot.cmdFd);
            slot.cmdFd = -1;
            slot.cmdClosed = true;
        }
    };

    for (std::size_t i = 0; i < slots.size(); ++i) {
        if (!spawn(slots[i], i)) {
            LFM_WARN("sharded: could not fork shard ", i,
                     "; continuing with fewer shards");
            continue;
        }
        dispatch(slots[i]);
    }

    /** Re-read a dead shard's journal and credit records that never
     * made it across the pipe (write-ahead harvest). Returns whether
     * the in-flight unit was among them. */
    const auto harvest = [&](ShardSlot &slot) -> bool {
        support::RecoveredJournal raw =
            support::recoverJournal(slot.journalPath);
        if (raw.corruptTail) {
            stats.sawCorruptTail = true;
            (void)support::repairJournalTail(slot.journalPath, raw);
        }
        const RecoveredCampaigns rc =
            RecoveredCampaigns::fromRaw(raw);
        bool inflightCredited = false;
        const auto *prior = rc.campaign(opt.campaignId);
        if (prior != nullptr) {
            for (const auto &[index, rec] : *prior) {
                if (applyRecord(rec, nullptr, 0)) {
                    ++stats.harvestedRecords;
                    if (slot.hasInflight && index == slot.inflight)
                        inflightCredited = true;
                }
            }
        }
        return inflightCredited;
    };

    const auto handleDeath = [&](ShardSlot &slot,
                                 std::size_t slotIndex) {
        int status = 0;
        while (::waitpid(slot.pid, &status, 0) < 0 &&
               errno == EINTR) {
        }
        slot.pid = -1;
        slot.closeFds();
        const bool cleanExit =
            WIFEXITED(status) && WEXITSTATUS(status) == 0;

        if (slot.hasInflight && slot.sawCrashFrame &&
            slot.crashFrame.unit == slot.inflight) {
            // The in-flight seed crashed the shard (in-process seed
            // path). Blame the seed, journal it on the dead shard's
            // journal so resume never re-runs it, keep the prefix.
            SeedRecord rec;
            rec.campaignId = opt.campaignId;
            rec.seedIndex = slot.inflight;
            rec.steps = slot.crashFrame.steps;
            rec.flags = SeedRecord::kCrashed;
            rec.signal = slot.crashFrame.signal;
            if (rec.signal == 0 && WIFSIGNALED(status))
                rec.signal = WTERMSIG(status);
            if (applyRecord(rec, slot.crashFrame.prefix.data(),
                            static_cast<std::uint32_t>(
                                slot.crashFrame.prefix.size())))
                appendToShardJournal(slot.journalPath, rec);
            slot.hasInflight = false;
        } else {
            // Environment death (chaos SIGKILL, straggler kill, OOM,
            // journal failure): harvest the journal, requeue only a
            // genuinely unfinished in-flight seed.
            const bool credited = harvest(slot);
            if (slot.hasInflight && !credited)
                queue.push_front(slot.inflight);
            slot.hasInflight = false;
            if (cleanExit)
                return;  // normal EOF shutdown
        }

        ++slot.failures;
        if (slot.failures >= sharded.maxShardFailures) {
            slot.benched = true;
            ++stats.benchedShards;
            LFM_WARN("sharded: shard ", slotIndex, " benched after ",
                     slot.failures, " consecutive failures; seeds "
                     "reassigned to surviving shards");
            return;
        }
        if (!queue.empty() ||
            std::any_of(slots.begin(), slots.end(),
                        [](const ShardSlot &s) {
                            return s.hasInflight;
                        })) {
            const std::uint64_t delayNs = sharded.retry.delayNs(
                std::min<unsigned>(slot.failures - 1, 16),
                static_cast<std::uint64_t>(slotIndex));
            slot.pendingRestart = true;
            slot.restartAt =
                Clock::now() + std::chrono::nanoseconds(delayNs);
        }
    };

    std::vector<std::uint8_t> payload;
    RunOutcome outcome = RunOutcome::Completed;
    for (;;) {
        RunOutcome cut = RunOutcome::Completed;
        if (opt.cancel != nullptr && opt.cancel->cancelled())
            cut = RunOutcome::Cancelled;
        else if (effDeadline.armed() && effDeadline.expired())
            cut = RunOutcome::DeadlineExpired;
        if (cut != RunOutcome::Completed) {
            for (auto &slot : slots) {
                if (slot.live()) {
                    ::kill(slot.pid, SIGKILL);
                    int status = 0;
                    while (::waitpid(slot.pid, &status, 0) < 0 &&
                           errno == EINTR) {
                    }
                    if (slot.hasInflight)
                        ++stats.abandonedSeeds;
                    slot.pid = -1;
                    slot.closeFds();
                }
            }
            stats.abandonedSeeds += queue.size();
            outcome = cut;
            break;
        }

        const auto now = Clock::now();

        // Straggler watchdog: a shard sitting on one seed past the
        // deadline is killed; death handling requeues the seed.
        if (sharded.stragglerTimeoutMs > 0) {
            for (auto &slot : slots) {
                if (!slot.live() || !slot.hasInflight)
                    continue;
                const auto idleMs =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(
                        now - slot.lastProgress)
                        .count();
                if (idleMs >= 0 &&
                    static_cast<std::uint64_t>(idleMs) >
                        sharded.stragglerTimeoutMs) {
                    ::kill(slot.pid, SIGKILL);
                    ++stats.stragglersCancelled;
                    slot.lastProgress = now;  // await the EOF
                }
            }
        }

        bool anyLive = false;
        bool anyPending = false;
        Clock::time_point nextRestart = now;
        for (std::size_t i = 0; i < slots.size(); ++i) {
            ShardSlot &slot = slots[i];
            if (slot.pendingRestart) {
                if (slot.restartAt <= now) {
                    slot.pendingRestart = false;
                    if (spawn(slot, i)) {
                        ++stats.shardRetries;
                        dispatch(slot);
                    } else {
                        slot.benched = true;
                        ++stats.benchedShards;
                    }
                } else {
                    if (!anyPending || slot.restartAt < nextRestart)
                        nextRestart = slot.restartAt;
                    anyPending = true;
                }
            }
            anyLive = anyLive || slot.live();
        }

        if (!anyLive && !anyPending) {
            stats.abandonedSeeds += queue.size();
            queue.clear();
            break;
        }

        std::vector<pollfd> fds;
        std::vector<std::size_t> fdSlot;
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (slots[i].live()) {
                fds.push_back({slots[i].resFd, POLLIN, 0});
                fdSlot.push_back(i);
            }
        }
        int timeoutMs = 20;
        if (anyPending) {
            const auto delta =
                std::chrono::duration_cast<
                    std::chrono::milliseconds>(nextRestart - now)
                    .count();
            timeoutMs = static_cast<int>(std::max<long long>(
                1, std::min<long long>(delta, 20)));
        }
        if (!fds.empty()) {
            while (::poll(fds.data(), fds.size(), timeoutMs) < 0 &&
                   errno == EINTR) {
            }
        }

        for (std::size_t k = 0; k < fds.size(); ++k) {
            if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
                continue;
            ShardSlot &slot = slots[fdSlot[k]];
            if (!slot.live())
                continue;
            std::uint8_t chunk[4096];
            const ssize_t n =
                ::read(slot.resFd, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR || errno == EAGAIN)
                    continue;
            }
            if (n > 0) {
                slot.frames.feed(chunk,
                                 static_cast<std::size_t>(n));
                slot.lastProgress = Clock::now();
            }

            FrameHeader header{};
            while (slot.frames.next(header, payload)) {
                switch (header.type) {
                case kUnitStart:
                    break;
                case kUnitResult: {
                    if (payload.size() <
                        sizeof(std::uint64_t) + sizeof(ResultWire))
                        break;
                    std::uint64_t unit = 0;
                    std::memcpy(&unit, payload.data(),
                                sizeof(unit));
                    ResultWire wire;
                    std::memcpy(&wire,
                                payload.data() + sizeof(unit),
                                sizeof(wire));
                    (void)applyRecord(
                        wire.rec, wire.prefix,
                        std::min<std::uint32_t>(wire.prefixLen, 32));
                    slot.hasInflight = false;
                    slot.failures = 0;
                    dispatch(slot);
                    break;
                }
                case kCrash:
                    slot.sawCrashFrame = true;
                    slot.crashFrame = crashFromWire(payload);
                    break;
                case kDone:
                    break;
                default:
                    break;
                }
            }

            if (n == 0)
                handleDeath(slot, fdSlot[k]);
        }

        if (queue.empty()) {
            bool busy = false;
            for (auto &slot : slots) {
                if (slot.live()) {
                    if (slot.hasInflight)
                        busy = true;
                    else
                        dispatch(slot);  // closes the command pipe
                }
                busy = busy || slot.pendingRestart;
            }
            if (!busy) {
                bool allGone = true;
                for (const auto &slot : slots)
                    allGone = allGone && !slot.live();
                if (allGone)
                    break;
            }
        }
    }

    result.workerRestarts = stats.shardRetries;
    result.benchedWorkers = stats.benchedShards;
    result.outcome = outcome;
    detail::mergeSeedOrder(records, opt, result);
    stats.resumedSeeds = result.resumedRuns;

    // Crash order is harvest order (nondeterministic under retries);
    // canonicalize so chaos runs compare equal to the reference.
    std::sort(result.crashes.begin(), result.crashes.end(),
              [](const support::CrashInfo &a,
                 const support::CrashInfo &b) {
                  return a.unit < b.unit;
              });

    if (support::metrics::enabled()) {
        support::metrics::counter("explore.sharded.spawns")
            .add(stats.spawns);
        support::metrics::counter("explore.sharded.retries")
            .add(stats.shardRetries);
        support::metrics::counter("explore.sharded.harvested")
            .add(stats.harvestedRecords);
    }
    publish();
    return result;
}

} // namespace lfm::explore
