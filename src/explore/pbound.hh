/**
 * @file
 * Preemption-bounded scheduling (CHESS-style).
 *
 * Most concurrency bugs need only a small number of preemptions —
 * the scheduling-side twin of the study's few-accesses finding. The
 * wrapper policy charges one unit of budget whenever it moves off a
 * thread that is still runnable; with the budget exhausted it must
 * keep running the current thread until it blocks or finishes.
 */

#ifndef LFM_EXPLORE_PBOUND_HH
#define LFM_EXPLORE_PBOUND_HH

#include "sim/policy.hh"

namespace lfm::explore
{

/** Preemption-budget wrapper around an inner policy. */
class PreemptionBoundPolicy : public sim::SchedulePolicy
{
  public:
    PreemptionBoundPolicy(unsigned budget, sim::SchedulePolicy &inner);

    void beginExecution(std::uint64_t seed) override;
    std::size_t pick(const sim::SchedView &view) override;
    const char *name() const override { return "pbound"; }

    /** Preemptions actually spent in the last execution. */
    unsigned used() const { return used_; }

  private:
    unsigned budget_;
    unsigned used_ = 0;
    sim::SchedulePolicy &inner_;
};

} // namespace lfm::explore

#endif // LFM_EXPLORE_PBOUND_HH
