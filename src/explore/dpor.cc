#include "explore/dpor.hh"

#include <set>

#include "support/logging.hh"

namespace lfm::explore
{

ThreadPlanPolicy::ThreadPlanPolicy(std::vector<sim::ThreadId> plan)
    : plan_(std::move(plan))
{
}

void
ThreadPlanPolicy::beginExecution(std::uint64_t seed)
{
    (void)seed;
    pos_ = 0;
    diverged_ = false;
}

std::size_t
ThreadPlanPolicy::pick(const sim::SchedView &view)
{
    LFM_ASSERT(!view.choices.empty(), "pick with no choices");
    if (pos_ < plan_.size()) {
        const sim::ThreadId want = plan_[pos_++];
        for (std::size_t i = 0; i < view.choices.size(); ++i) {
            if (view.choices[i].tid == want &&
                !view.choices[i].spuriousWake)
                return i;
        }
        diverged_ = true;
        return 0;
    }
    for (std::size_t i = 0; i < view.choices.size(); ++i) {
        if (!view.choices[i].spuriousWake)
            return i;
    }
    return 0;
}

bool
dependentOps(const sim::ChoiceRecord &a, const sim::ChoiceRecord &b)
{
    using sim::OpKind;
    if (a.tid == b.tid)
        return true;
    if (a.obj == trace::kNoObject || a.obj != b.obj)
        return false;

    auto isData = [](OpKind k) {
        return k == OpKind::Read || k == OpKind::Write ||
               k == OpKind::Alloc || k == OpKind::Free;
    };
    auto isDataWrite = [](OpKind k) {
        return k == OpKind::Write || k == OpKind::Alloc ||
               k == OpKind::Free;
    };
    if (isData(a.kind) && isData(b.kind))
        return isDataWrite(a.kind) || isDataWrite(b.kind);

    // Any two sync operations on the same object are dependent:
    // lock/unlock pairs, signal/wait, sem ops, barrier arrivals.
    return !isData(a.kind) && !isData(b.kind);
}

bool
neverCoEnabled(const sim::ChoiceRecord &a, const sim::ChoiceRecord &b)
{
    using sim::OpKind;
    if (a.obj != b.obj || a.obj == trace::kNoObject)
        return false;
    auto isRelease = [](OpKind k) {
        return k == OpKind::MutexUnlock || k == OpKind::RwRdUnlock ||
               k == OpKind::RwWrUnlock;
    };
    auto isBlockingAcquire = [](OpKind k) {
        return k == OpKind::MutexLock || k == OpKind::Reacquire ||
               k == OpKind::RwRdLock || k == OpKind::RwWrLock;
    };
    // A release is only enabled while its thread holds the object,
    // which is exactly when a blocking acquisition is disabled.
    return (isRelease(a.kind) && isBlockingAcquire(b.kind)) ||
           (isRelease(b.kind) && isBlockingAcquire(a.kind));
}

DporResult
exploreDpor(const sim::ProgramFactory &factory,
            const DporOptions &options,
            const ManifestPredicate &manifest)
{
    struct Node
    {
        std::vector<sim::ChoiceRecord> choices;
        std::set<sim::ThreadId> backtrack;
        std::set<sim::ThreadId> done;
    };

    DporResult result;
    std::vector<Node> stack;
    std::vector<sim::ThreadId> plan;

    for (;;) {
        if (result.executions >= options.maxExecutions)
            return result; // not exhausted

        ThreadPlanPolicy policy(plan);
        sim::ExecOptions exec;
        exec.maxDecisions = options.maxDecisions;
        auto execution = sim::runProgram(factory, policy, exec);
        ++result.executions;

        const auto &decisions = execution.decisions;
        const std::size_t n = decisions.size();

        // Executed thread per level, and node bookkeeping.
        std::vector<sim::ThreadId> tids(n);
        std::vector<sim::ChoiceRecord> ops(n);
        if (stack.size() > n)
            stack.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            const auto &d = decisions[i];
            tids[i] = d.choices[d.chosen].tid;
            ops[i] = d.choices[d.chosen];
            if (i < stack.size()) {
                stack[i].choices = d.choices;
            } else {
                Node node;
                node.choices = d.choices;
                node.backtrack = {tids[i]};
                node.done = {tids[i]};
                stack.push_back(std::move(node));
            }
        }

        // Backtrack-point computation: for each step i, the latest
        // earlier dependent step j of another thread gets a
        // backtracking obligation for tids[i] (or everyone enabled
        // there when tids[i] was not enabled at j).
        for (std::size_t i = 1; i < n; ++i) {
            for (std::size_t j = i; j-- > 0;) {
                if (tids[j] == tids[i])
                    continue;
                if (!dependentOps(ops[j], ops[i]))
                    continue;
                if (neverCoEnabled(ops[j], ops[i]))
                    continue; // forced order, not a reversible race
                bool enabledAtJ = false;
                for (const auto &c : stack[j].choices) {
                    if (c.tid == tids[i] && !c.spuriousWake) {
                        enabledAtJ = true;
                        break;
                    }
                }
                if (enabledAtJ) {
                    stack[j].backtrack.insert(tids[i]);
                } else {
                    for (const auto &c : stack[j].choices) {
                        if (!c.spuriousWake)
                            stack[j].backtrack.insert(c.tid);
                    }
                }
                break; // only the latest dependent step
            }
        }

        if (manifest(execution)) {
            ++result.manifestations;
            if (!result.firstManifestPlan)
                result.firstManifestPlan = tids;
            if (options.stopAtFirst)
                return result;
        }

        // Pop to the deepest node with an unexplored obligation.
        std::size_t level = stack.size();
        sim::ThreadId next = trace::kNoThread;
        while (level > 0) {
            Node &node = stack[level - 1];
            for (sim::ThreadId tid : node.backtrack) {
                if (!node.done.count(tid)) {
                    next = tid;
                    break;
                }
            }
            if (next != trace::kNoThread)
                break;
            --level;
        }
        if (level == 0) {
            result.exhausted = true;
            return result;
        }
        stack[level - 1].done.insert(next);
        stack.resize(level);
        plan.assign(tids.begin(),
                    tids.begin() +
                        static_cast<std::ptrdiff_t>(level - 1));
        plan.push_back(next);
    }
}

} // namespace lfm::explore
