#include "explore/dpor.hh"

#include "explore/parallel.hh"
#include "support/logging.hh"

namespace lfm::explore
{

ThreadPlanPolicy::ThreadPlanPolicy(std::vector<sim::ThreadId> plan)
    : plan_(std::move(plan))
{
}

void
ThreadPlanPolicy::beginExecution(std::uint64_t seed)
{
    (void)seed;
    pos_ = 0;
    diverged_ = false;
}

std::size_t
ThreadPlanPolicy::pick(const sim::SchedView &view)
{
    LFM_ASSERT(!view.choices.empty(), "pick with no choices");
    if (pos_ < plan_.size()) {
        const sim::ThreadId want = plan_[pos_++];
        for (std::size_t i = 0; i < view.choices.size(); ++i) {
            if (view.choices[i].tid == want &&
                !view.choices[i].spuriousWake)
                return i;
        }
        diverged_ = true;
        return 0;
    }
    for (std::size_t i = 0; i < view.choices.size(); ++i) {
        if (!view.choices[i].spuriousWake)
            return i;
    }
    return 0;
}

bool
dependentOps(const sim::ChoiceRecord &a, const sim::ChoiceRecord &b)
{
    using sim::OpKind;
    if (a.tid == b.tid)
        return true;
    if (a.obj == trace::kNoObject || a.obj != b.obj)
        return false;

    auto isData = [](OpKind k) {
        return k == OpKind::Read || k == OpKind::Write ||
               k == OpKind::Alloc || k == OpKind::Free;
    };
    auto isDataWrite = [](OpKind k) {
        return k == OpKind::Write || k == OpKind::Alloc ||
               k == OpKind::Free;
    };
    if (isData(a.kind) && isData(b.kind))
        return isDataWrite(a.kind) || isDataWrite(b.kind);

    // Any two sync operations on the same object are dependent:
    // lock/unlock pairs, signal/wait, sem ops, barrier arrivals.
    return !isData(a.kind) && !isData(b.kind);
}

bool
neverCoEnabled(const sim::ChoiceRecord &a, const sim::ChoiceRecord &b)
{
    using sim::OpKind;
    if (a.obj != b.obj || a.obj == trace::kNoObject)
        return false;
    auto isRelease = [](OpKind k) {
        return k == OpKind::MutexUnlock || k == OpKind::RwRdUnlock ||
               k == OpKind::RwWrUnlock;
    };
    auto isBlockingAcquire = [](OpKind k) {
        return k == OpKind::MutexLock || k == OpKind::Reacquire ||
               k == OpKind::RwRdLock || k == OpKind::RwWrLock;
    };
    // A release is only enabled while its thread holds the object,
    // which is exactly when a blocking acquisition is disabled.
    return (isRelease(a.kind) && isBlockingAcquire(b.kind)) ||
           (isRelease(b.kind) && isBlockingAcquire(a.kind));
}

DporResult
exploreDpor(const sim::ProgramFactory &factory,
            const DporOptions &options,
            const ManifestPredicate &manifest)
{
    // The explored set is the least fixpoint of the backtrack
    // obligations, so counts and verdicts at exhaustion are those of
    // the classic stack-based loop; only the visit order differs
    // (the engine services the newest run's obligations first).
    return ParallelRunner(1).dpor(factory, options, manifest);
}

} // namespace lfm::explore
