/**
 * @file
 * Multi-process sharded stress campaigns: the third backend of the
 * executor concept's unit face (support/executor.hh).
 *
 * The fork-sandbox backend contains *seed* crashes; this backend
 * additionally survives *shard* failures. The seed space is dealt
 * dynamically to N supervised shard child processes, each of which
 * owns a private fsync'd CRC journal (`<state>/<name>.shard<I>.lfmj`)
 * and appends every completed seed BEFORE reporting it over the
 * result pipe. That write-ahead ordering is the whole fault-tolerance
 * story:
 *
 *  - a shard SIGKILLed mid-campaign loses nothing that reached its
 *    journal: the supervisor harvests the journal tail (records
 *    appended but never reported), requeues only the genuinely
 *    unfinished seed, and respawns the shard under a seeded
 *    RetryPolicy backoff;
 *  - a shard that keeps dying is benched after maxShardFailures
 *    consecutive failures and its remaining seeds flow to survivors;
 *  - a shard stalled past the straggler deadline is SIGKILLed and its
 *    seed re-dispatched;
 *  - a shard journal with a torn/corrupt tail is truncated back to
 *    its valid prefix (support::repairJournalTail) and only the lost
 *    suffix re-runs — sibling shards merge untouched;
 *  - killing the *supervisor process itself* is just the resume path:
 *    a --resume run loads every shard journal, restores recovered
 *    seeds, and runs only the remainder.
 *
 * Per-seed execution is deterministic, and the final merge is the
 * canonical seed-order loop shared with every other backend
 * (explore/merge.hh), so the merged StressResult is identical for
 * every shard count and every failure/retry/resume history — the
 * property the chaos tests assert byte for byte.
 */

#ifndef LFM_EXPLORE_SHARDED_HH
#define LFM_EXPLORE_SHARDED_HH

#include <cstdint>
#include <string>

#include "explore/parallel.hh"
#include "explore/runner.hh"
#include "support/failsafe.hh"
#include "support/sandbox.hh"

namespace lfm::explore
{

/**
 * Deterministic fault injection for the robustness tests. Each knob
 * targets one shard index and fires on that shard's FIRST incarnation
 * only (attempt 0), so a retried shard makes progress and the
 * campaign still converges to the reference result.
 */
struct ShardChaos
{
    static constexpr unsigned kNone = ~0u;

    /** SIGKILL this shard right after it journals (but before it
     * reports) its (killAfterSeeds+1)-th seed: exercises the
     * harvested-not-discarded path — the record is on disk, the
     * result frame never arrives. */
    unsigned killShard = kNone;
    std::size_t killAfterSeeds = 0;

    /** This shard hangs forever on its first dispatched seed:
     * exercises the straggler deadline (requires a nonzero
     * stragglerTimeoutMs). */
    unsigned stallShard = kNone;

    /** This shard _exit(3)s at startup on EVERY attempt: exercises
     * benching + seed reassignment to the surviving shards. */
    unsigned exitShard = kNone;
};

/** Campaign-level options of the sharded backend. */
struct ShardedOptions
{
    /** Shard child processes (clamped to the unit count; >= 1). */
    unsigned shards = 1;

    /** Directory holding the per-shard journals. */
    std::string stateDir = ".";

    /** Campaign name: journal file prefix AND the campaign identity
     * (campaignKey(campaignName) keys every journal record). */
    std::string campaignName = "campaign";

    /** Load existing shard journals and run only what they miss. A
     * fresh run (false) deletes stale shard journals first. */
    bool resume = false;

    /** Consecutive failures before a shard is benched. */
    unsigned maxShardFailures = 3;

    /** Seeded deterministic backoff between shard respawns. */
    support::RetryPolicy retry{6, 1'000'000, 32'000'000, 0};

    /** SIGKILL a shard whose in-flight seed made no observable
     * progress for this long; 0 disables the straggler watchdog. */
    std::uint64_t stragglerTimeoutMs = 0;

    /** Run each seed in a fork-isolated grandchild (runIsolated) so a
     * crashing seed costs one fork instead of one shard respawn. Off,
     * a crashing seed takes its shard down and is blamed via the
     * crash reporter — both paths journal the crash either way. */
    bool sandboxSeeds = false;

    /** Resource limits for sandboxSeeds grandchildren. */
    support::SandboxLimits limits;

    ShardChaos chaos;
};

/** Operational counters of one sharded campaign (the robustness
 * ledger; the merged StressResult is invariant to all of these). */
struct ShardedStats
{
    unsigned shards = 0;              ///< shard slots actually used
    std::uint64_t spawns = 0;         ///< total shard processes forked
    std::uint64_t shardRetries = 0;   ///< respawns after a failure
    std::uint64_t benchedShards = 0;  ///< slots permanently retired
    std::uint64_t stragglersCancelled = 0;
    std::uint64_t harvestedRecords = 0;  ///< journaled-but-unreported
    std::uint64_t resumedSeeds = 0;      ///< restored from journals
    std::uint64_t abandonedSeeds = 0;    ///< lost to a cut / all-bench
    bool sawCorruptTail = false;  ///< any shard journal needed repair
};

/** The journal path of one shard of a named campaign. */
std::string shardJournalPath(const std::string &stateDir,
                             const std::string &campaignName,
                             unsigned shard);

/**
 * Load and merge every shard journal of a named campaign (sorted
 * filename order; last write wins per seed), repairing torn tails in
 * place so the files stay appendable. Missing directory or no
 * matching files recover as empty.
 */
RecoveredCampaigns loadShardJournals(const std::string &stateDir,
                                     const std::string &campaignName,
                                     bool *sawCorruptTail = nullptr);

/**
 * Run a stress campaign on the sharded backend. options.journal,
 * options.resume, options.campaignId and options.sandbox are owned by
 * this backend (shards journal for themselves; identity comes from
 * sharded.campaignName) and must be unset; onExecution cannot cross
 * the process boundary. options.budget is not enforced across shards
 * (use cancel/deadline), matching the fork-sandbox contract.
 */
StressResult shardedStress(const sim::ProgramFactory &factory,
                           const PolicyFactory &makePolicy,
                           const StressOptions &options,
                           const ShardedOptions &sharded,
                           const ManifestPredicate &manifest =
                               defaultManifest,
                           ShardedStats *statsOut = nullptr);

} // namespace lfm::explore

#endif // LFM_EXPLORE_SHARDED_HH
