/**
 * @file
 * Failing-schedule minimization.
 *
 * A schedule found by stress or DFS usually contains many incidental
 * context switches. For the bug report a developer wants the
 * *simplest* interleaving: the fewest preemptions that still fail —
 * which, per the study's access-ordering finding, is small (the
 * certificate needs at most ~4 ordered operations, i.e. a couple of
 * forced switches). This greedy minimizer repeatedly tries to remove
 * a preemption (continue the previous thread instead of switching)
 * and keeps the change whenever the failure survives replay.
 */

#ifndef LFM_EXPLORE_MINIMIZE_HH
#define LFM_EXPLORE_MINIMIZE_HH

#include <vector>

#include "explore/runner.hh"
#include "sim/program.hh"

namespace lfm::explore
{

/** Result of minimizeSchedule(). */
struct MinimizeResult
{
    /** Decision-index path of the minimized failing schedule. */
    std::vector<std::size_t> schedule;

    /** Context switches away from a still-runnable thread. */
    unsigned preemptionsBefore = 0;
    unsigned preemptionsAfter = 0;

    /** Replays spent minimizing. */
    std::size_t replays = 0;

    /** The minimized schedule still manifests (sanity). */
    bool stillFails = false;
};

/** Preemption count of a recorded execution. */
unsigned countPreemptions(const sim::Execution &execution);

/**
 * Greedily minimize a failing schedule.
 *
 * @param factory the program under test
 * @param failingPath decision indices of a manifesting execution
 * @param maxReplays replay budget
 */
MinimizeResult minimizeSchedule(const sim::ProgramFactory &factory,
                                const std::vector<std::size_t>
                                    &failingPath,
                                std::size_t maxReplays = 500,
                                const ManifestPredicate &manifest =
                                    defaultManifest);

} // namespace lfm::explore

#endif // LFM_EXPLORE_MINIMIZE_HH
