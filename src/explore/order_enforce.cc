#include "explore/order_enforce.hh"

#include "explore/runner.hh"
#include "support/logging.hh"

namespace lfm::explore
{

OrderEnforcingPolicy::OrderEnforcingPolicy(
    std::vector<bugs::OrderConstraint> constraints,
    sim::SchedulePolicy &inner)
    : constraints_(std::move(constraints)), inner_(inner)
{
}

void
OrderEnforcingPolicy::beginExecution(std::uint64_t seed)
{
    executed_.clear();
    infeasible_ = false;
    inner_.beginExecution(seed);
}

bool
OrderEnforcingPolicy::blocked(const std::string &label) const
{
    if (label.empty())
        return false;
    for (const auto &c : constraints_) {
        if (c.after == label && !executed_.count(c.before))
            return true;
    }
    return false;
}

std::size_t
OrderEnforcingPolicy::pick(const sim::SchedView &view)
{
    // Build the filtered view of non-blocked alternatives.
    std::vector<std::size_t> allowed;
    std::vector<sim::ChoiceRecord> filtered;
    for (std::size_t i = 0; i < view.choices.size(); ++i) {
        if (!blocked(view.choices[i].label)) {
            allowed.push_back(i);
            filtered.push_back(view.choices[i]);
        }
    }

    std::size_t chosen;
    if (allowed.empty()) {
        // Cannot enforce the constraints on this path; fall back to
        // the inner policy over all alternatives and remember.
        infeasible_ = true;
        chosen = inner_.pick(view);
    } else if (allowed.size() == view.choices.size()) {
        chosen = inner_.pick(view);
    } else {
        sim::SchedView sub{filtered, view.stepIndex, view.lastRun};
        const std::size_t subIdx = inner_.pick(sub);
        LFM_ASSERT(subIdx < allowed.size(),
                   "inner policy picked outside the filtered view");
        chosen = allowed[subIdx];
    }

    const auto &label = view.choices[chosen].label;
    if (!label.empty())
        executed_.insert(label);
    return chosen;
}

CertificateCheck
checkCertificate(const bugs::BugKernel &kernel, std::size_t runs)
{
    CertificateCheck check;
    check.kernelId = kernel.info().id;

    auto factory = kernel.factory(bugs::Variant::Buggy);
    for (std::size_t i = 0; i < runs; ++i) {
        sim::RandomPolicy inner;
        OrderEnforcingPolicy policy(kernel.info().manifestation, inner);
        sim::ExecOptions opt;
        opt.seed = i + 1;
        auto exec = sim::runProgram(factory, policy, opt);
        ++check.runs;
        if (defaultManifest(exec))
            ++check.manifested;
        if (policy.infeasible())
            check.everInfeasible = true;
    }
    return check;
}

} // namespace lfm::explore
