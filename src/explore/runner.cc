#include "explore/runner.hh"

#include "explore/parallel.hh"

namespace lfm::explore
{

bool
defaultManifest(const sim::Execution &exec)
{
    return exec.failed();
}

StressResult
stressProgram(const sim::ProgramFactory &factory,
              sim::SchedulePolicy &policy, const StressOptions &options,
              const ManifestPredicate &manifest)
{
    return ParallelRunner(1).stress(factory, borrowPolicy(policy),
                                    options, manifest);
}

} // namespace lfm::explore
