#include "explore/runner.hh"

#include <cstring>

#include "explore/parallel.hh"
#include "support/logging.hh"

namespace lfm::explore
{

bool
defaultManifest(const sim::Execution &exec)
{
    return exec.failed();
}

std::uint64_t
campaignKey(const std::string &name)
{
    // FNV-1a: stable across runs and builds (journal identities must
    // survive the process).
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : name) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ull;
    }
    return h;
}

bool
CampaignJournal::open(const std::string &path, bool fsyncEveryAppend,
                      std::size_t checkpointEvery)
{
    std::lock_guard<std::mutex> guard(m_);
    checkpointEvery_ = std::max<std::size_t>(1, checkpointEvery);
    sinceCheckpoint_ = 0;
    snapshot_.clear();
    return journal_.open(path, fsyncEveryAppend);
}

void
CampaignJournal::seedSnapshot(const std::vector<SeedRecord> &recovered)
{
    std::lock_guard<std::mutex> guard(m_);
    snapshot_ = recovered;
}

bool
CampaignJournal::append(const SeedRecord &record)
{
    std::lock_guard<std::mutex> guard(m_);
    if (!journal_.append(kSeedRecordType, &record, sizeof(record)))
        return false;
    snapshot_.push_back(record);
    if (++sinceCheckpoint_ >= checkpointEvery_) {
        sinceCheckpoint_ = 0;
        // Best-effort: a failed checkpoint only means a longer tail
        // replay on resume — the appended records are already durable.
        (void)journal_.checkpoint(
            snapshot_.data(), snapshot_.size() * sizeof(SeedRecord));
    }
    return true;
}

void
CampaignJournal::close()
{
    std::lock_guard<std::mutex> guard(m_);
    journal_.close();
}

namespace
{

/** Parse concatenated SeedRecords; tolerates a ragged tail. */
void
parseRecords(const std::uint8_t *data, std::size_t len,
             RecoveredCampaigns &out)
{
    for (std::size_t off = 0; off + sizeof(SeedRecord) <= len;
         off += sizeof(SeedRecord)) {
        SeedRecord rec{};
        std::memcpy(&rec, data + off, sizeof(rec));
        out.byCampaign[rec.campaignId][rec.seedIndex] = rec;
        out.all.push_back(rec);
    }
}

} // namespace

RecoveredCampaigns
RecoveredCampaigns::load(const std::string &path)
{
    return fromRaw(support::recoverJournal(path));
}

RecoveredCampaigns
RecoveredCampaigns::fromRaw(const support::RecoveredJournal &raw)
{
    RecoveredCampaigns out;
    out.corruptTail = raw.corruptTail;
    out.warning = raw.warning;
    if (raw.hasCheckpoint)
        parseRecords(raw.checkpoint.data(), raw.checkpoint.size(),
                     out);
    for (const auto &record : raw.records) {
        if (record.type != kSeedRecordType)
            continue;  // other layers may journal their own types
        parseRecords(record.payload.data(), record.payload.size(),
                     out);
    }
    return out;
}

const std::map<std::uint64_t, SeedRecord> *
RecoveredCampaigns::campaign(std::uint64_t id) const
{
    const auto it = byCampaign.find(id);
    return it == byCampaign.end() ? nullptr : &it->second;
}

StressResult
stressProgram(const sim::ProgramFactory &factory,
              sim::SchedulePolicy &policy, const StressOptions &options,
              const ManifestPredicate &manifest)
{
    return ParallelRunner(1).stress(factory, borrowPolicy(policy),
                                    options, manifest);
}

} // namespace lfm::explore
