#include "explore/runner.hh"

namespace lfm::explore
{

bool
defaultManifest(const sim::Execution &exec)
{
    return exec.failed();
}

StressResult
stressProgram(const sim::ProgramFactory &factory,
              sim::SchedulePolicy &policy, const StressOptions &options,
              const ManifestPredicate &manifest)
{
    StressResult result;
    double totalDecisions = 0.0;

    for (std::size_t i = 0; i < options.runs; ++i) {
        sim::ExecOptions exec = options.exec;
        exec.seed = options.firstSeed + i;
        auto execution = sim::runProgram(factory, policy, exec);
        ++result.runs;
        totalDecisions += static_cast<double>(execution.steps());
        if (manifest(execution)) {
            ++result.manifestations;
            if (!result.firstManifestSeed)
                result.firstManifestSeed = exec.seed;
            if (options.stopAtFirst)
                break;
        }
    }
    if (result.runs > 0)
        result.avgDecisions =
            totalDecisions / static_cast<double>(result.runs);
    return result;
}

} // namespace lfm::explore
