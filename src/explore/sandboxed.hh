/**
 * @file
 * Sandboxed campaign paths (internal to the explore layer).
 *
 * ParallelRunner dispatches here when a campaign opts into
 * SandboxPolicy::Fork. Stress shards into per-seed units driven
 * through the SandboxSupervisor (crash containment + worker restart +
 * journaling); DFS/DPOR get whole-campaign containment via
 * runIsolated (the replay tree is one connected computation — a crash
 * is deterministic on replay, so there is nothing to restart).
 */

#ifndef LFM_EXPLORE_SANDBOXED_HH
#define LFM_EXPLORE_SANDBOXED_HH

#include "explore/dfs.hh"
#include "explore/dpor.hh"
#include "explore/parallel.hh"
#include "explore/runner.hh"

namespace lfm::explore
{

StressResult sandboxedStress(unsigned workers,
                             const sim::ProgramFactory &factory,
                             const PolicyFactory &makePolicy,
                             const StressOptions &options,
                             const ManifestPredicate &manifest);

DfsResult sandboxedDfs(unsigned workers,
                       const sim::ProgramFactory &factory,
                       const DfsOptions &options,
                       const ManifestPredicate &manifest);

DporResult sandboxedDpor(unsigned workers,
                         const sim::ProgramFactory &factory,
                         const DporOptions &options,
                         const ManifestPredicate &manifest);

} // namespace lfm::explore

#endif // LFM_EXPLORE_SANDBOXED_HH
