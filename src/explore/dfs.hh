/**
 * @file
 * Stateless systematic exploration (replay-based DFS).
 *
 * Every execution records its decision tree path; the explorer
 * backtracks to the deepest decision with an untried alternative and
 * replays the prefix. With a bounded program this enumerates every
 * schedule — the exhaustive ideal against which the study's
 * "interleavings are rarely exercised by stress testing" point is
 * made quantitative.
 */

#ifndef LFM_EXPLORE_DFS_HH
#define LFM_EXPLORE_DFS_HH

#include <cstdint>
#include <optional>

#include "explore/runner.hh"
#include "sim/program.hh"

namespace lfm::explore
{

/** Options for exploreDfs(). */
struct DfsOptions
{
    /** Hard cap on executions (the tree can be huge). */
    std::size_t maxExecutions = 10000;

    /** Per-execution decision cap. */
    std::size_t maxDecisions = 2000;

    /** Allow spurious wakeups as explorable branches. */
    bool spuriousWakeups = false;

    /** Stop at the first manifesting execution. */
    bool stopAtFirst = false;

    /** Suppress trace collection (decisions are still recorded —
     * the search needs them); verdicts are unaffected. */
    bool countOnly = false;

    /** Campaign-level cancellation; null = never. */
    const support::CancellationToken *cancel = nullptr;

    /** Campaign-level wall-clock cutoff. */
    support::Deadline deadline;

    /**
     * Crash containment: with SandboxPolicy::Fork the whole search
     * runs in one forked child under the rlimits, and a crash
     * anywhere in the tree yields outcome Crashed with a harvested
     * crash record instead of killing the campaign process. The
     * search does not shard into restartable units (the replay tree
     * is one connected computation), so there is no per-unit restart
     * — a crashing program crashes deterministically on replay too.
     */
    support::SandboxOptions sandbox;
};

/** Result of a DFS exploration. */
struct DfsResult
{
    std::size_t executions = 0;
    std::size_t manifestations = 0;

    /** True when the whole schedule tree was enumerated. */
    bool exhausted = false;

    /** Decision-index path of the first manifesting execution. */
    std::optional<std::vector<std::size_t>> firstManifestPath;

    /** Completed, or the cut (Truncated on the execution budget,
     * Cancelled / DeadlineExpired from the failsafe layer) that ended
     * the search with the partial counts above. */
    support::RunOutcome outcome = support::RunOutcome::Completed;

    /** Executions that hit the per-execution decision cap. */
    std::size_t truncated = 0;

    /** True when the sandboxed search child died on a fatal signal;
     * outcome is then Crashed and `crash` holds the harvest. */
    bool crashed = false;
    support::CrashInfo crash;
};

/**
 * Systematically enumerate schedules of the program.
 */
DfsResult exploreDfs(const sim::ProgramFactory &factory,
                     const DfsOptions &options = {},
                     const ManifestPredicate &manifest =
                         defaultManifest);

} // namespace lfm::explore

#endif // LFM_EXPLORE_DFS_HH
