#include "explore/pbound.hh"

#include "support/logging.hh"

namespace lfm::explore
{

PreemptionBoundPolicy::PreemptionBoundPolicy(unsigned budget,
                                             sim::SchedulePolicy &inner)
    : budget_(budget), inner_(inner)
{
}

void
PreemptionBoundPolicy::beginExecution(std::uint64_t seed)
{
    used_ = 0;
    inner_.beginExecution(seed);
}

std::size_t
PreemptionBoundPolicy::pick(const sim::SchedView &view)
{
    // Is the previously running thread still an alternative?
    std::size_t lastIdx = view.choices.size();
    for (std::size_t i = 0; i < view.choices.size(); ++i) {
        if (view.choices[i].tid == view.lastRun &&
            !view.choices[i].spuriousWake) {
            lastIdx = i;
            break;
        }
    }

    if (lastIdx == view.choices.size()) {
        // The last thread blocked or finished: switching is free.
        return inner_.pick(view);
    }
    if (used_ >= budget_) {
        // Budget exhausted: must continue the current thread.
        return lastIdx;
    }
    const std::size_t chosen = inner_.pick(view);
    if (view.choices[chosen].tid != view.lastRun)
        ++used_;
    return chosen;
}

} // namespace lfm::explore
