#include "explore/dfs.hh"

#include "sim/policy.hh"

namespace lfm::explore
{

DfsResult
exploreDfs(const sim::ProgramFactory &factory, const DfsOptions &options,
           const ManifestPredicate &manifest)
{
    DfsResult result;
    std::vector<std::size_t> prefix;

    for (;;) {
        if (result.executions >= options.maxExecutions)
            return result; // not exhausted

        sim::FixedSchedulePolicy policy(prefix);
        sim::ExecOptions exec;
        exec.maxDecisions = options.maxDecisions;
        exec.spuriousWakeups = options.spuriousWakeups;
        auto execution = sim::runProgram(factory, policy, exec);
        ++result.executions;

        if (manifest(execution)) {
            ++result.manifestations;
            if (!result.firstManifestPath) {
                std::vector<std::size_t> path;
                for (const auto &d : execution.decisions)
                    path.push_back(d.chosen);
                result.firstManifestPath = std::move(path);
            }
            if (options.stopAtFirst)
                return result;
        }

        // Backtrack: deepest decision with an untried alternative.
        const auto &decisions = execution.decisions;
        std::size_t level = decisions.size();
        while (level > 0) {
            const auto &d = decisions[level - 1];
            if (d.chosen + 1 < d.choices.size())
                break;
            --level;
        }
        if (level == 0) {
            result.exhausted = true;
            return result;
        }
        prefix.clear();
        for (std::size_t i = 0; i + 1 < level; ++i)
            prefix.push_back(decisions[i].chosen);
        prefix.push_back(decisions[level - 1].chosen + 1);
    }
}

} // namespace lfm::explore
