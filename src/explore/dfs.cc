#include "explore/dfs.hh"

#include "explore/parallel.hh"

namespace lfm::explore
{

DfsResult
exploreDfs(const sim::ProgramFactory &factory, const DfsOptions &options,
           const ManifestPredicate &manifest)
{
    // With one worker the frontier-split engine pops tasks in the
    // exact order the old recursive backtracking visited schedules,
    // so this wrapper is behavior-preserving, budget semantics
    // included.
    return ParallelRunner(1).dfs(factory, options, manifest);
}

} // namespace lfm::explore
