/**
 * @file
 * Stress runner: repeated seeded executions under one policy, with
 * manifestation statistics. This is the "run the test 1000 times and
 * pray" baseline the study's testing-implications section argues
 * against — and the yardstick the systematic explorers beat.
 */

#ifndef LFM_EXPLORE_RUNNER_HH
#define LFM_EXPLORE_RUNNER_HH

#include <cstdint>
#include <functional>
#include <optional>

#include "sim/policy.hh"
#include "sim/program.hh"

namespace lfm::explore
{

/** What counts as "the bug manifested" for a given execution. */
using ManifestPredicate = std::function<bool(const sim::Execution &)>;

/**
 * The default predicate: failure mark, deadlock, or oracle complaint.
 * A step-limit hit is deliberately *not* manifestation: an
 * adversarial scheduler can starve any spin-based wait forever, and
 * kernels whose real symptom is unbounded retry report it themselves
 * via a failure mark after a bounded number of attempts.
 */
bool defaultManifest(const sim::Execution &exec);

/** Aggregate result of a stress campaign. */
struct StressResult
{
    std::size_t runs = 0;
    std::size_t manifestations = 0;
    std::optional<std::uint64_t> firstManifestSeed;
    double avgDecisions = 0.0;

    /** How the campaign ended: Completed, or the failsafe cut that
     * stopped it early (runs/manifestations then cover exactly the
     * executions that finished — partial results, never garbage). */
    support::RunOutcome outcome = support::RunOutcome::Completed;

    /** Executions that hit the per-execution step ceiling. */
    std::size_t truncatedRuns = 0;

    double
    rate() const
    {
        return runs == 0 ? 0.0
                         : static_cast<double>(manifestations) /
                               static_cast<double>(runs);
    }
};

/** Options for stressProgram(). */
struct StressOptions
{
    std::size_t runs = 100;
    std::uint64_t firstSeed = 0;
    sim::ExecOptions exec;
    /** Stop as soon as one manifestation is found. */
    bool stopAtFirst = false;
    /**
     * Skip trace and decision recording (sim count-only mode): the
     * manifest predicate then sees an Execution with an empty trace
     * and no decisions, which the default verdict-based predicate
     * never looks at anyway. Big win for pure rate measurements.
     */
    bool countOnly = false;
    /**
     * Optional streaming hook, called once per completed execution
     * with that run's seed index (seed = firstSeed + index). Invoked
     * from whichever worker thread ran the execution, concurrently
     * with other invocations — the callback must be thread-safe
     * (detect::DetectionStream::submit is the intended consumer).
     * Without stopAtFirst every index in [0, runs) is delivered
     * exactly once, so keyed consumers see a worker-count-invariant
     * set; with stopAtFirst the delivered set depends on timing.
     */
    std::function<void(std::size_t, const sim::Execution &)>
        onExecution;

    /** Campaign-level cancellation: polled between (and, via the
     * executor, within) executions; null = never. */
    const support::CancellationToken *cancel = nullptr;

    /** Campaign-level wall-clock cutoff (combined with any deadline
     * already in exec and with budget.deadline; earliest wins). */
    support::Deadline deadline;

    /** Composite campaign budget (steps / wall time / trace bytes);
     * the default imposes nothing. */
    support::Budget budget;
};

/**
 * Run the program `options.runs` times with seeds firstSeed,
 * firstSeed+1, ... under the given policy.
 */
StressResult stressProgram(const sim::ProgramFactory &factory,
                           sim::SchedulePolicy &policy,
                           const StressOptions &options = {},
                           const ManifestPredicate &manifest =
                               defaultManifest);

} // namespace lfm::explore

#endif // LFM_EXPLORE_RUNNER_HH
