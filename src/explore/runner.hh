/**
 * @file
 * Stress runner: repeated seeded executions under one policy, with
 * manifestation statistics. This is the "run the test 1000 times and
 * pray" baseline the study's testing-implications section argues
 * against — and the yardstick the systematic explorers beat.
 */

#ifndef LFM_EXPLORE_RUNNER_HH
#define LFM_EXPLORE_RUNNER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/policy.hh"
#include "sim/program.hh"
#include "support/journal.hh"
#include "support/sandbox.hh"

namespace lfm::explore
{

// ------------------------------------------------------------------
// Campaign journal glue (support/journal.hh carries opaque bytes;
// this layer defines the per-seed record format and resume logic)
// ------------------------------------------------------------------

/** Journal record type tag for SeedRecord payloads. */
constexpr std::uint16_t kSeedRecordType = 1;

/**
 * One completed (or crashed) seed of a stress campaign, as journaled.
 * Fixed-size trivially-copyable POD: the journal payload is the raw
 * bytes, and checkpoints are just concatenated records.
 */
struct SeedRecord
{
    static constexpr std::uint32_t kManifested = 1u << 0;
    static constexpr std::uint32_t kTruncated = 1u << 1;
    static constexpr std::uint32_t kCrashed = 1u << 2;

    /** Which campaign this seed belongs to (campaignKey). One journal
     * can carry many campaigns — bench binaries share one file. */
    std::uint64_t campaignId = 0;

    /** Seed index within the campaign (seed = firstSeed + index). */
    std::uint64_t seedIndex = 0;

    /** Scheduling decisions the execution took (0 for crashes). */
    std::uint64_t steps = 0;

    std::uint32_t flags = 0;

    /** Fatal signal for crashed seeds; 0 otherwise. */
    std::int32_t signal = 0;

    bool manifested() const { return (flags & kManifested) != 0; }
    bool truncated() const { return (flags & kTruncated) != 0; }
    bool crashed() const { return (flags & kCrashed) != 0; }
};
static_assert(sizeof(SeedRecord) == 32,
              "SeedRecord is a wire format; keep it packed");

/** Stable campaign identity from a human-readable name (FNV-1a). */
std::uint64_t campaignKey(const std::string &name);

/**
 * Thread-safe appender for stress-campaign seed records on top of a
 * support::Journal, with a periodic atomic checkpoint (every
 * checkpointEvery appends) so resume replays a bounded tail.
 */
class CampaignJournal
{
  public:
    /** Open (or create) the journal file for appending. */
    bool open(const std::string &path, bool fsyncEveryAppend = true,
              std::size_t checkpointEvery = 32);

    bool isOpen() const { return journal_.isOpen(); }

    const std::string &path() const { return journal_.path(); }

    /**
     * Pre-fill the checkpoint snapshot with records recovered from a
     * previous run of this same journal file. Must be called before
     * new appends: the next checkpoint's covered offset spans the
     * whole file, so its payload must include the old records too.
     */
    void seedSnapshot(const std::vector<SeedRecord> &recovered);

    /** Append one record (durably) and maybe checkpoint. */
    bool append(const SeedRecord &record);

    void close();

  private:
    std::mutex m_;
    support::Journal journal_;
    std::vector<SeedRecord> snapshot_;
    std::size_t sinceCheckpoint_ = 0;
    std::size_t checkpointEvery_ = 32;
};

/**
 * Everything a journal file knows about past campaigns, indexed for
 * resume. Loading never fails: corruption degrades to fewer records
 * (see support/journal.hh); `warning` says what was skipped.
 */
struct RecoveredCampaigns
{
    /** campaignId -> seedIndex -> record (last write wins). */
    std::map<std::uint64_t, std::map<std::uint64_t, SeedRecord>>
        byCampaign;

    /** Every record in recovery order (for re-seeding checkpoints). */
    std::vector<SeedRecord> all;

    bool corruptTail = false;
    std::string warning;

    static RecoveredCampaigns load(const std::string &path);

    /** Build from an already-recovered raw journal (shard children
     * recover + repair the tail first, then parse). */
    static RecoveredCampaigns
    fromRaw(const support::RecoveredJournal &raw);

    /** The records of one campaign; null when none. */
    const std::map<std::uint64_t, SeedRecord> *
    campaign(std::uint64_t id) const;

    std::size_t
    count(std::uint64_t id) const
    {
        const auto *m = campaign(id);
        return m == nullptr ? 0 : m->size();
    }
};

/** What counts as "the bug manifested" for a given execution. */
using ManifestPredicate = std::function<bool(const sim::Execution &)>;

/**
 * The default predicate: failure mark, deadlock, or oracle complaint.
 * A step-limit hit is deliberately *not* manifestation: an
 * adversarial scheduler can starve any spin-based wait forever, and
 * kernels whose real symptom is unbounded retry report it themselves
 * via a failure mark after a bounded number of attempts.
 */
bool defaultManifest(const sim::Execution &exec);

/** Aggregate result of a stress campaign. */
struct StressResult
{
    std::size_t runs = 0;
    std::size_t manifestations = 0;
    std::optional<std::uint64_t> firstManifestSeed;
    double avgDecisions = 0.0;

    /** How the campaign ended: Completed, or the failsafe cut that
     * stopped it early (runs/manifestations then cover exactly the
     * executions that finished — partial results, never garbage). */
    support::RunOutcome outcome = support::RunOutcome::Completed;

    /** Executions that hit the per-execution step ceiling. */
    std::size_t truncatedRuns = 0;

    /** Seeds whose execution died on a fatal signal inside a sandbox
     * worker (contained; not part of `runs`). When any seed crashed
     * the campaign outcome is Crashed. */
    std::size_t crashedRuns = 0;

    /** Seeds restored from the journal instead of re-executed
     * (included in `runs` with their recorded statistics). */
    std::size_t resumedRuns = 0;

    /** Sandbox worker subprocesses re-forked after a crash. */
    std::uint64_t workerRestarts = 0;

    /** Sandbox worker slots permanently retired after repeated
     * consecutive crashes. */
    std::uint64_t benchedWorkers = 0;

    /** Harvested crash records (signal, responsible seed, schedule
     * prefix), one per crashed seed, including resumed ones. */
    std::vector<support::CrashInfo> crashes;

    /** Every manifesting seed (firstSeed + index) in seed order —
     * the campaign's findings surface: replaying these seeds
     * deterministically reproduces every detection the campaign saw,
     * which is how sharded/resumed runs prove result equivalence. */
    std::vector<std::uint64_t> manifestedSeeds;

    double
    rate() const
    {
        return runs == 0 ? 0.0
                         : static_cast<double>(manifestations) /
                               static_cast<double>(runs);
    }
};

/** Options for stressProgram(). */
struct StressOptions
{
    std::size_t runs = 100;
    std::uint64_t firstSeed = 0;
    sim::ExecOptions exec;
    /** Stop as soon as one manifestation is found. */
    bool stopAtFirst = false;
    /**
     * Skip trace and decision recording (sim count-only mode): the
     * manifest predicate then sees an Execution with an empty trace
     * and no decisions, which the default verdict-based predicate
     * never looks at anyway. Big win for pure rate measurements.
     */
    bool countOnly = false;
    /**
     * Optional streaming hook, called once per completed execution
     * with that run's seed index (seed = firstSeed + index). Invoked
     * from whichever worker thread ran the execution, concurrently
     * with other invocations — the callback must be thread-safe
     * (detect::DetectionStream::submit is the intended consumer).
     * Without stopAtFirst every index in [0, runs) is delivered
     * exactly once, so keyed consumers see a worker-count-invariant
     * set; with stopAtFirst the delivered set depends on timing.
     */
    std::function<void(std::size_t, const sim::Execution &)>
        onExecution;

    /** Campaign-level cancellation: polled between (and, via the
     * executor, within) executions; null = never. */
    const support::CancellationToken *cancel = nullptr;

    /** Campaign-level wall-clock cutoff (combined with any deadline
     * already in exec and with budget.deadline; earliest wins). */
    support::Deadline deadline;

    /** Composite campaign budget (steps / wall time / trace bytes);
     * the default imposes nothing. Not enforced on the sandbox path
     * (results live in worker subprocesses until harvested); use
     * cancel/deadline there instead. */
    support::Budget budget;

    /**
     * Crash containment (support/sandbox.hh). Off (the default) is
     * the classic in-process path, byte-for-byte unchanged. Fork runs
     * each seed in a forked worker subprocess: a segfaulting seed
     * becomes a Crashed outcome with a harvested crash record instead
     * of taking the campaign down. Per-seed results are identical to
     * the classic path (the executor is deterministic per seed), so
     * sandbox-on reproduces study-table numbers exactly.
     * Incompatible with onExecution (the trace lives and dies in the
     * child).
     */
    support::SandboxOptions sandbox;

    /** Durable campaign journal: completed seeds are appended (and
     * fsync'd) as SeedRecords under campaignId. Null = no journal. */
    CampaignJournal *journal = nullptr;

    /** Stable campaign identity for journal/resume (campaignKey). */
    std::uint64_t campaignId = 0;

    /**
     * Resume data recovered from a previous run's journal: seeds with
     * a record under campaignId are restored (counted with their
     * journaled statistics, not re-executed, not re-journaled, and
     * not delivered to onExecution). Null = run everything.
     */
    const RecoveredCampaigns *resume = nullptr;
};

/**
 * Run the program `options.runs` times with seeds firstSeed,
 * firstSeed+1, ... under the given policy.
 */
StressResult stressProgram(const sim::ProgramFactory &factory,
                           sim::SchedulePolicy &policy,
                           const StressOptions &options = {},
                           const ManifestPredicate &manifest =
                               defaultManifest);

} // namespace lfm::explore

#endif // LFM_EXPLORE_RUNNER_HH
