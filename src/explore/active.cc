#include "explore/active.hh"

#include <set>
#include <utility>

#include "explore/order_enforce.hh"
#include "explore/runner.hh"
#include "sim/policy.hh"

namespace lfm::explore
{

ActiveResult
activeTest(const sim::ProgramFactory &factory,
           const ActiveOptions &options)
{
    ActiveResult result;

    // 1. Observation run under the scheduler least likely to expose
    //    anything: it approximates the "tests pass in-house" run the
    //    study describes.
    sim::RoundRobinPolicy benign;
    auto observation = sim::runProgram(factory, benign);
    ++result.totalRuns;
    result.observationManifested = defaultManifest(observation);

    // 2. Candidate flips, deduped by label pair:
    //    - conflicting data-access pairs (Free counts as a write:
    //      flipping a free before a use is how teardown UAFs fire);
    //    - order-sensitive sync pairs on the same object
    //      (signal/wait, post/wait): flipping them exercises the
    //      missed-notification window.
    const auto &events = observation.trace.events();
    auto accessLike = [](const trace::Event &e) {
        return e.isAccess() || e.kind == trace::EventKind::Free;
    };
    auto writeLike = [](const trace::Event &e) {
        return e.isWrite() || e.kind == trace::EventKind::Free;
    };
    auto syncPair = [](const trace::Event &a, const trace::Event &b) {
        using trace::EventKind;
        auto isWaitish = [](EventKind k) {
            return k == EventKind::WaitBegin ||
                   k == EventKind::SemWait;
        };
        auto isWakeish = [](EventKind k) {
            return k == EventKind::SignalOne ||
                   k == EventKind::SignalAll ||
                   k == EventKind::SemPost;
        };
        return (isWaitish(a.kind) && isWakeish(b.kind)) ||
               (isWakeish(a.kind) && isWaitish(b.kind));
    };
    auto conflicting = [&](const trace::Event &a,
                           const trace::Event &b) {
        if (accessLike(a) && accessLike(b))
            return writeLike(a) || writeLike(b);
        return syncPair(a, b);
    };

    std::set<std::pair<std::string, std::string>> seen;
    std::vector<FlipAttempt> candidates;
    for (std::size_t i = 0;
         i < events.size() && candidates.size() < options.maxCandidates;
         ++i) {
        const auto &a = events[i];
        if (a.label.empty())
            continue;
        for (std::size_t j = i + 1; j < events.size(); ++j) {
            const auto &b = events[j];
            if (b.label.empty())
                continue;
            if (b.obj != a.obj || b.thread == a.thread)
                continue;
            if (!conflicting(a, b))
                continue;
            if (a.label == b.label)
                continue;
            if (!seen.insert({b.label, a.label}).second)
                continue;
            FlipAttempt attempt;
            attempt.flip = {b.label, a.label}; // invert observed order
            attempt.variable = observation.trace.objectName(a.obj);
            candidates.push_back(std::move(attempt));
            if (candidates.size() >= options.maxCandidates)
                break;
        }
    }
    result.candidates = candidates.size();

    // 3. Actively test each flip.
    for (auto &attempt : candidates) {
        for (std::size_t run = 0; run < options.runsPerCandidate;
             ++run) {
            sim::RandomPolicy inner;
            OrderEnforcingPolicy policy({attempt.flip}, inner);
            sim::ExecOptions opt;
            opt.seed = run + 1;
            auto exec = sim::runProgram(factory, policy, opt);
            ++attempt.runs;
            ++result.totalRuns;
            if (defaultManifest(exec))
                ++attempt.manifestations;
        }
        result.attempts.push_back(attempt);
        if (options.stopAtFirst && attempt.exposedBug())
            break;
    }
    return result;
}

} // namespace lfm::explore
