/**
 * @file
 * Order-enforcing scheduling: drive an execution so that a given
 * partial order among labeled operations holds.
 *
 * This makes the study's Finding 5 testable: a kernel's manifestation
 * certificate (at most 4 labeled operations for 92% of bugs) plus
 * this policy must yield a 100% manifestation rate. It is also the
 * mechanism a study-guided testing tool would use: instead of
 * stressing all schedules, enforce candidate orders among few
 * accesses.
 */

#ifndef LFM_EXPLORE_ORDER_ENFORCE_HH
#define LFM_EXPLORE_ORDER_ENFORCE_HH

#include <set>
#include <string>
#include <vector>

#include "bugs/kernel.hh"
#include "sim/policy.hh"

namespace lfm::explore
{

/**
 * Wraps an inner policy; refuses to schedule an operation labeled L
 * while some constraint "X before L" has X still unexecuted.
 */
class OrderEnforcingPolicy : public sim::SchedulePolicy
{
  public:
    OrderEnforcingPolicy(std::vector<bugs::OrderConstraint> constraints,
                         sim::SchedulePolicy &inner);

    void beginExecution(std::uint64_t seed) override;
    std::size_t pick(const sim::SchedView &view) override;
    const char *name() const override { return "order-enforce"; }

    /** True when some pick had only blocked alternatives, i.e. the
     * constraint set could not be enforced on that path. */
    bool infeasible() const { return infeasible_; }

  private:
    bool blocked(const std::string &label) const;

    std::vector<bugs::OrderConstraint> constraints_;
    sim::SchedulePolicy &inner_;
    std::set<std::string> executed_;
    bool infeasible_ = false;
};

/** Result of validating one kernel's manifestation certificate. */
struct CertificateCheck
{
    std::string kernelId;
    std::size_t runs = 0;
    std::size_t manifested = 0;
    bool everInfeasible = false;

    /** The certificate holds: every enforceable run manifested. */
    bool
    holds() const
    {
        return runs > 0 && manifested == runs && !everInfeasible;
    }
};

/**
 * Run the kernel's Buggy variant `runs` times with its manifestation
 * constraints enforced over random scheduling; every run must
 * manifest for the certificate to hold. Kernels with an empty
 * certificate (the study's >4-access bugs) are checked for
 * unconditional or stress manifestation instead and report
 * runs == manifested when that succeeded.
 */
CertificateCheck checkCertificate(const bugs::BugKernel &kernel,
                                  std::size_t runs = 50);

} // namespace lfm::explore

#endif // LFM_EXPLORE_ORDER_ENFORCE_HH
