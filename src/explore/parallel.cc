#include "explore/parallel.hh"

#include "explore/merge.hh"
#include "explore/sandboxed.hh"

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "support/executor.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/spans.hh"

namespace lfm::explore
{

namespace
{

using support::resolveWorkers;
using support::RunOutcome;

/** Merge an outcome into an atomic worse-of accumulator. */
void
noteOutcome(std::atomic<std::uint8_t> &slot, RunOutcome outcome)
{
    std::uint8_t cur = slot.load(std::memory_order_relaxed);
    const auto want = static_cast<std::uint8_t>(outcome);
    while (cur < want && !slot.compare_exchange_weak(
                             cur, want, std::memory_order_acq_rel))
        ;
}

/** Lexicographic "a < b" over index/thread paths. */
template <typename T>
bool
lexLess(const std::vector<T> &a, const std::vector<T> &b)
{
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
}

// ------------------------------------------------------------------
// Frontier-split DFS
// ------------------------------------------------------------------

/**
 * Shared state of one parallel DFS campaign. Each task is one
 * execution identified by its schedule prefix; completed executions
 * enqueue every untried alternative of their path as new tasks.
 * Every (node, alternative) pair is enqueued by exactly one task —
 * the one that first ran through the node — so each schedule runs
 * exactly once and counts are order-independent.
 */
struct DfsEngine
{
    const sim::ProgramFactory &factory;
    const DfsOptions &opt;
    const ManifestPredicate &manifest;
    std::unique_ptr<support::Executor> exec;

    std::mutex m;
    std::size_t started = 0;
    std::size_t executions = 0;
    std::size_t manifestations = 0;
    std::size_t truncated = 0;
    bool budgetHit = false;
    bool stopped = false;
    RunOutcome cut = RunOutcome::Completed;
    std::optional<std::vector<std::size_t>> best;

    DfsEngine(const sim::ProgramFactory &f, const DfsOptions &o,
              const ManifestPredicate &mp, unsigned workers)
        : factory(f), opt(o), manifest(mp),
          exec(support::makeExecutorFor(workers))
    {
    }

    /** Failsafe gate; caller holds m. True = stop exploring. */
    bool
    cutNow()
    {
        if (cut != RunOutcome::Completed)
            return true;
        if (opt.cancel != nullptr && opt.cancel->cancelled()) {
            cut = RunOutcome::Cancelled;
            return true;
        }
        if (opt.deadline.armed() && opt.deadline.expired()) {
            cut = RunOutcome::DeadlineExpired;
            return true;
        }
        return false;
    }

    void enqueue(unsigned worker, std::vector<std::size_t> prefix)
    {
        exec->execute(worker, [this, prefix = std::move(prefix)](
                                  unsigned w) { runOne(w, prefix); });
    }

    void runOne(unsigned worker, const std::vector<std::size_t> &prefix)
    {
        support::spans::Scope span("dfs.exec", "explore");
        {
            std::lock_guard<std::mutex> guard(m);
            if (cutNow())
                return;
            // After stopAtFirst fires, only subtrees that can still
            // contain a lexicographically smaller manifesting path
            // keep running; this refines `best` toward the canonical
            // (lex-min) answer and, with one worker, skips everything
            // (pending prefixes are all lex-greater in DFS order).
            if (stopped && (!best || !lexLess(prefix, *best)))
                return;
            if (started >= opt.maxExecutions) {
                budgetHit = true;
                return;
            }
            ++started;
        }

        sim::FixedSchedulePolicy policy(prefix);
        sim::ExecOptions exec;
        exec.maxDecisions = opt.maxDecisions;
        exec.spuriousWakeups = opt.spuriousWakeups;
        exec.collectTrace = !opt.countOnly;
        exec.cancel = opt.cancel;
        exec.deadline = opt.deadline;
        auto execution = sim::runProgram(factory, policy, exec);
        if (execution.outcome == RunOutcome::Cancelled ||
            execution.outcome == RunOutcome::DeadlineExpired) {
            // Aborted mid-execution: record the cut, count nothing.
            std::lock_guard<std::mutex> guard(m);
            cut = support::worseOutcome(cut, execution.outcome);
            return;
        }

        const auto &decisions = execution.decisions;
        std::vector<std::size_t> path;
        path.reserve(decisions.size());
        for (const auto &d : decisions)
            path.push_back(d.chosen);

        bool pruneChildren;
        {
            std::lock_guard<std::mutex> guard(m);
            ++executions;
            if (execution.stepLimitHit)
                ++truncated;
            if (manifest(execution)) {
                ++manifestations;
                if (!best || lexLess(path, *best))
                    best = path;
                if (opt.stopAtFirst)
                    stopped = true;
            }
            pruneChildren = stopped;
        }

        // Push alternatives (level ascending, alternative descending)
        // so a LIFO pop explores deepest-level-smallest-alternative
        // first: exactly the sequential backtracking order. Levels
        // below the task's own prefix belong to ancestor tasks.
        for (std::size_t i = prefix.size(); i < decisions.size(); ++i) {
            const auto &d = decisions[i];
            for (std::size_t j = d.choices.size(); j-- > d.chosen + 1;) {
                std::vector<std::size_t> child(path.begin(),
                                               path.begin() +
                                                   static_cast<
                                                       std::ptrdiff_t>(
                                                       i));
                child.push_back(j);
                if (pruneChildren) {
                    std::lock_guard<std::mutex> guard(m);
                    if (!best || !lexLess(child, *best))
                        continue;
                }
                enqueue(worker, std::move(child));
            }
        }
    }

    DfsResult finish()
    {
        DfsResult result;
        result.executions = executions;
        result.manifestations = manifestations;
        result.exhausted =
            !budgetHit && !stopped && cut == RunOutcome::Completed;
        result.firstManifestPath = best;
        result.outcome = cut != RunOutcome::Completed
                             ? cut
                             : (budgetHit ? RunOutcome::Truncated
                                          : RunOutcome::Completed);
        result.truncated = truncated;
        return result;
    }
};

// ------------------------------------------------------------------
// Parallel DPOR
// ------------------------------------------------------------------

/**
 * Shared state of one parallel DPOR campaign.
 *
 * The sequential algorithm's explicit stack becomes a trie keyed by
 * thread-plan prefixes; backtrack/done sets live in the trie nodes.
 * Obligations derived from a completed run are a pure function of
 * that run's decisions, and a claim (inserting into a node's done
 * set) hands each plan to exactly one task, so the explored set is
 * the least fixpoint of the obligation relation — independent of
 * execution order and hence of the worker count.
 *
 * One true race remains: a claim can be registered concurrently with
 * the run whose fallback would cover the same plan; the loser would
 * re-execute an already-seen path. The executedPaths set drops such
 * duplicates without counting them, which restores the sequential
 * counts.
 */
struct DporEngine
{
    struct NodeSets
    {
        std::set<sim::ThreadId> backtrack;
        std::set<sim::ThreadId> done;
    };

    const sim::ProgramFactory &factory;
    const DporOptions &opt;
    const ManifestPredicate &manifest;
    std::unique_ptr<support::Executor> exec;

    std::mutex m;
    std::map<std::vector<sim::ThreadId>, NodeSets> trie;
    std::set<std::vector<sim::ThreadId>> executedPaths;
    std::size_t started = 0;
    std::size_t executions = 0;
    std::size_t manifestations = 0;
    std::size_t truncated = 0;
    bool budgetHit = false;
    bool stopped = false;
    RunOutcome cut = RunOutcome::Completed;
    std::optional<std::vector<sim::ThreadId>> best;

    DporEngine(const sim::ProgramFactory &f, const DporOptions &o,
               const ManifestPredicate &mp, unsigned workers)
        : factory(f), opt(o), manifest(mp),
          exec(support::makeExecutorFor(workers))
    {
    }

    /** Failsafe gate; caller holds m. True = stop exploring. */
    bool
    cutNow()
    {
        if (cut != RunOutcome::Completed)
            return true;
        if (opt.cancel != nullptr && opt.cancel->cancelled()) {
            cut = RunOutcome::Cancelled;
            return true;
        }
        if (opt.deadline.armed() && opt.deadline.expired()) {
            cut = RunOutcome::DeadlineExpired;
            return true;
        }
        return false;
    }

    void enqueue(unsigned worker, std::vector<sim::ThreadId> plan)
    {
        exec->execute(worker,
                      [this, plan = std::move(plan)](unsigned w) {
                          runOne(w, plan);
                      });
    }

    void runOne(unsigned worker, const std::vector<sim::ThreadId> &plan)
    {
        support::spans::Scope span("dpor.exec", "explore");
        {
            std::lock_guard<std::mutex> guard(m);
            if (cutNow())
                return;
            if (stopped)
                return;
            if (started >= opt.maxExecutions) {
                budgetHit = true;
                return;
            }
            ++started;
        }

        ThreadPlanPolicy policy(plan);
        sim::ExecOptions exec;
        exec.maxDecisions = opt.maxDecisions;
        exec.collectTrace = !opt.countOnly;
        exec.cancel = opt.cancel;
        exec.deadline = opt.deadline;
        auto execution = sim::runProgram(factory, policy, exec);
        if (execution.outcome == RunOutcome::Cancelled ||
            execution.outcome == RunOutcome::DeadlineExpired) {
            // Aborted mid-execution: record the cut, count nothing.
            std::lock_guard<std::mutex> guard(m);
            cut = support::worseOutcome(cut, execution.outcome);
            return;
        }

        const auto &decisions = execution.decisions;
        const std::size_t n = decisions.size();
        std::vector<sim::ThreadId> tids(n);
        std::vector<const sim::ChoiceRecord *> ops(n);
        for (std::size_t i = 0; i < n; ++i) {
            const auto &d = decisions[i];
            tids[i] = d.choices[d.chosen].tid;
            ops[i] = &d.choices[d.chosen];
        }

        // Backtrack obligations: for each step i, the latest earlier
        // dependent step j of another thread gets an obligation for
        // tids[i] (or everyone enabled there when tids[i] was not
        // enabled at j). Computed lock-free: it only reads this
        // run's own decision records.
        std::map<std::size_t, std::set<sim::ThreadId>> obligations;
        for (std::size_t i = 1; i < n; ++i) {
            for (std::size_t j = i; j-- > 0;) {
                if (tids[j] == tids[i])
                    continue;
                if (!dependentOps(*ops[j], *ops[i]))
                    continue;
                if (neverCoEnabled(*ops[j], *ops[i]))
                    continue; // forced order, not a reversible race
                bool enabledAtJ = false;
                for (const auto &c : decisions[j].choices) {
                    if (c.tid == tids[i] && !c.spuriousWake) {
                        enabledAtJ = true;
                        break;
                    }
                }
                if (enabledAtJ) {
                    obligations[j].insert(tids[i]);
                } else {
                    for (const auto &c : decisions[j].choices) {
                        if (!c.spuriousWake)
                            obligations[j].insert(c.tid);
                    }
                }
                break; // only the latest dependent step
            }
        }

        std::vector<std::vector<sim::ThreadId>> fresh;
        {
            std::lock_guard<std::mutex> guard(m);
            if (!executedPaths.insert(tids).second) {
                // Duplicate of a path another task already ran
                // (claim raced with that run's registration); drop
                // it uncounted so totals match the sequential run.
                --started;
                return;
            }
            ++executions;
            if (execution.stepLimitHit)
                ++truncated;
            if (manifest(execution)) {
                ++manifestations;
                if (!best || lexLess(tids, *best))
                    best = tids;
                if (opt.stopAtFirst)
                    stopped = true;
            }

            // Register the executed path: every level's chosen
            // thread joins its node's backtrack and done sets.
            std::vector<sim::ThreadId> prefix;
            prefix.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
                NodeSets &node = trie[prefix];
                node.backtrack.insert(tids[i]);
                node.done.insert(tids[i]);
                prefix.push_back(tids[i]);
            }

            if (!stopped) {
                // Claim-on-enqueue: an obligation spawns a task only
                // if its thread is new to the node's done set, so
                // each plan is claimed exactly once globally.
                prefix.clear();
                auto ob = obligations.begin();
                for (std::size_t i = 0;
                     i < n && ob != obligations.end(); ++i) {
                    if (ob->first == i) {
                        NodeSets &node = trie[prefix];
                        // Reverse tid order: combined with ascending
                        // levels, LIFO pops deepest-smallest first.
                        for (auto it = ob->second.rbegin();
                             it != ob->second.rend(); ++it) {
                            node.backtrack.insert(*it);
                            if (node.done.insert(*it).second) {
                                std::vector<sim::ThreadId> next =
                                    prefix;
                                next.push_back(*it);
                                fresh.push_back(std::move(next));
                            }
                        }
                        ++ob;
                    }
                    prefix.push_back(tids[i]);
                }
            }
        }
        for (auto &next : fresh)
            enqueue(worker, std::move(next));
    }

    DporResult finish()
    {
        DporResult result;
        result.executions = executions;
        result.manifestations = manifestations;
        result.exhausted =
            !budgetHit && !stopped && cut == RunOutcome::Completed;
        result.firstManifestPlan = best;
        result.outcome = cut != RunOutcome::Completed
                             ? cut
                             : (budgetHit ? RunOutcome::Truncated
                                          : RunOutcome::Completed);
        result.truncated = truncated;
        return result;
    }
};

} // namespace

PolicyFactory
borrowPolicy(sim::SchedulePolicy &policy)
{
    sim::SchedulePolicy *raw = &policy;
    return [raw]() -> std::shared_ptr<sim::SchedulePolicy> {
        // Aliasing constructor: non-owning handle to the caller's
        // policy. Only valid for single-worker campaigns.
        return std::shared_ptr<sim::SchedulePolicy>(
            std::shared_ptr<sim::SchedulePolicy>{}, raw);
    };
}

ParallelRunner::ParallelRunner(unsigned workers)
    : workers_(resolveWorkers(workers))
{
}

StressResult
ParallelRunner::stress(const sim::ProgramFactory &factory,
                       const PolicyFactory &makePolicy,
                       const StressOptions &options,
                       const ManifestPredicate &manifest) const
{
    if (options.sandbox.enabled())
        return sandboxedStress(workers_, factory, makePolicy, options,
                               manifest);

    StressResult result;
    const std::size_t runs = options.runs;
    if (runs == 0)
        return result;

    namespace metrics = support::metrics;
    support::spans::Scope campaignSpan("explore.stress", "explore");
    // Handles resolved once per campaign; per-run recording is a
    // relaxed add on a per-thread shard (or nothing when disabled).
    metrics::Counter *runsCounter =
        metrics::enabled() ? &metrics::counter("explore.stress.runs")
                           : nullptr;
    metrics::Counter *manifestCounter =
        metrics::enabled()
            ? &metrics::counter("explore.stress.manifestations")
            : nullptr;
    metrics::Timer *execTimer =
        metrics::enabled() ? &metrics::timer("explore.stress.exec")
                           : nullptr;

    std::vector<detail::SeedRec> records(runs);

    // Resume: seeds already journaled by a previous (killed) run of
    // this campaign are restored, not re-executed. Journaled crashes
    // stay crashes — a deterministic executor would just die again
    // (and here, outside the sandbox, take the process with it).
    const std::uint64_t resumedManifest =
        detail::restoreResumed(options, records, result);

    // Blocks of consecutive seeds are handed out atomically; with
    // stopAtFirst, stopIndex is the earliest manifesting seed index
    // found so far and later seeds are abandoned (every seed below
    // it still completes, which the merge below relies on).
    const std::size_t block = std::max<std::size_t>(
        1, std::min<std::size_t>(64, runs / (workers_ * 4) + 1));
    std::atomic<std::size_t> nextBlock{0};
    std::atomic<std::uint64_t> stopIndex{~std::uint64_t{0}};
    if (options.stopAtFirst)
        stopIndex.store(resumedManifest, std::memory_order_relaxed);

    // Failsafe state: the campaign-level cut. bounded is false on the
    // default options, collapsing every per-run check to one branch.
    const support::Deadline effDeadline = support::Deadline::earlier(
        options.deadline, options.budget.deadline);
    const bool bounded = options.cancel != nullptr ||
                         effDeadline.armed() ||
                         !options.budget.unlimited();
    std::atomic<bool> stopAll{false};
    std::atomic<std::uint8_t> outcomeSlot{
        static_cast<std::uint8_t>(RunOutcome::Completed)};
    std::atomic<std::uint64_t> stepsUsed{0};
    std::atomic<std::uint64_t> bytesUsed{0};

    auto worker = [&]() {
        auto policy = makePolicy();
        LFM_ASSERT(policy != nullptr, "policy factory returned null");
        for (;;) {
            const std::size_t lo =
                nextBlock.fetch_add(1, std::memory_order_relaxed) *
                block;
            if (lo >= runs)
                return;
            if (options.stopAtFirst &&
                lo > stopIndex.load(std::memory_order_acquire))
                return;
            const std::size_t hi = std::min(runs, lo + block);
            std::optional<support::spans::Scope> blockSpan;
            if (support::spans::enabled()) {
                blockSpan.emplace("stress.block " +
                                      std::to_string(lo) + ".." +
                                      std::to_string(hi),
                                  "explore");
            }
            for (std::size_t i = lo; i < hi; ++i) {
                if (records[i].resumed)
                    continue;  // restored from the journal
                if (options.stopAtFirst &&
                    i > stopIndex.load(std::memory_order_acquire))
                    break;
                if (bounded) {
                    // Campaign-level cut: first worker to notice
                    // records the outcome; everyone else drains out
                    // and the merge harvests what completed.
                    if (stopAll.load(std::memory_order_acquire))
                        return;
                    if (options.cancel != nullptr &&
                        options.cancel->cancelled()) {
                        noteOutcome(outcomeSlot,
                                    RunOutcome::Cancelled);
                        stopAll.store(true,
                                      std::memory_order_release);
                        return;
                    }
                    if (effDeadline.expired()) {
                        noteOutcome(outcomeSlot,
                                    RunOutcome::DeadlineExpired);
                        stopAll.store(true,
                                      std::memory_order_release);
                        return;
                    }
                    const RunOutcome cut = options.budget.check(
                        stepsUsed.load(std::memory_order_relaxed),
                        bytesUsed.load(std::memory_order_relaxed));
                    if (cut != RunOutcome::Completed) {
                        noteOutcome(outcomeSlot, cut);
                        stopAll.store(true,
                                      std::memory_order_release);
                        return;
                    }
                }
                sim::ExecOptions exec = options.exec;
                exec.seed = options.firstSeed + i;
                if (options.countOnly) {
                    exec.collectTrace = false;
                    exec.recordDecisions = false;
                }
                if (bounded) {
                    if (exec.cancel == nullptr)
                        exec.cancel = options.cancel;
                    exec.deadline = support::Deadline::earlier(
                        exec.deadline, effDeadline);
                }
                auto execution = [&] {
                    metrics::Timer::Scope timing(execTimer);
                    return sim::runProgram(factory, *policy, exec);
                }();
                if (bounded) {
                    stepsUsed.fetch_add(execution.steps(),
                                        std::memory_order_relaxed);
                    bytesUsed.fetch_add(
                        execution.trace.size() *
                            sizeof(trace::Event),
                        std::memory_order_relaxed);
                    if (execution.outcome ==
                            RunOutcome::Cancelled ||
                        execution.outcome ==
                            RunOutcome::DeadlineExpired) {
                        // Aborted mid-run: nothing harvestable from
                        // this seed, and the campaign is over.
                        noteOutcome(outcomeSlot, execution.outcome);
                        stopAll.store(true,
                                      std::memory_order_release);
                        return;
                    }
                }
                records[i].steps = execution.steps();
                records[i].manifested = manifest(execution);
                records[i].truncated = execution.stepLimitHit;
                records[i].ran = true;
                if (options.journal != nullptr) {
                    SeedRecord rec;
                    rec.campaignId = options.campaignId;
                    rec.seedIndex = i;
                    rec.steps = records[i].steps;
                    if (records[i].manifested)
                        rec.flags |= SeedRecord::kManifested;
                    if (records[i].truncated)
                        rec.flags |= SeedRecord::kTruncated;
                    (void)options.journal->append(rec);
                }
                if (runsCounter)
                    runsCounter->add();
                if (manifestCounter && records[i].manifested)
                    manifestCounter->add();
                if (options.onExecution)
                    options.onExecution(i, execution);
                if (records[i].manifested && options.stopAtFirst) {
                    std::uint64_t cur =
                        stopIndex.load(std::memory_order_relaxed);
                    while (i < cur &&
                           !stopIndex.compare_exchange_weak(
                               cur, i, std::memory_order_acq_rel))
                        ;
                }
            }
        }
    };

    // One long-lived task per worker slot, each draining blocks until
    // the seed space is exhausted. The executor routes the 1-worker
    // case through the inline backend — the sequential path IS the
    // parallel path with an inline executor, not a separate loop.
    auto exec = support::makeExecutorFor(workers_);
    exec->bulkExecute(exec->concurrency(),
                      [&](std::size_t, unsigned) { worker(); });
    exec->run();

    // Merge in seed order, replicating the sequential loop: the
    // result is bit-identical for every worker count. Seeds a
    // failsafe cut abandoned never ran and are skipped — partial
    // harvest, not zeroes.
    result.outcome = static_cast<RunOutcome>(
        outcomeSlot.load(std::memory_order_acquire));
    detail::mergeSeedOrder(records, options, result);
    return result;
}

DfsResult
ParallelRunner::dfs(const sim::ProgramFactory &factory,
                    const DfsOptions &options,
                    const ManifestPredicate &manifest) const
{
    if (options.sandbox.enabled())
        return sandboxedDfs(workers_, factory, options, manifest);

    support::spans::Scope span("explore.dfs", "explore");
    DfsEngine engine(factory, options, manifest, workers_);
    engine.enqueue(0, {});
    engine.exec->run();
    auto result = engine.finish();
    if (support::metrics::enabled()) {
        support::metrics::counter("explore.dfs.executions")
            .add(result.executions);
        support::metrics::counter("explore.dfs.manifestations")
            .add(result.manifestations);
    }
    return result;
}

DporResult
ParallelRunner::dpor(const sim::ProgramFactory &factory,
                     const DporOptions &options,
                     const ManifestPredicate &manifest) const
{
    if (options.sandbox.enabled())
        return sandboxedDpor(workers_, factory, options, manifest);

    support::spans::Scope span("explore.dpor", "explore");
    DporEngine engine(factory, options, manifest, workers_);
    engine.enqueue(0, {});
    engine.exec->run();
    auto result = engine.finish();
    if (support::metrics::enabled()) {
        support::metrics::counter("explore.dpor.executions")
            .add(result.executions);
        support::metrics::counter("explore.dpor.manifestations")
            .add(result.manifestations);
    }
    return result;
}

} // namespace lfm::explore
