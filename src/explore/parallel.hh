/**
 * @file
 * Work-stealing parallel exploration engine.
 *
 * Every exploration strategy in this repo reduces to "run many
 * independent executions of one program and merge the verdicts":
 * stress/PCT campaigns shard naturally by seed, and the systematic
 * searches (DFS, preemption-bounded stress, DPOR) shard by
 * schedule-prefix frontier splitting — each completed execution
 * yields the set of untried branch points, which become new work
 * items any worker can claim.
 *
 * The engine is deterministic by construction:
 *  - stress: per-seed records are written to disjoint slots and
 *    merged in seed order, replicating the sequential loop exactly;
 *  - DFS: the first-failure schedule is the lexicographically
 *    smallest manifesting decision path (the canonical tie-break),
 *    which is precisely what sequential DFS finds first because it
 *    visits paths in lexicographic order;
 *  - DPOR: the explored set is the least fixpoint of the backtrack
 *    obligations, which is order-independent, so execution and
 *    manifestation counts match the sequential algorithm whenever
 *    the space is exhausted.
 *
 * With workers=1 the pool degenerates to an inline LIFO loop on the
 * calling thread and reproduces the sequential algorithms step for
 * step; the sequential entry points (stressProgram, exploreDfs,
 * exploreDpor) are thin wrappers over this engine.
 */

#ifndef LFM_EXPLORE_PARALLEL_HH
#define LFM_EXPLORE_PARALLEL_HH

#include <functional>
#include <memory>
#include <utility>

#include "explore/dfs.hh"
#include "explore/dpor.hh"
#include "explore/runner.hh"

namespace lfm::explore
{

/**
 * Builds one schedule-policy instance per worker. Policies carry
 * per-execution state (RNGs, priority tables), so workers cannot
 * share one instance; any policy whose behavior is a pure function
 * of (seed, execution history) — all policies in sim/policy.hh —
 * shards correctly.
 */
using PolicyFactory =
    std::function<std::shared_ptr<sim::SchedulePolicy>()>;

/**
 * Adapt an existing policy instance for single-worker use (the
 * sequential wrappers). The returned factory hands out non-owning
 * references; using it with more than one worker is a bug.
 */
PolicyFactory borrowPolicy(sim::SchedulePolicy &policy);

/** Factory for a default-constructible or value-captured policy. */
template <typename Policy, typename... Args>
PolicyFactory
makePolicy(Args... args)
{
    return [args...]() -> std::shared_ptr<sim::SchedulePolicy> {
        return std::make_shared<Policy>(args...);
    };
}

/**
 * The parallel exploration engine; see the file comment.
 *
 * One instance is reusable across campaigns; it owns no threads
 * between calls (workers are spawned per campaign and joined before
 * the call returns).
 */
class ParallelRunner
{
  public:
    /** @param workers worker count; 0 = hardware concurrency. */
    explicit ParallelRunner(unsigned workers = 0);

    unsigned workers() const { return workers_; }

    /**
     * Seed-sharded stress campaign; bit-identical to the sequential
     * stressProgram for any worker count (including stopAtFirst,
     * which cuts at the earliest manifesting seed).
     */
    StressResult stress(const sim::ProgramFactory &factory,
                        const PolicyFactory &makePolicy,
                        const StressOptions &options = {},
                        const ManifestPredicate &manifest =
                            defaultManifest) const;

    /**
     * Frontier-split DFS. Counts are bit-identical to sequential
     * exploreDfs for every worker count when the tree is exhausted
     * (and for workers=1 always); firstManifestPath is canonical:
     * the lexicographically smallest manifesting path.
     */
    DfsResult dfs(const sim::ProgramFactory &factory,
                  const DfsOptions &options = {},
                  const ManifestPredicate &manifest =
                      defaultManifest) const;

    /**
     * Parallel DPOR over a shared prefix trie with claim-on-enqueue
     * deduplication. Counts match sequential exploreDpor whenever
     * the space is exhausted.
     */
    DporResult dpor(const sim::ProgramFactory &factory,
                    const DporOptions &options = {},
                    const ManifestPredicate &manifest =
                        defaultManifest) const;

  private:
    unsigned workers_;
};

} // namespace lfm::explore

#endif // LFM_EXPLORE_PARALLEL_HH
