/**
 * @file
 * Active interleaving testing guided by the study's findings.
 *
 * The study's testing implication: instead of rerunning a stress
 * test and hoping, *observe* one (usually benign) execution, extract
 * pairs of conflicting accesses, and actively drive schedules that
 * flip their order — because 92% of bugs manifest once a handful of
 * accesses are ordered, flipping observed orders exposes them in a
 * bounded number of runs. This is the idea later built out by
 * CTrigger-style tools, reconstructed here on top of the
 * order-enforcing scheduler.
 */

#ifndef LFM_EXPLORE_ACTIVE_HH
#define LFM_EXPLORE_ACTIVE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bugs/kernel.hh"
#include "sim/program.hh"

namespace lfm::explore
{

/** One candidate order flip and what testing it produced. */
struct FlipAttempt
{
    /** The constraint that inverts the observed order. */
    bugs::OrderConstraint flip;

    /** Variable the conflicting pair touched. */
    std::string variable;

    /** Enforced runs executed for this candidate. */
    std::size_t runs = 0;

    /** Runs that manifested a failure. */
    std::size_t manifestations = 0;

    bool exposedBug() const { return manifestations > 0; }
};

/** Outcome of an active-testing campaign. */
struct ActiveResult
{
    /** Labeled conflicting pairs found in the observation run. */
    std::size_t candidates = 0;

    std::vector<FlipAttempt> attempts;

    /** Total executions spent (observation + enforced runs). */
    std::size_t totalRuns = 0;

    /** The bug fired already in the benign observation run. */
    bool observationManifested = false;

    /** Number of candidates whose flip exposed a bug. */
    std::size_t
    exposing() const
    {
        std::size_t n = 0;
        for (const auto &a : attempts)
            n += a.exposedBug() ? 1 : 0;
        return n;
    }

    /** The campaign found the bug one way or another. */
    bool
    foundBug() const
    {
        return observationManifested || exposing() > 0;
    }
};

/** Options for activeTest(). */
struct ActiveOptions
{
    /** Enforced executions per candidate flip. */
    std::size_t runsPerCandidate = 8;

    /** Upper bound on candidates tried. */
    std::size_t maxCandidates = 32;

    /** Stop the campaign at the first exposing flip. */
    bool stopAtFirst = false;
};

/**
 * Run one observation execution under a benign (round-robin)
 * scheduler, derive candidate flips from labeled conflicting access
 * pairs, and actively test each flip with the order-enforcing
 * scheduler.
 */
ActiveResult activeTest(const sim::ProgramFactory &factory,
                        const ActiveOptions &options = {});

} // namespace lfm::explore

#endif // LFM_EXPLORE_ACTIVE_HH
