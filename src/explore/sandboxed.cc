#include "explore/sandboxed.hh"

#include "explore/merge.hh"

#include <algorithm>
#include <cstring>
#include <memory>

#include "support/executor.hh"
#include "support/logging.hh"

namespace lfm::explore
{

namespace
{

using support::RunOutcome;

// ------------------------------------------------------------------
// Tiny byte (de)serializers for the child -> parent result payloads.
// Same-machine, same-build pipes: native endianness is fine.
// ------------------------------------------------------------------

struct Writer
{
    std::vector<std::uint8_t> buf;

    void
    u64(std::uint64_t v)
    {
        const std::size_t off = buf.size();
        buf.resize(off + sizeof(v));
        std::memcpy(buf.data() + off, &v, sizeof(v));
    }

    void u8(std::uint8_t v) { buf.push_back(v); }
};

struct Reader
{
    const std::vector<std::uint8_t> &buf;
    std::size_t off = 0;
    bool ok = true;

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        if (off + sizeof(v) > buf.size()) {
            ok = false;
            return 0;
        }
        std::memcpy(&v, buf.data() + off, sizeof(v));
        off += sizeof(v);
        return v;
    }

    std::uint8_t
    u8()
    {
        if (off >= buf.size()) {
            ok = false;
            return 0;
        }
        return buf[off++];
    }
};

/** Per-seed result wire for the stress path. */
struct StressWire
{
    std::uint64_t steps = 0;
    std::uint32_t flags = 0;  // SeedRecord flag bits
    std::uint32_t pad = 0;
};
static_assert(sizeof(StressWire) == 16);

} // namespace

StressResult
sandboxedStress(unsigned workers, const sim::ProgramFactory &factory,
                const PolicyFactory &makePolicy,
                const StressOptions &options,
                const ManifestPredicate &manifest)
{
    LFM_ASSERT(!options.onExecution,
               "onExecution cannot stream traces across the sandbox "
               "process boundary; run detection in a separate pass "
               "or drop the sandbox for this campaign");

    StressResult result;
    const std::size_t runs = options.runs;
    if (runs == 0)
        return result;

    std::vector<detail::SeedRec> records(runs);

    // Resume: restore journaled seeds (completed AND crashed — a
    // crash is deterministic, re-running it buys nothing). With
    // stopAtFirst, seeds past the earliest known manifesting index
    // are skipped at dispatch — same partial-harvest semantics as
    // the classic path.
    std::uint64_t stopIndex =
        detail::restoreResumed(options, records, result);

    std::vector<std::uint64_t> units;
    units.reserve(runs);
    for (std::size_t i = 0; i < runs; ++i)
        if (!records[i].resumed)
            units.push_back(i);

    const support::Deadline effDeadline = support::Deadline::earlier(
        options.deadline, options.budget.deadline);

    support::SandboxOptions sandbox = options.sandbox;
    if (sandbox.workers == 0)
        sandbox.workers = workers;

    // Runs inside the forked child. The factory/policy/manifest
    // closures are inherited through fork — nothing serializes on the
    // way in; only the 16-byte result comes back. The lazily created
    // policy persists across units of one child (exactly like one
    // classic worker thread reusing its policy across seeds — per-
    // seed determinism comes from beginExecution(seed)).
    std::shared_ptr<sim::SchedulePolicy> childPolicy;
    const support::SandboxSupervisor::ChildRun childRun =
        [&, childPolicy](std::uint64_t unit) mutable
        -> std::vector<std::uint8_t> {
        if (childPolicy == nullptr) {
            childPolicy = makePolicy();
            LFM_ASSERT(childPolicy != nullptr,
                       "policy factory returned null");
        }
        sim::ExecOptions exec = options.exec;
        exec.seed = options.firstSeed + unit;
        if (options.countOnly) {
            exec.collectTrace = false;
            exec.recordDecisions = false;
        }
        exec.deadline =
            support::Deadline::earlier(exec.deadline, effDeadline);
        exec.probe = &support::processProbe();
        auto execution = sim::runProgram(factory, *childPolicy, exec);
        StressWire wire;
        wire.steps = execution.steps();
        if (manifest(execution))
            wire.flags |= SeedRecord::kManifested;
        if (execution.stepLimitHit)
            wire.flags |= SeedRecord::kTruncated;
        std::vector<std::uint8_t> out(sizeof(wire));
        std::memcpy(out.data(), &wire, sizeof(wire));
        return out;
    };

    const auto journalSeed = [&](std::uint64_t index,
                                 std::uint64_t steps,
                                 std::uint32_t flags,
                                 std::int32_t signal) {
        if (options.journal == nullptr)
            return;
        SeedRecord rec;
        rec.campaignId = options.campaignId;
        rec.seedIndex = index;
        rec.steps = steps;
        rec.flags = flags;
        rec.signal = signal;
        (void)options.journal->append(rec);
    };

    const support::SandboxSupervisor::OnResult onResult =
        [&](std::uint64_t unit,
            const std::vector<std::uint8_t> &payload) {
            if (payload.size() < sizeof(StressWire) || unit >= runs)
                return;
            StressWire wire;
            std::memcpy(&wire, payload.data(), sizeof(wire));
            detail::SeedRec &r = records[unit];
            r.ran = true;
            r.steps = wire.steps;
            r.manifested = (wire.flags & SeedRecord::kManifested) != 0;
            r.truncated = (wire.flags & SeedRecord::kTruncated) != 0;
            if (r.manifested && options.stopAtFirst)
                stopIndex = std::min(stopIndex, unit);
            journalSeed(unit, wire.steps, wire.flags, 0);
        };

    const support::SandboxSupervisor::OnCrash onCrash =
        [&](const support::CrashInfo &crash) {
            if (crash.unit < runs)
                records[crash.unit].crashed = true;
            result.crashes.push_back(crash);
            journalSeed(crash.unit, crash.steps,
                        SeedRecord::kCrashed, crash.signal);
        };

    const support::SandboxSupervisor::SkipUnit skipUnit =
        [&](std::uint64_t unit) {
            return options.stopAtFirst && unit > stopIndex;
        };

    support::UnitCampaign campaign;
    campaign.units = std::move(units);
    campaign.run = childRun;
    campaign.onResult = onResult;
    campaign.onCrash = onCrash;
    campaign.skip = skipUnit;
    campaign.cancel = options.cancel;
    campaign.deadline = effDeadline;
    const auto unitExec = support::makeUnitExecutor(sandbox);
    const support::UnitExecutor::Stats stats =
        unitExec->runUnits(campaign);

    result.workerRestarts = stats.restarts;
    result.benchedWorkers = stats.benched;
    result.outcome = stats.outcome;

    // Merge in seed order — the same loop as the classic path, so a
    // sandbox-on campaign reports identical numbers.
    detail::mergeSeedOrder(records, options, result);
    return result;
}

// ------------------------------------------------------------------
// Whole-campaign containment for the systematic explorers
// ------------------------------------------------------------------

DfsResult
sandboxedDfs(unsigned workers, const sim::ProgramFactory &factory,
             const DfsOptions &options,
             const ManifestPredicate &manifest)
{
    DfsOptions inner = options;
    inner.sandbox = {};  // the child runs the classic path
    const auto iso = support::runIsolated(
        options.sandbox.limits, [&]() -> std::vector<std::uint8_t> {
            const DfsResult r =
                ParallelRunner(workers).dfs(factory, inner, manifest);
            Writer w;
            w.u64(r.executions);
            w.u64(r.manifestations);
            w.u64(r.truncated);
            w.u8(r.exhausted ? 1 : 0);
            w.u8(static_cast<std::uint8_t>(r.outcome));
            w.u8(r.firstManifestPath ? 1 : 0);
            if (r.firstManifestPath) {
                w.u64(r.firstManifestPath->size());
                for (const std::size_t step : *r.firstManifestPath)
                    w.u64(step);
            }
            return std::move(w.buf);
        });

    DfsResult result;
    if (!iso.ok) {
        result.crashed = true;
        result.crash = iso.crash;
        result.outcome = RunOutcome::Crashed;
        return result;
    }
    Reader rd{iso.payload};
    result.executions = rd.u64();
    result.manifestations = rd.u64();
    result.truncated = rd.u64();
    result.exhausted = rd.u8() != 0;
    result.outcome = static_cast<RunOutcome>(rd.u8());
    if (rd.u8() != 0) {
        std::vector<std::size_t> path(rd.u64());
        for (auto &step : path)
            step = rd.u64();
        if (rd.ok)
            result.firstManifestPath = std::move(path);
    }
    if (!rd.ok) {
        // Torn payload (should not happen with a clean exit); treat
        // as a crash rather than inventing numbers.
        result = DfsResult{};
        result.crashed = true;
        result.outcome = RunOutcome::Crashed;
    }
    return result;
}

DporResult
sandboxedDpor(unsigned workers, const sim::ProgramFactory &factory,
              const DporOptions &options,
              const ManifestPredicate &manifest)
{
    DporOptions inner = options;
    inner.sandbox = {};
    const auto iso = support::runIsolated(
        options.sandbox.limits, [&]() -> std::vector<std::uint8_t> {
            const DporResult r = ParallelRunner(workers).dpor(
                factory, inner, manifest);
            Writer w;
            w.u64(r.executions);
            w.u64(r.manifestations);
            w.u64(r.truncated);
            w.u8(r.exhausted ? 1 : 0);
            w.u8(static_cast<std::uint8_t>(r.outcome));
            w.u8(r.firstManifestPlan ? 1 : 0);
            if (r.firstManifestPlan) {
                w.u64(r.firstManifestPlan->size());
                for (const sim::ThreadId tid : *r.firstManifestPlan)
                    w.u64(static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(tid)));
            }
            return std::move(w.buf);
        });

    DporResult result;
    if (!iso.ok) {
        result.crashed = true;
        result.crash = iso.crash;
        result.outcome = RunOutcome::Crashed;
        return result;
    }
    Reader rd{iso.payload};
    result.executions = rd.u64();
    result.manifestations = rd.u64();
    result.truncated = rd.u64();
    result.exhausted = rd.u8() != 0;
    result.outcome = static_cast<RunOutcome>(rd.u8());
    if (rd.u8() != 0) {
        std::vector<sim::ThreadId> plan(rd.u64());
        for (auto &tid : plan)
            tid = static_cast<sim::ThreadId>(
                static_cast<std::int64_t>(rd.u64()));
        if (rd.ok)
            result.firstManifestPlan = std::move(plan);
    }
    if (!rd.ok) {
        result = DporResult{};
        result.crashed = true;
        result.outcome = RunOutcome::Crashed;
    }
    return result;
}

} // namespace lfm::explore
