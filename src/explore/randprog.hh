/**
 * @file
 * Random concurrent-program generation.
 *
 * Generates small synthetic programs (threads performing a random mix
 * of locked/unlocked reads and writes over a few shared variables)
 * from a seed. Used to fuzz the executor and to state detector
 * properties over arbitrary programs ("a fully locked program never
 * races", "every HB race is also a lockset report", ...), not just
 * over the curated kernels.
 */

#ifndef LFM_EXPLORE_RANDPROG_HH
#define LFM_EXPLORE_RANDPROG_HH

#include <cstdint>

#include "sim/program.hh"

namespace lfm::explore
{

/** Shape of the generated programs. */
struct RandProgConfig
{
    int threads = 3;
    int variables = 3;
    int mutexes = 2;
    int opsPerThread = 6;

    /** Probability that an access runs under a (random) mutex. */
    double lockedFraction = 0.5;

    /** Probability that an individual access is a write. */
    double writeFraction = 0.5;

    /**
     * Locking discipline: when true, every variable is statically
     * assigned one mutex and all *locked* accesses to it use that
     * mutex; when false, locked accesses pick a random mutex (which
     * produces lock-discipline violations on purpose).
     */
    bool consistentLocking = true;

    /** Force every access under a lock (race-free by construction
     * when consistentLocking is also set). */
    bool alwaysLock = false;
};

/**
 * Build the random program for (config, seed). Deterministic: the
 * same pair always generates the identical program.
 */
sim::Program makeRandomProgram(const RandProgConfig &config,
                               std::uint64_t seed);

/** A ProgramFactory for the given (config, seed). */
sim::ProgramFactory randomProgramFactory(const RandProgConfig &config,
                                         std::uint64_t seed);

} // namespace lfm::explore

#endif // LFM_EXPLORE_RANDPROG_HH
