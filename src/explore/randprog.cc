#include "explore/randprog.hh"

#include <memory>
#include <vector>

#include "sim/shared.hh"
#include "sim/sync.hh"
#include "support/random.hh"

namespace lfm::explore
{

namespace
{

/** One pre-drawn operation of a generated thread. */
struct GenOp
{
    int var = 0;
    int mutex = -1;  ///< -1 = unlocked access
    bool write = false;
};

/** Everything the generated threads share. */
struct GenState
{
    std::vector<std::unique_ptr<sim::SharedVar<int>>> vars;
    std::vector<std::unique_ptr<sim::SimMutex>> mutexes;
};

} // namespace

sim::Program
makeRandomProgram(const RandProgConfig &config, std::uint64_t seed)
{
    // Draw the whole program shape first so the construction below
    // is a pure function of (config, seed).
    support::Rng rng(seed ^ 0x5eedf00dULL);
    std::vector<std::vector<GenOp>> plan(
        static_cast<std::size_t>(config.threads));
    for (auto &threadOps : plan) {
        for (int i = 0; i < config.opsPerThread; ++i) {
            GenOp op;
            op.var = static_cast<int>(
                rng.below(static_cast<std::uint64_t>(
                    config.variables)));
            op.write = rng.chance(config.writeFraction);
            const bool locked =
                config.alwaysLock || rng.chance(config.lockedFraction);
            if (locked) {
                op.mutex =
                    config.consistentLocking
                        ? op.var % config.mutexes
                        : static_cast<int>(rng.below(
                              static_cast<std::uint64_t>(
                                  config.mutexes)));
            }
            threadOps.push_back(op);
        }
    }

    auto s = std::make_shared<GenState>();
    for (int v = 0; v < config.variables; ++v) {
        s->vars.push_back(std::make_unique<sim::SharedVar<int>>(
            "v" + std::to_string(v), 0));
    }
    for (int m = 0; m < config.mutexes; ++m) {
        s->mutexes.push_back(
            std::make_unique<sim::SimMutex>("m" + std::to_string(m)));
    }

    sim::Program p;
    for (std::size_t t = 0; t < plan.size(); ++t) {
        auto ops = plan[t];
        p.threads.push_back(
            {"gen" + std::to_string(t), [s, ops] {
                 for (const GenOp &op : ops) {
                     auto &var =
                         *s->vars[static_cast<std::size_t>(op.var)];
                     if (op.mutex >= 0) {
                         auto &mu = *s->mutexes[static_cast<
                             std::size_t>(op.mutex)];
                         sim::SimLock guard(mu);
                         if (op.write)
                             var.set(var.peek() + 1);
                         else
                             (void)var.get();
                     } else {
                         if (op.write)
                             var.set(var.peek() + 1);
                         else
                             (void)var.get();
                     }
                 }
             }});
    }
    return p;
}

sim::ProgramFactory
randomProgramFactory(const RandProgConfig &config, std::uint64_t seed)
{
    return [config, seed] { return makeRandomProgram(config, seed); };
}

} // namespace lfm::explore
