/**
 * @file
 * Dynamic partial-order reduction (DPOR-lite).
 *
 * Plain DFS enumerates every interleaving — factorially many — even
 * though most differ only in the order of *independent* operations.
 * DPOR (Flanagan & Godefroid) executes one schedule, finds the pairs
 * of dependent operations from different threads, and only adds
 * backtracking points that can reverse such a pair. This
 * implementation keeps the classic backtrack-set algorithm but omits
 * sleep sets (it may revisit some equivalent schedules; it never
 * misses a reachable failure of a bounded program).
 *
 * The ablation bench (ablation_dpor) measures the reduction against
 * exhaustive DFS on the kernel suite.
 */

#ifndef LFM_EXPLORE_DPOR_HH
#define LFM_EXPLORE_DPOR_HH

#include <optional>
#include <vector>

#include "explore/runner.hh"
#include "sim/policy.hh"
#include "sim/program.hh"

namespace lfm::explore
{

/**
 * Replays a per-level *thread* plan (DPOR plans threads, not choice
 * indices); beyond the plan it deterministically picks the first
 * non-spurious alternative.
 */
class ThreadPlanPolicy : public sim::SchedulePolicy
{
  public:
    explicit ThreadPlanPolicy(std::vector<sim::ThreadId> plan);

    void beginExecution(std::uint64_t seed) override;
    std::size_t pick(const sim::SchedView &view) override;
    const char *name() const override { return "thread-plan"; }

    /** True when a planned thread was not available at its level. */
    bool diverged() const { return diverged_; }

  private:
    std::vector<sim::ThreadId> plan_;
    std::size_t pos_ = 0;
    bool diverged_ = false;
};

/** True when the two recorded operations are dependent (cannot be
 * reordered without possibly changing the result). */
bool dependentOps(const sim::ChoiceRecord &a,
                  const sim::ChoiceRecord &b);

/**
 * True when the pair can never be simultaneously enabled — e.g. a
 * lock release and a blocking acquisition of the same lock. Such
 * dependent pairs are not *races*: their order is forced, so DPOR
 * must skip past them to the enclosing acquisition race instead of
 * trying to reverse them.
 */
bool neverCoEnabled(const sim::ChoiceRecord &a,
                    const sim::ChoiceRecord &b);

/** Options for exploreDpor(). */
struct DporOptions
{
    std::size_t maxExecutions = 10000;
    std::size_t maxDecisions = 2000;
    bool stopAtFirst = false;

    /** Suppress trace collection (decisions are still recorded —
     * the search needs them); verdicts are unaffected. */
    bool countOnly = false;

    /** Campaign-level cancellation; null = never. */
    const support::CancellationToken *cancel = nullptr;

    /** Campaign-level wall-clock cutoff. */
    support::Deadline deadline;

    /** Crash containment for the whole search (see DfsOptions). */
    support::SandboxOptions sandbox;
};

/** Result of a DPOR exploration. */
struct DporResult
{
    std::size_t executions = 0;
    std::size_t manifestations = 0;
    bool exhausted = false;

    /** Thread plan of the first manifesting execution. */
    std::optional<std::vector<sim::ThreadId>> firstManifestPlan;

    /** Completed, or the cut (Truncated on the execution budget,
     * Cancelled / DeadlineExpired from the failsafe layer) that ended
     * the search with the partial counts above. */
    support::RunOutcome outcome = support::RunOutcome::Completed;

    /** Executions that hit the per-execution decision cap. */
    std::size_t truncated = 0;

    /** True when the sandboxed search child died on a fatal signal;
     * outcome is then Crashed and `crash` holds the harvest. */
    bool crashed = false;
    support::CrashInfo crash;
};

/** Systematically explore the program with partial-order reduction. */
DporResult exploreDpor(const sim::ProgramFactory &factory,
                       const DporOptions &options = {},
                       const ManifestPredicate &manifest =
                           defaultManifest);

} // namespace lfm::explore

#endif // LFM_EXPLORE_DPOR_HH
