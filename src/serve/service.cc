/**
 * @file
 * DetectionService implementation; see serve/service.hh for the
 * contract. Layout:
 *
 *   helpers         format sniffing, findings-document framing
 *   containment     one trace through the pipeline, crash-contained
 *   journal codec   campaign record encode/decode
 *   Impl            state, admission, endpoints, recovery
 *
 * Locking: Impl::m guards the campaign map, the tenant table, the
 * active-token list and the eviction queue; each Campaign has its
 * own mutex serializing submit/finish/read on that campaign, so a
 * long finish() (joining stream workers) never blocks requests for
 * other campaigns or the read-only endpoints. Lock order: a campaign
 * mutex may be held while taking Impl::m (TokenScope registration,
 * noteCompleted), never the reverse — every path that holds Impl::m
 * releases it before touching a campaign mutex.
 * cancelInFlight() holds Impl::m across the
 * requestCancel calls — tokens live on handler stack frames and are
 * unregistered (under m) before they are destroyed, so the lock is
 * what keeps a drain-time cancel from dereferencing a token whose
 * request just completed; a token's own mutex nests inside m and
 * token holders never take m, so there is no ordering cycle.
 */

#include "serve/service.hh"

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "detect/batch.hh"
#include "detect/context.hh"
#include "detect/finding.hh"
#include "report/run_report.hh"
#include "support/journal.hh"
#include "support/metrics.hh"
#include "trace/binary.hh"
#include "trace/replay.hh"
#include "trace/serialize.hh"

namespace lfm::serve
{

using detect::TraceReport;
using detect::TraceStatus;
using support::RunOutcome;

namespace
{

// ------------------------------------------------------------------
// Small helpers
// ------------------------------------------------------------------

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/** Campaign names become journal payloads and URL segments; keep
 * them to a safe charset instead of trusting the request line. */
bool
validCampaignName(const std::string &name)
{
    if (name.empty() || name.size() > 128)
        return false;
    for (char c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)) &&
            c != '.' && c != '_' && c != '-')
            return false;
    }
    return true;
}

std::uint64_t
parseU64Or(const std::string &s, std::uint64_t dflt)
{
    if (s.empty())
        return dflt;
    char *end = nullptr;
    const auto v = std::strtoull(s.c_str(), &end, 10);
    return (end != nullptr && *end == '\0') ? v : dflt;
}

/** Seconds to advertise in Retry-After after `rejections` back-to-
 * back rejections of one tenant: the seeded RetryPolicy delay,
 * rounded up to whole seconds and clamped to something a client
 * will actually honor. */
unsigned
retryAfterSeconds(const support::RetryPolicy &policy,
                  std::uint64_t rejections, std::uint64_t key)
{
    const unsigned maxIdx =
        policy.maxAttempts() > 0 ? policy.maxAttempts() - 1 : 0;
    const unsigned idx = static_cast<unsigned>(std::min<std::uint64_t>(
        rejections > 0 ? rejections - 1 : 0, maxIdx));
    const std::uint64_t ns = policy.delayNs(idx, key);
    std::uint64_t s = (ns + 999'999'999ull) / 1'000'000'000ull;
    if (s < 1)
        s = 1;
    if (s > 3600)
        s = 3600;
    return static_cast<unsigned>(s);
}

// ------------------------------------------------------------------
// Findings-document framing
//
// The service streams per-trace entries as they are produced, but
// the complete body must be byte-identical to detect::reportsJson
// (plus the trailing newline every CLI writer emits). DocStream
// reproduces support::Json::dump's exact framing for the two-member
// top-level object so the concatenated chunks are that document.
// ------------------------------------------------------------------

support::Json
reportEntry(detect::TraceSource trace, const TraceReport &report)
{
    support::Json entry =
        detect::findingsJson(trace, report.findings, report.key);
    entry.set("status",
              report.status == TraceStatus::Analyzed
                  ? "analyzed"
                  : report.status == TraceStatus::Quarantined
                        ? "quarantined"
                        : report.status == TraceStatus::Skipped
                              ? "skipped"
                              : "crashed");
    if (!report.error.empty())
        entry.set("error", report.error);
    return entry;
}

class DocStream
{
  public:
    explicit DocStream(std::function<void(std::string_view)> sink)
        : sink_(std::move(sink))
    {
    }

    void
    begin()
    {
        sink_("{\n  \"tool\": \"lfm-detect\",\n  \"traces\": [");
    }

    void
    add(const support::Json &entry)
    {
        std::ostringstream os;
        os << (count_ ? ",\n    " : "\n    ");
        entry.dump(os, 4);
        ++count_;
        sink_(os.str());
    }

    void
    end()
    {
        sink_(count_ ? "\n  ]\n}\n" : "]\n}\n");
    }

  private:
    std::function<void(std::string_view)> sink_;
    std::size_t count_ = 0;
};

// ------------------------------------------------------------------
// Upload parsing: every accepted body becomes heap Traces plus one
// canonical LFMT image per trace (the journal / resume currency).
// ------------------------------------------------------------------

struct Upload
{
    bool ok = false;
    int status = 400;       ///< HTTP status when !ok
    std::string error;
    std::vector<trace::Trace> traces;
    bool imported = false;  ///< came through the raw-log importer
    trace::replay::ImportStats importStats;
};

Upload
parseUpload(const std::string &body, std::string format)
{
    Upload up;
    if (format == "auto") {
        if (body.rfind("LFMC", 0) == 0)
            format = "lfmc";
        else if (body.rfind("LFMT", 0) == 0)
            format = "lfmt";
        else if (body.rfind("# lfm-trace", 0) == 0)
            format = "text";
        else
            format = "log";
    }
    std::string error;
    if (format == "lfmc") {
        // CorpusReader wants 8-byte alignment; vector allocations are
        // max_align_t-aligned, request bodies (std::string) are not
        // guaranteed to be.
        std::vector<std::uint8_t> aligned(body.begin(), body.end());
        auto reader = trace::CorpusReader::fromBuffer(
            aligned.data(), aligned.size(), &error);
        if (!reader) {
            up.status = 422;
            up.error = "bad corpus: " + error;
            return up;
        }
        for (std::size_t i = 0; i < reader->traceCount(); ++i) {
            auto t = reader->decodeAt(i, &error);
            if (!t) {
                up.status = 422;
                up.error = "corpus entry " + std::to_string(i) +
                           ": " + error;
                return up;
            }
            up.traces.push_back(std::move(*t));
        }
    } else if (format == "lfmt") {
        auto t = trace::decodeTrace(body.data(), body.size(), &error);
        if (!t) {
            up.status = 422;
            up.error = "bad trace image: " + error;
            return up;
        }
        up.traces.push_back(std::move(*t));
    } else if (format == "text") {
        auto t = trace::traceFromString(body, &error);
        if (!t) {
            up.status = 422;
            up.error = "bad trace text: " + error;
            return up;
        }
        up.traces.push_back(std::move(*t));
    } else if (format == "log") {
        auto result = trace::replay::importLogText(body, "<upload>");
        up.imported = true;
        up.importStats = result.stats;
        if (!result.ok) {
            up.status = 422;
            up.error = result.diagnostics.empty()
                           ? "log import produced no events"
                           : "log import failed: " +
                                 result.diagnostics.front().message;
            return up;
        }
        up.traces.push_back(std::move(result.trace));
    } else {
        up.status = 400;
        up.error = "unknown format '" + format + "'";
        return up;
    }
    up.ok = true;
    up.status = 200;
    return up;
}

// ------------------------------------------------------------------
// Crash-contained per-trace analysis
// ------------------------------------------------------------------

TraceReport
analyzeContained(const detect::Pipeline &pipeline,
                 detect::TraceSource trace, std::uint64_t key,
                 const support::SandboxOptions &sandbox,
                 const support::CancellationToken *cancel,
                 detect::ContextScratch *scratch)
{
    TraceReport report;
    report.key = key;
    if (cancel != nullptr && cancel->cancelled()) {
        report.status = TraceStatus::Skipped;
        support::metrics::counter("serve.trace.skipped").add();
        return report;
    }
    const auto analyzeInto = [&](TraceReport &out) {
        try {
            out.findings = scratch != nullptr
                               ? pipeline.run(trace, *scratch)
                               : pipeline.run(trace);
            out.status = TraceStatus::Analyzed;
            out.error.clear();
        } catch (const std::exception &e) {
            out.findings.clear();
            out.status = TraceStatus::Quarantined;
            out.error = e.what();
        } catch (...) {
            out.findings.clear();
            out.status = TraceStatus::Quarantined;
            out.error = "non-standard exception";
        }
    };
    if (!sandbox.enabled()) {
        analyzeInto(report);
        if (report.status == TraceStatus::Quarantined)
            support::metrics::counter("serve.trace.quarantined").add();
        return report;
    }
    auto isolated = support::runIsolated(sandbox.limits, [&]() {
        TraceReport inner;
        inner.key = key;
        analyzeInto(inner);
        return detect::serializeTraceReport(inner);
    });
    if (isolated.ok &&
        detect::deserializeTraceReport(isolated.payload, report)) {
        report.key = key;
        if (report.status == TraceStatus::Quarantined)
            support::metrics::counter("serve.trace.quarantined").add();
        return report;
    }
    report.findings.clear();
    report.status = TraceStatus::Crashed;
    report.error =
        isolated.crashed
            ? "detection worker crashed: " + isolated.crash.signalName()
            : "detection worker exited without delivering a result";
    support::metrics::counter("serve.trace.crashed").add();
    return report;
}

// ------------------------------------------------------------------
// Journal codec. One record per state transition:
//
//   kRecBegin   u8 mode, str name            campaign accepted
//   kRecTrace   str name, u64 idx, image     one canonical LFMT image
//   kRecResult  str name, u64 idx, report    result (before any chunk
//                                            leaves the process)
//   kRecEnd     str name, u8 outcome         campaign finished
// ------------------------------------------------------------------

constexpr std::uint16_t kRecBegin = 1;
constexpr std::uint16_t kRecTrace = 2;
constexpr std::uint16_t kRecResult = 3;
constexpr std::uint16_t kRecEnd = 4;

/** Journal payload ceiling (support/journal.cc caps records at 16MB;
 * leave headroom for the name + framing). Uploads whose single trace
 * would not fit are refused up front — accepted always means
 * resumable. */
constexpr std::size_t kMaxJournalImage = (16u << 20) - 4096;

void
putU64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    const std::size_t off = buf.size();
    buf.resize(off + sizeof(v));
    std::memcpy(buf.data() + off, &v, sizeof(v));
}

void
putStr(std::vector<std::uint8_t> &buf, const std::string &s)
{
    putU64(buf, s.size());
    buf.insert(buf.end(), s.begin(), s.end());
}

struct RecReader
{
    const std::vector<std::uint8_t> &buf;
    std::size_t off = 0;
    bool ok = true;

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        if (off + sizeof(v) > buf.size()) {
            ok = false;
            return 0;
        }
        std::memcpy(&v, buf.data() + off, sizeof(v));
        off += sizeof(v);
        return v;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        if (!ok || off + n > buf.size()) {
            ok = false;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(buf.data() + off),
                      static_cast<std::size_t>(n));
        off += static_cast<std::size_t>(n);
        return s;
    }

    /** Everything after the cursor (image / report payloads). */
    std::vector<std::uint8_t>
    rest()
    {
        return {buf.begin() +
                    static_cast<std::ptrdiff_t>(std::min(off, buf.size())),
                buf.end()};
    }
};

} // namespace

// ------------------------------------------------------------------
// Service state
// ------------------------------------------------------------------

namespace
{

struct Campaign
{
    std::string name;
    bool session = false;
    bool done = false;
    RunOutcome outcome = RunOutcome::Completed;

    /** Canonical LFMT image per accepted trace, indexed by key. */
    std::vector<std::string> images;

    /** Results by key (complete once done; partial while running). */
    std::map<std::uint64_t, TraceReport> results;

    /** Live DetectionStream for an unfinished session campaign. */
    std::unique_ptr<detect::DetectionStream> stream;

    /** Serializes submit/finish/read on this campaign. */
    std::mutex m;
};

struct Tenant
{
    unsigned inFlight = 0;
    std::uint64_t bytes = 0;
    std::uint64_t rejected = 0;  ///< consecutive, reset on admit
};

} // namespace

struct DetectionService::Impl
{
    const detect::Pipeline &pipeline;
    ServiceOptions opt;

    support::Journal journal;
    bool journaling = false;

    mutable std::mutex m;
    std::map<std::string, std::shared_ptr<Campaign>> campaigns;
    std::map<std::string, Tenant> tenants;
    std::vector<support::CancellationToken *> activeTokens;
    std::uint64_t uploadSeq = 0;

    /** Campaign names in completion order; the eviction queue. */
    std::deque<std::string> completedOrder;

    /** Names of evicted campaigns. Reuse is refused (409) so a
     * journal replay never merges two campaigns' records under one
     * name; a name costs bytes where a retained campaign costs its
     * full trace images and results. */
    std::set<std::string> retired;

    std::atomic<bool> draining{false};
    std::atomic<unsigned> inFlight{0};
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> rejected{0};

    Impl(const detect::Pipeline &p, ServiceOptions o)
        : pipeline(p), opt(std::move(o))
    {
    }

    // ---- admission ------------------------------------------------

    struct Admission
    {
        Impl *impl = nullptr;
        std::string tenant;
        std::uint64_t bytes = 0;
        bool admitted = false;
        unsigned retryAfterSec = 1;

        Admission() = default;
        Admission(const Admission &) = delete;
        Admission &operator=(const Admission &) = delete;

        ~Admission()
        {
            if (admitted)
                impl->release(tenant, bytes);
        }
    };

    void
    tryAdmit(Admission &adm, const std::string &tenant,
             std::uint64_t bytes)
    {
        adm.impl = this;
        adm.tenant = tenant;
        adm.bytes = bytes;
        const support::Budget budget{opt.maxConcurrent,
                                     opt.maxInFlightBytes, {}};
        std::lock_guard lk(m);
        Tenant &t = tenants[tenant];
        const bool overloaded =
            draining.load(std::memory_order_relaxed) ||
            budget.check(t.inFlight, t.bytes + bytes) !=
                RunOutcome::Completed;
        if (overloaded) {
            ++t.rejected;
            rejected.fetch_add(1, std::memory_order_relaxed);
            support::metrics::counter("serve.admit.rejected").add();
            adm.retryAfterSec = retryAfterSeconds(
                opt.retryAfter, t.rejected, fnv1a(tenant));
            // An idle tenant's rejection holds no resources; drop
            // the entry right away so attacker-chosen tenant names
            // cannot grow the table. Backoff escalation state only
            // lives while the tenant has admitted work in flight —
            // which is exactly when consecutive rejections happen.
            if (t.inFlight == 0 && t.bytes == 0)
                tenants.erase(tenant);
            return;
        }
        ++t.inFlight;
        t.bytes += bytes;
        t.rejected = 0;
        admitted.fetch_add(1, std::memory_order_relaxed);
        inFlight.fetch_add(1, std::memory_order_relaxed);
        support::metrics::counter("serve.admit.accepted").add();
        adm.admitted = true;
    }

    void
    release(const std::string &tenant, std::uint64_t bytes)
    {
        std::lock_guard lk(m);
        auto it = tenants.find(tenant);
        if (it != tenants.end()) {
            Tenant &t = it->second;
            if (t.inFlight > 0)
                --t.inFlight;
            t.bytes -= std::min(t.bytes, bytes);
            // Last in-flight request done: retire the entry (and
            // with it any rejection streak — the pressure that
            // caused it is gone). The tenant table stays bounded by
            // concurrently admitted work, not by request history.
            if (t.inFlight == 0 && t.bytes == 0)
                tenants.erase(it);
        }
        inFlight.fetch_sub(1, std::memory_order_relaxed);
    }

    /** Registers a request's token for drain-time cancellation. */
    struct TokenScope
    {
        Impl *impl;
        support::CancellationToken *token;

        TokenScope(Impl *i, support::CancellationToken *t)
            : impl(i), token(t)
        {
            std::lock_guard lk(impl->m);
            impl->activeTokens.push_back(token);
        }

        TokenScope(const TokenScope &) = delete;
        TokenScope &operator=(const TokenScope &) = delete;

        ~TokenScope()
        {
            std::lock_guard lk(impl->m);
            auto &v = impl->activeTokens;
            v.erase(std::remove(v.begin(), v.end(), token), v.end());
        }
    };

    // ---- journal --------------------------------------------------

    void
    journalBegin(const Campaign &c)
    {
        if (!journaling)
            return;
        std::vector<std::uint8_t> payload;
        payload.push_back(c.session ? 1 : 0);
        putStr(payload, c.name);
        appendRecord(kRecBegin, payload);
    }

    void
    journalTrace(const std::string &name, std::uint64_t index,
                 const std::string &image)
    {
        if (!journaling)
            return;
        std::vector<std::uint8_t> payload;
        putStr(payload, name);
        putU64(payload, index);
        payload.insert(payload.end(), image.begin(), image.end());
        appendRecord(kRecTrace, payload);
    }

    void
    journalResult(const std::string &name, const TraceReport &report)
    {
        if (!journaling)
            return;
        std::vector<std::uint8_t> payload;
        putStr(payload, name);
        putU64(payload, report.key);
        const auto bytes = detect::serializeTraceReport(report);
        payload.insert(payload.end(), bytes.begin(), bytes.end());
        appendRecord(kRecResult, payload);
    }

    void
    journalEnd(const Campaign &c)
    {
        if (!journaling)
            return;
        std::vector<std::uint8_t> payload;
        payload.push_back(static_cast<std::uint8_t>(c.outcome));
        putStr(payload, c.name);
        appendRecord(kRecEnd, payload);
    }

    void
    appendRecord(std::uint16_t type,
                 const std::vector<std::uint8_t> &payload)
    {
        if (!journal.append(type, payload.data(), payload.size()))
            support::metrics::counter("serve.journal.append_failed")
                .add();
    }

    // ---- campaigns ------------------------------------------------

    std::shared_ptr<Campaign>
    findCampaign(const std::string &name) const
    {
        std::lock_guard lk(m);
        auto it = campaigns.find(name);
        return it == campaigns.end() ? nullptr : it->second;
    }

    /** Create-or-fail; nullptr when the name is taken (live or
     * evicted — an evicted name still owns journal records). */
    std::shared_ptr<Campaign>
    createCampaign(const std::string &name, bool session)
    {
        std::lock_guard lk(m);
        if (retired.count(name) != 0)
            return nullptr;
        auto [it, fresh] =
            campaigns.emplace(name, std::make_shared<Campaign>());
        if (!fresh)
            return nullptr;
        it->second->name = name;
        it->second->session = session;
        support::metrics::counter("serve.campaign.created").add();
        return it->second;
    }

    /** Record a campaign's completion and evict past the retention
     * cap. Takes Impl::m; safe to call with the completing
     * campaign's mutex held (the campaign→Impl::m lock order).
     * Callers invoke it before the final response bytes flush so
     * the eviction queue follows client-observable completion
     * order. */
    void
    noteCompleted(const std::string &name)
    {
        std::lock_guard lk(m);
        completedOrder.push_back(name);
        evictCompletedLocked();
    }

    /** Oldest-finished completed campaigns past the cap are dropped
     * from memory (m held). Results stay replayable from the
     * journal; only the name is kept, to refuse reuse. */
    void
    evictCompletedLocked()
    {
        if (opt.maxCompletedCampaigns == 0)
            return;
        while (completedOrder.size() > opt.maxCompletedCampaigns) {
            const std::string victim =
                std::move(completedOrder.front());
            completedOrder.pop_front();
            if (campaigns.erase(victim) == 0)
                continue;
            retired.insert(victim);
            support::metrics::counter("serve.campaign.evicted").add();
        }
    }

    std::string
    freshUploadName()
    {
        std::lock_guard lk(m);
        std::string name;
        do {
            name = "upload-" + std::to_string(++uploadSeq);
        } while (campaigns.count(name) != 0 ||
                 retired.count(name) != 0);
        return name;
    }

    /** The findings document for a campaign (campaign lock held by
     * the caller). Entries come from journaled/stored results in key
     * order, rendered from the canonical images — the same bytes an
     * uninterrupted streaming run produced. */
    std::string
    campaignDocLocked(Campaign &c, bool sarif) const
    {
        if (sarif) {
            detect::SarifBuilder builder;
            for (const auto &[key, report] : c.results) {
                if (key >= c.images.size())
                    continue;
                const std::string &image = c.images[key];
                auto t = trace::decodeTrace(image.data(), image.size());
                if (!t)
                    continue;
                builder.addTrace(*t, key, report.findings);
            }
            return builder.document().str() + "\n";
        }
        std::string out;
        DocStream doc([&out](std::string_view s) { out.append(s); });
        doc.begin();
        for (const auto &[key, report] : c.results) {
            if (key >= c.images.size())
                continue;
            const std::string &image = c.images[key];
            auto t = trace::decodeTrace(image.data(), image.size());
            if (!t)
                continue;
            doc.add(reportEntry(detect::TraceSource(*t), report));
        }
        doc.end();
        return out;
    }

    // ---- recovery -------------------------------------------------

    std::string
    journalPath() const
    {
        return opt.stateDir + "/serve.journal";
    }

    std::size_t
    recover()
    {
        if (opt.stateDir.empty())
            return 0;
        ::mkdir(opt.stateDir.c_str(), 0755);
        auto recovered = support::recoverJournal(journalPath());
        for (const auto &rec : recovered.records)
            replayRecord(rec);
        journaling = journal.open(journalPath(), opt.journalFsync);

        // Bump the auto-name sequence past every recovered name so a
        // restarted daemon never reuses a journaled campaign key.
        std::size_t count = 0;
        std::vector<std::shared_ptr<Campaign>> unfinished;
        {
            std::lock_guard lk(m);
            count = campaigns.size();
            for (auto &[name, c] : campaigns) {
                if (name.rfind("upload-", 0) == 0)
                    uploadSeq = std::max(
                        uploadSeq,
                        parseU64Or(name.substr(7), 0));
                if (!c->done)
                    unfinished.push_back(c);
            }
        }
        for (auto &c : unfinished) {
            std::lock_guard ck(c->m);
            if (c->session)
                reviveSessionLocked(*c);
            else
                completeOneShotLocked(*c);
        }
        // Recovered completed campaigns enter the eviction queue in
        // name order (deterministic across restarts) and the cap is
        // applied, so a restarted daemon's memory is bounded the
        // same way a long-running one's is.
        {
            std::lock_guard lk(m);
            for (auto &[cname, c] : campaigns) {
                if (c->done)
                    completedOrder.push_back(cname);
            }
            evictCompletedLocked();
        }
        if (count > 0)
            support::metrics::counter("serve.resume.campaigns")
                .add(count);
        return count;
    }

    void
    replayRecord(const support::JournalRecord &rec)
    {
        RecReader r{rec.payload};
        switch (rec.type) {
        case kRecBegin: {
            if (rec.payload.empty())
                return;
            const bool session = rec.payload[0] != 0;
            r.off = 1;
            const std::string name = r.str();
            if (!r.ok || name.empty())
                return;
            std::lock_guard lk(m);
            auto [it, fresh] =
                campaigns.emplace(name, std::make_shared<Campaign>());
            if (fresh) {
                it->second->name = name;
                it->second->session = session;
            }
            return;
        }
        case kRecTrace: {
            const std::string name = r.str();
            const std::uint64_t index = r.u64();
            if (!r.ok)
                return;
            const auto image = r.rest();
            auto c = findCampaign(name);
            if (!c)
                return;
            if (c->images.size() <= index)
                c->images.resize(index + 1);
            c->images[index].assign(image.begin(), image.end());
            return;
        }
        case kRecResult: {
            const std::string name = r.str();
            const std::uint64_t index = r.u64();
            if (!r.ok)
                return;
            TraceReport report;
            if (!detect::deserializeTraceReport(r.rest(), report))
                return;
            report.key = index;
            auto c = findCampaign(name);
            if (c)
                c->results[index] = std::move(report);
            return;
        }
        case kRecEnd: {
            if (rec.payload.empty())
                return;
            const auto outcome =
                static_cast<RunOutcome>(rec.payload[0]);
            r.off = 1;
            const std::string name = r.str();
            auto c = r.ok ? findCampaign(name) : nullptr;
            if (c) {
                c->done = true;
                c->outcome = outcome;
            }
            return;
        }
        default:
            return;
        }
    }

    /** Finish a one-shot campaign the previous process was killed
     * inside: journaled results are reused verbatim, only traces
     * without one are recomputed. Deterministic per-trace analysis
     * makes the final document byte-identical either way. */
    void
    completeOneShotLocked(Campaign &c)
    {
        detect::ContextScratch scratch;
        std::size_t reused = 0;
        for (std::uint64_t i = 0; i < c.images.size(); ++i) {
            if (c.results.count(i) != 0) {
                ++reused;
                continue;
            }
            const std::string &image = c.images[i];
            auto t = trace::decodeTrace(image.data(), image.size());
            TraceReport report;
            if (t) {
                report = analyzeContained(pipeline,
                                          detect::TraceSource(*t), i,
                                          opt.sandbox, nullptr,
                                          &scratch);
            } else {
                report.key = i;
                report.status = TraceStatus::Quarantined;
                report.error = "journaled image failed to decode";
            }
            journalResult(c.name, report);
            c.results[i] = std::move(report);
        }
        c.outcome = RunOutcome::Completed;
        c.done = true;
        journalEnd(c);
        if (reused > 0)
            support::metrics::counter("serve.resume.traces")
                .add(reused);
    }

    /** Re-arm an unfinished session: a fresh DetectionStream with
     * every journaled trace resubmitted under its original key. */
    void
    reviveSessionLocked(Campaign &c)
    {
        c.stream = std::make_unique<detect::DetectionStream>(
            pipeline, opt.streamWorkers);
        for (std::uint64_t i = 0; i < c.images.size(); ++i) {
            const std::string &image = c.images[i];
            auto t = trace::decodeTrace(image.data(), image.size());
            if (t)
                c.stream->submit(i, std::move(*t));
        }
    }

    // ---- endpoint plumbing ----------------------------------------

    void
    respondJson(ResponseWriter &w, int status, support::Json doc,
                std::vector<std::pair<std::string, std::string>>
                    extra = {})
    {
        HttpResponse resp;
        resp.status = status;
        resp.body = doc.str() + "\n";
        resp.extraHeaders = std::move(extra);
        w.respond(resp);
    }

    void
    respondError(ResponseWriter &w, int status,
                 const std::string &message)
    {
        support::Json doc;
        doc.set("error", message);
        respondJson(w, status, std::move(doc));
    }

    void
    respondOverloaded(ResponseWriter &w, unsigned retryAfterSec)
    {
        support::Json doc;
        doc.set("error", "overloaded; retry later");
        doc.set("retry_after_s", static_cast<std::uint64_t>(
                                     retryAfterSec));
        respondJson(w, 503, std::move(doc),
                    {{"Retry-After", std::to_string(retryAfterSec)}});
    }

    // ---- endpoints ------------------------------------------------

    void
    handle(const HttpRequest &req, ResponseWriter &w)
    {
        support::metrics::counter("serve.requests").add();
        const std::string &path = req.path;
        if (path == "/healthz" && req.method == "GET")
            return handleHealthz(w);
        if (path == "/metrics" && req.method == "GET")
            return handleMetrics(w);
        if (path == "/detect") {
            if (req.method != "POST")
                return respondError(w, 405, "method not allowed");
            return handleDetect(req, w);
        }
        if (path.rfind("/campaigns/", 0) == 0) {
            std::string rest = path.substr(std::strlen("/campaigns/"));
            std::string verb;
            const auto slash = rest.find('/');
            if (slash != std::string::npos) {
                verb = rest.substr(slash + 1);
                rest.resize(slash);
            }
            if (!validCampaignName(rest))
                return respondError(w, 400, "bad campaign name");
            if (verb.empty()) {
                if (req.method == "GET")
                    return handleCampaignReport(rest, w);
                if (req.method == "POST" || req.method == "PUT")
                    return handleCampaignCreate(rest, w);
                return respondError(w, 405, "method not allowed");
            }
            if (verb == "traces" && req.method == "POST")
                return handleCampaignTraces(rest, req, w);
            if (verb == "finish" && req.method == "POST")
                return handleCampaignFinish(rest, req, w);
            if (verb == "findings" && req.method == "GET")
                return handleCampaignFindings(rest, req, w);
            return respondError(w, 404, "not found");
        }
        respondError(w, 404, "not found");
    }

    void
    handleHealthz(ResponseWriter &w)
    {
        support::Json doc;
        const bool drain = draining.load(std::memory_order_relaxed);
        doc.set("status", drain ? "draining" : "ok");
        doc.set("in_flight", static_cast<std::uint64_t>(
                                 inFlight.load()));
        doc.set("admitted", admitted.load());
        doc.set("rejected", rejected.load());
        {
            std::lock_guard lk(m);
            doc.set("campaigns",
                    static_cast<std::uint64_t>(campaigns.size()));
            doc.set("tenants",
                    static_cast<std::uint64_t>(tenants.size()));
        }
        respondJson(w, 200, std::move(doc));
    }

    void
    handleMetrics(ResponseWriter &w)
    {
        HttpResponse resp;
        resp.body = support::metrics::Registry::instance()
                        .snapshotJson()
                        .str() +
                    "\n";
        w.respond(resp);
    }

    /** Shared admission + parse front half of every upload
     * endpoint. Returns false after responding. */
    bool
    admitUpload(const HttpRequest &req, ResponseWriter &w,
                Admission &adm, Upload &up)
    {
        if (draining.load(std::memory_order_relaxed)) {
            respondOverloaded(w, 1);
            return false;
        }
        const std::string *tenantHdr = req.header("x-lfm-tenant");
        const std::string tenant =
            tenantHdr != nullptr ? *tenantHdr : "default";
        if (opt.maxBodyBytes != 0 &&
            req.body.size() > opt.maxBodyBytes) {
            respondError(w, 413, "body too large");
            return false;
        }
        tryAdmit(adm, tenant, req.body.size());
        if (!adm.admitted) {
            respondOverloaded(w, adm.retryAfterSec);
            return false;
        }
        up = parseUpload(req.body, req.queryOr("format", "auto"));
        if (!up.ok) {
            respondError(w, up.status, up.error);
            return false;
        }
        if (journaling) {
            for (const trace::Trace &t : up.traces) {
                // Bound by the journal record cap so "accepted"
                // always implies "resumable". Encoded images are
                // about the size of the upload, so this bites only
                // near the cap.
                if (trace::encodeTrace(t).size() > kMaxJournalImage) {
                    respondError(w, 413,
                                 "trace too large to journal");
                    return false;
                }
            }
        }
        return true;
    }

    std::vector<std::pair<std::string, std::string>>
    importHeaders(const Upload &up) const
    {
        if (!up.imported)
            return {};
        const auto &s = up.importStats;
        return {{"X-LFM-Import-Lines", std::to_string(s.lines)},
                {"X-LFM-Import-Records", std::to_string(s.records)},
                {"X-LFM-Import-Quarantined",
                 std::to_string(s.quarantined)},
                {"X-LFM-Import-Stalled", std::to_string(s.stalled)}};
    }

    void
    handleDetect(const HttpRequest &req, ResponseWriter &w)
    {
        Admission adm;
        Upload up;
        if (!admitUpload(req, w, adm, up))
            return;

        std::string name = req.queryOr("campaign", "");
        if (name.empty())
            name = freshUploadName();
        else if (!validCampaignName(name))
            return respondError(w, 400, "bad campaign name");
        auto campaign = createCampaign(name, /*session=*/false);
        if (!campaign)
            return respondError(w, 409,
                                "campaign '" + name + "' exists");

        // Accepted: from here on the upload is journaled before any
        // analysis runs, so a crash of this process can no longer
        // lose it.
        std::unique_lock ck(campaign->m);
        journalBegin(*campaign);
        for (const trace::Trace &t : up.traces) {
            campaign->images.push_back(trace::encodeTrace(t));
            journalTrace(name, campaign->images.size() - 1,
                         campaign->images.back());
        }

        // Per-request failsafe: deadline -> watchdog -> token.
        support::CancellationToken token;
        TokenScope scope(this, &token);
        std::uint64_t deadlineMs = parseU64Or(
            req.queryOr("deadline_ms", ""), opt.defaultDeadlineMs);
        if (opt.defaultDeadlineMs != 0)
            deadlineMs = deadlineMs == 0
                             ? opt.defaultDeadlineMs
                             : std::min(deadlineMs,
                                        opt.defaultDeadlineMs);
        std::optional<support::Watchdog> watchdog;
        if (deadlineMs != 0)
            watchdog.emplace(token,
                             support::Deadline::afterMs(deadlineMs),
                             "serve: request deadline expired");

        const bool sarif = req.queryOr("output", "") == "sarif";
        const bool wantStream = !sarif &&
                                req.queryOr("stream", "1") != "0" &&
                                up.traces.size() > 1;

        // The streamed status line is committed only once the first
        // result exists, so a crash on trace 0 still picks a 500;
        // crashes after the status is on the wire — and the final
        // outcome — are reported in chunked trailers instead (the
        // buffered path below stays fully authoritative).
        std::optional<DocStream> doc;
        detect::ContextScratch scratch;
        bool anyCrashed = false;
        for (std::size_t i = 0; i < up.traces.size(); ++i) {
            TraceReport report = analyzeContained(
                pipeline, detect::TraceSource(up.traces[i]), i,
                opt.sandbox, &token, &scratch);
            anyCrashed |= report.status == TraceStatus::Crashed;
            // Journal first, emit second: once a result chunk is on
            // the wire it is also on disk.
            journalResult(name, report);
            if (wantStream && !doc) {
                auto extra = importHeaders(up);
                extra.emplace_back("X-LFM-Campaign", name);
                extra.emplace_back("Trailer",
                                   "X-LFM-Outcome, X-LFM-Crashed");
                w.beginChunked(anyCrashed ? 500 : 200,
                               "application/json", extra);
                doc.emplace(
                    [&w](std::string_view s) { w.chunk(s); });
                doc->begin();
            }
            if (doc)
                doc->add(reportEntry(
                    detect::TraceSource(up.traces[i]), report));
            campaign->results[i] = std::move(report);
        }

        campaign->outcome =
            watchdog && watchdog->fired()
                ? RunOutcome::DeadlineExpired
                : token.cancelled() ? RunOutcome::Cancelled
                                    : RunOutcome::Completed;
        if (watchdog)
            watchdog->disarm();
        campaign->done = true;
        journalEnd(*campaign);
        noteCompleted(name);

        if (doc) {
            doc->end();
            w.endChunked({{"X-LFM-Outcome",
                           support::outcomeName(campaign->outcome)},
                          {"X-LFM-Crashed", anyCrashed ? "1" : "0"}});
        } else {
            HttpResponse resp;
            resp.status = anyCrashed ? 500 : 200;
            resp.body = campaignDocLocked(*campaign, sarif);
            resp.extraHeaders = importHeaders(up);
            resp.extraHeaders.emplace_back("X-LFM-Campaign", name);
            resp.extraHeaders.emplace_back(
                "X-LFM-Outcome",
                support::outcomeName(campaign->outcome));
            w.respond(resp);
        }
    }

    void
    handleCampaignCreate(const std::string &name, ResponseWriter &w)
    {
        if (draining.load(std::memory_order_relaxed))
            return respondOverloaded(w, 1);
        auto campaign = createCampaign(name, /*session=*/true);
        support::Json doc;
        doc.set("campaign", name);
        if (!campaign) {
            auto existing = findCampaign(name);
            // No live entry means the name is retired (evicted): it
            // still owns journal records, so reuse is refused.
            if (!existing)
                return respondError(
                    w, 409, "campaign '" + name + "' exists");
            std::lock_guard ck(existing->m);
            if (!existing->session || existing->done)
                return respondError(
                    w, 409, "campaign '" + name + "' exists");
            doc.set("status", "exists");
            return respondJson(w, 200, std::move(doc));
        }
        std::lock_guard ck(campaign->m);
        campaign->stream = std::make_unique<detect::DetectionStream>(
            pipeline, opt.streamWorkers);
        journalBegin(*campaign);
        doc.set("status", "created");
        respondJson(w, 200, std::move(doc));
    }

    void
    handleCampaignTraces(const std::string &name,
                         const HttpRequest &req, ResponseWriter &w)
    {
        auto campaign = findCampaign(name);
        if (!campaign)
            return respondError(w, 404, "no such campaign");
        Admission adm;
        Upload up;
        if (!admitUpload(req, w, adm, up))
            return;
        std::lock_guard ck(campaign->m);
        if (campaign->done || !campaign->stream)
            return respondError(w, 409, "campaign finished");
        std::size_t accepted = 0;
        for (trace::Trace &t : up.traces) {
            const std::uint64_t key = campaign->images.size();
            campaign->images.push_back(trace::encodeTrace(t));
            journalTrace(name, key, campaign->images.back());
            if (campaign->stream->submit(key, std::move(t)))
                ++accepted;
        }
        support::Json doc;
        doc.set("campaign", name);
        doc.set("accepted", static_cast<std::uint64_t>(accepted));
        doc.set("total", static_cast<std::uint64_t>(
                             campaign->images.size()));
        respondJson(w, 200, std::move(doc), importHeaders(up));
    }

    void
    handleCampaignFinish(const std::string &name,
                         const HttpRequest &req, ResponseWriter &w)
    {
        auto campaign = findCampaign(name);
        if (!campaign)
            return respondError(w, 404, "no such campaign");
        const bool sarif = req.queryOr("output", "") == "sarif";
        std::lock_guard ck(campaign->m);
        if (!campaign->done) {
            if (!campaign->session || !campaign->stream)
                return respondError(w, 409, "not a session campaign");
            auto reports = campaign->stream->finish();
            campaign->stream.reset();
            for (TraceReport &report : reports) {
                journalResult(name, report);
                campaign->results[report.key] = std::move(report);
            }
            campaign->outcome = RunOutcome::Completed;
            campaign->done = true;
            journalEnd(*campaign);
            noteCompleted(name);
        }
        HttpResponse resp;
        resp.body = campaignDocLocked(*campaign, sarif);
        resp.extraHeaders.emplace_back("X-LFM-Campaign", name);
        resp.extraHeaders.emplace_back(
            "X-LFM-Outcome", support::outcomeName(campaign->outcome));
        w.respond(resp);
    }

    void
    handleCampaignFindings(const std::string &name,
                           const HttpRequest &req, ResponseWriter &w)
    {
        auto campaign = findCampaign(name);
        if (!campaign)
            return respondError(w, 404, "no such campaign");
        const bool sarif = req.queryOr("output", "") == "sarif";
        std::lock_guard ck(campaign->m);
        if (!campaign->done)
            return respondError(w, 409, "campaign still running");
        HttpResponse resp;
        resp.body = campaignDocLocked(*campaign, sarif);
        resp.extraHeaders.emplace_back(
            "X-LFM-Outcome", support::outcomeName(campaign->outcome));
        w.respond(resp);
    }

    void
    handleCampaignReport(const std::string &name, ResponseWriter &w)
    {
        auto campaign = findCampaign(name);
        if (!campaign)
            return respondError(w, 404, "no such campaign");
        report::RunReport run(name);
        std::vector<TraceReport> reports;
        bool done = false;
        std::size_t traces = 0;
        {
            std::lock_guard ck(campaign->m);
            done = campaign->done;
            traces = campaign->images.size();
            run.note("mode",
                     campaign->session ? "session" : "oneshot");
            run.setOutcome(campaign->outcome);
            reports.reserve(campaign->results.size());
            for (const auto &[key, report] : campaign->results)
                reports.push_back(report);
        }
        run.note("status", done ? "complete" : "running");
        run.note("traces", static_cast<std::uint64_t>(traces));
        report::recordTraceReports(run, reports);
        HttpResponse resp;
        resp.body = run.toJson().str() + "\n";
        w.respond(resp);
    }
};

// ------------------------------------------------------------------
// Public surface
// ------------------------------------------------------------------

DetectionService::DetectionService(const detect::Pipeline &pipeline,
                                   ServiceOptions options)
    : impl_(std::make_unique<Impl>(pipeline, std::move(options)))
{
}

DetectionService::~DetectionService() = default;

std::size_t
DetectionService::recover()
{
    return impl_->recover();
}

void
DetectionService::handle(const HttpRequest &request,
                         ResponseWriter &writer)
{
    impl_->handle(request, writer);
}

HttpHandler
DetectionService::handler()
{
    return [this](const HttpRequest &req, ResponseWriter &w) {
        impl_->handle(req, w);
    };
}

void
DetectionService::beginDrain()
{
    impl_->draining.store(true, std::memory_order_relaxed);
}

void
DetectionService::cancelInFlight(const std::string &reason)
{
    // Hold the lock across the cancels: tokens are handler-stack
    // objects whose TokenScope unregisters them under this same
    // mutex strictly before destruction, so a snapshot-then-cancel
    // would race a completing request and dereference a dead token.
    // requestCancel only takes the token's own (leaf) mutex, so
    // holding impl_->m here cannot deadlock.
    std::lock_guard lk(impl_->m);
    for (auto *token : impl_->activeTokens)
        token->requestCancel(reason);
}

ServiceStats
DetectionService::stats() const
{
    ServiceStats s;
    s.inFlight = impl_->inFlight.load();
    s.admitted = impl_->admitted.load();
    s.rejected = impl_->rejected.load();
    s.draining = impl_->draining.load();
    std::lock_guard lk(impl_->m);
    s.campaigns = impl_->campaigns.size();
    s.tenants = impl_->tenants.size();
    return s;
}

std::string
detectDocumentForCorpus(const detect::Pipeline &pipeline,
                        const trace::CorpusReader &corpus,
                        const ServiceOptions &options, bool sarif,
                        const support::CancellationToken *cancel)
{
    detect::ContextScratch scratch;
    std::vector<TraceReport> reports;
    std::vector<std::optional<trace::TraceView>> views;
    reports.reserve(corpus.traceCount());
    views.reserve(corpus.traceCount());
    for (std::size_t i = 0; i < corpus.traceCount(); ++i) {
        std::string error;
        auto view = corpus.viewAt(i, &error);
        if (!view) {
            TraceReport report;
            report.key = i;
            report.status = TraceStatus::Quarantined;
            report.error =
                "corpus entry " + std::to_string(i) + ": " + error;
            reports.push_back(std::move(report));
            views.emplace_back();
            continue;
        }
        reports.push_back(analyzeContained(
            pipeline, detect::TraceSource(*view), i, options.sandbox,
            cancel, &scratch));
        views.push_back(std::move(view));
    }
    if (sarif) {
        detect::SarifBuilder builder;
        for (std::size_t i = 0; i < reports.size(); ++i) {
            if (!views[i])
                continue;
            builder.addTrace(detect::TraceSource(*views[i]),
                             reports[i].key, reports[i].findings);
        }
        return builder.document().str() + "\n";
    }
    std::string out;
    DocStream doc([&out](std::string_view s) { out.append(s); });
    doc.begin();
    for (std::size_t i = 0; i < reports.size(); ++i) {
        if (!views[i])
            continue;
        doc.add(reportEntry(detect::TraceSource(*views[i]),
                            reports[i]));
    }
    doc.end();
    return out;
}

} // namespace lfm::serve
