/**
 * @file
 * lfm-serve: the always-on detection-as-a-service layer.
 *
 * DetectionService turns the batch/stream detection stack into a
 * long-running multi-tenant HTTP service. Robustness is the design
 * center — every failure mode the failsafe/sandbox/journal layers
 * already handle per campaign is wired to a service-level contract:
 *
 *  - Admission control: per-tenant concurrent-request and in-flight
 *    byte ceilings expressed as a support::Budget (maxSteps = slots,
 *    maxTraceBytes = bytes). Work past the ceiling is refused up
 *    front with 503 + Retry-After — never queued into oblivion, so
 *    accepted work is never dropped.
 *  - Backpressure: the Retry-After value follows the service's
 *    seeded RetryPolicy — a tenant that keeps hammering an
 *    overloaded daemon is told to back off exponentially (with the
 *    policy's deterministic jitter), exactly the discipline the
 *    study found in real-world retry-based fixes.
 *  - Deadlines: each request gets a CancellationToken; a Watchdog
 *    armed from the request deadline cancels a stuck analysis, which
 *    then returns partial results with the remaining traces
 *    explicitly marked "skipped" — a truncated report, not a hung
 *    worker.
 *  - Crash containment: with SandboxPolicy::Fork each trace is
 *    analyzed in a forked child (support::runIsolated); a genuinely
 *    segfaulting detector yields a 500 with a crash report while
 *    every concurrent request completes normally.
 *  - Crash-resume: accepted campaigns are journaled (canonical LFMT
 *    image per trace, then one result record per trace, then an end
 *    record) through support/journal. A SIGKILL'd daemon restarts,
 *    replays the journal, finishes any half-done campaign, and
 *    serves findings byte-identical to an uninterrupted run.
 *  - Graceful drain: beginDrain() refuses new work (503) while
 *    in-flight requests finish and their journals flush.
 *  - Bounded memory: completed campaigns past maxCompletedCampaigns
 *    are evicted oldest-first (they stay replayable from the
 *    journal; their names answer 409 rather than silently forking a
 *    second history), and a tenant's admission entry lives only
 *    while it has work in flight — attacker-chosen X-LFM-Tenant
 *    values cannot grow the table without holding real slots.
 *
 * Streamed /detect responses commit their status line at the FIRST
 * result: a crash on trace 0 still yields a 500, but a crash after
 * the 200 is on the wire is reported in the `X-LFM-Crashed` chunked
 * trailer instead (alongside `X-LFM-Outcome`); the buffered path
 * (?stream=0, single-trace uploads, SARIF) always carries the
 * authoritative status and headers.
 *
 * Endpoints (see DESIGN.md §5g for the full contract):
 *
 *     GET  /healthz                     liveness + drain state
 *     GET  /metrics                     metrics registry snapshot
 *     POST /detect                      one-shot upload → findings
 *     POST /campaigns/<key>             create a streaming session
 *     POST /campaigns/<key>/traces      submit traces (DetectionStream)
 *     POST /campaigns/<key>/finish      close session → findings
 *     GET  /campaigns/<key>             RunReport JSON
 *     GET  /campaigns/<key>/findings    the findings document
 *
 * Uploads are format-sniffed: LFMC corpora, single LFMT images, v1
 * trace text, and raw pthread event logs (the PR 8 replay importer;
 * quarantined lines are surfaced in X-LFM-Import-* headers, honest
 * partial-parse instead of silent acceptance).
 *
 * The one-shot corpus path streams the exact bytes of
 * detect::reportsJson (chunk boundaries at trace entries), and
 * detectDocumentForCorpus() exposes the same generator to
 * `lfm_served --batch` — HTTP findings are byte-identical to the
 * batch CLI path by construction, and a ctest gate holds both to
 * detect::reportsJson itself.
 */

#ifndef LFM_SERVE_SERVICE_HH
#define LFM_SERVE_SERVICE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "detect/pipeline.hh"
#include "serve/http.hh"
#include "support/failsafe.hh"
#include "support/sandbox.hh"
#include "trace/corpus.hh"

namespace lfm::serve
{

struct ServiceOptions
{
    /** Admission: concurrent requests per tenant (0 = unlimited). */
    unsigned maxConcurrent = 4;

    /** Admission: in-flight upload bytes per tenant (0 = unlimited). */
    std::uint64_t maxInFlightBytes = 64ull << 20;

    /** Hard per-request body ceiling (413 above; enforced by the
     * HTTP layer before the body is read in). */
    std::uint64_t maxBodyBytes = 16ull << 20;

    /** Default per-request deadline in ms (0 = none); requests may
     * tighten it with ?deadline_ms= but never exceed it. */
    std::uint64_t defaultDeadlineMs = 0;

    /** Crash containment for analysis (Fork = forked per-trace
     * children; the daemon default). Off runs in-process. */
    support::SandboxOptions sandbox;

    /** Backoff schedule behind Retry-After: rejection n of a tenant
     * waits delayNs(n) — deterministic, seeded, jittered. */
    support::RetryPolicy retryAfter{8, 1'000'000'000ull,
                                    64'000'000'000ull, 0x5eedu};

    /** Completed campaigns kept in memory; past the cap the oldest-
     * finished ones are evicted (still replayable from the journal;
     * their names stay reserved and answer 409 on reuse so a resume
     * never merges two campaigns' records). 0 = unlimited. */
    std::size_t maxCompletedCampaigns = 256;

    /** Journal directory; empty = volatile (no crash-resume). */
    std::string stateDir;

    /** fsync every journal append (the durable default; tests that
     * only need SIGKILL-of-the-process durability turn it off). */
    bool journalFsync = true;

    /** DetectionStream workers per streaming campaign session. */
    unsigned streamWorkers = 2;
};

/** Live service counters surfaced by /healthz. */
struct ServiceStats
{
    unsigned inFlight = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::size_t campaigns = 0;
    std::size_t tenants = 0;  ///< tenants with live admission state
    bool draining = false;
};

/** The HTTP-facing detection service; see the file comment. */
class DetectionService
{
  public:
    /** The pipeline must outlive the service. */
    DetectionService(const detect::Pipeline &pipeline,
                     ServiceOptions options);
    ~DetectionService();

    DetectionService(const DetectionService &) = delete;
    DetectionService &operator=(const DetectionService &) = delete;

    /**
     * Replay the journal in stateDir: finished campaigns are served
     * from their journaled results; a campaign the previous process
     * was killed in the middle of is completed here (journaled
     * per-trace results are reused verbatim, only the missing tail
     * is recomputed — per-trace detection is deterministic, so the
     * final document is byte-identical to an uninterrupted run).
     * Call before serving. @return campaigns recovered.
     */
    std::size_t recover();

    /** The request entry point (wire into HttpServer). */
    void handle(const HttpRequest &request, ResponseWriter &writer);

    /** handle() bound as an HttpHandler. */
    HttpHandler handler();

    /** Refuse new work (503 + Retry-After); read-only endpoints and
     * in-flight requests keep working. */
    void beginDrain();

    /** Cancel every in-flight request's token (bounded drain: their
     * remaining traces come back "skipped" and journals still get
     * an end record). */
    void cancelInFlight(const std::string &reason);

    ServiceStats stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * The batch CLI path: analyze every trace of the corpus exactly the
 * way the HTTP one-shot path does (same per-trace containment, same
 * document framing) and return the full findings document — the
 * bytes `lfm_served --batch` prints and the byte-equality gates
 * compare against. With `sarif` the SARIF 2.1.0 document is
 * returned instead.
 */
std::string
detectDocumentForCorpus(const detect::Pipeline &pipeline,
                        const trace::CorpusReader &corpus,
                        const ServiceOptions &options = {},
                        bool sarif = false,
                        const support::CancellationToken *cancel =
                            nullptr);

} // namespace lfm::serve

#endif // LFM_SERVE_SERVICE_HH
