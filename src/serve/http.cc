#include "serve/http.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <list>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "support/metrics.hh"
#include "support/string_utils.hh"

namespace lfm::serve
{

namespace
{

/** Decode %xx escapes and '+' in a query component. */
std::string
percentDecode(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '+') {
            out.push_back(' ');
        } else if (s[i] == '%' && i + 2 < s.size() &&
                   std::isxdigit(static_cast<unsigned char>(s[i + 1])) &&
                   std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
            auto hex = [](char c) -> int {
                if (c >= '0' && c <= '9')
                    return c - '0';
                if (c >= 'a' && c <= 'f')
                    return c - 'a' + 10;
                return c - 'A' + 10;
            };
            out.push_back(static_cast<char>(hex(s[i + 1]) * 16 +
                                            hex(s[i + 2])));
            i += 2;
        } else {
            out.push_back(s[i]);
        }
    }
    return out;
}

/** Send every byte, retrying short writes; false when peer is gone. */
bool
sendRaw(int fd, std::string_view data)
{
    while (!data.empty()) {
        const ssize_t n =
            ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
}

std::string
statusLine(int status)
{
    std::ostringstream os;
    os << "HTTP/1.1 " << status << " " << httpReason(status) << "\r\n";
    return os.str();
}

std::string
headerBlock(const std::string &contentType,
            const std::vector<std::pair<std::string, std::string>>
                &extraHeaders)
{
    std::string out;
    out += "Server: lfm-serve\r\n";
    if (!contentType.empty())
        out += "Content-Type: " + contentType + "\r\n";
    for (const auto &[name, value] : extraHeaders)
        out += name + ": " + value + "\r\n";
    out += "Connection: close\r\n";
    return out;
}

} // namespace

const char *
httpReason(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 202:
        return "Accepted";
    case 400:
        return "Bad Request";
    case 404:
        return "Not Found";
    case 405:
        return "Method Not Allowed";
    case 408:
        return "Request Timeout";
    case 409:
        return "Conflict";
    case 411:
        return "Length Required";
    case 413:
        return "Payload Too Large";
    case 422:
        return "Unprocessable Entity";
    case 431:
        return "Request Header Fields Too Large";
    case 500:
        return "Internal Server Error";
    case 501:
        return "Not Implemented";
    case 503:
        return "Service Unavailable";
    default:
        return "Status";
    }
}

const std::string *
HttpRequest::header(const std::string &nameLower) const
{
    for (const auto &[name, value] : headers) {
        if (name == nameLower)
            return &value;
    }
    return nullptr;
}

std::string
HttpRequest::queryOr(const std::string &key,
                     const std::string &dflt) const
{
    const auto it = query.find(key);
    return it == query.end() ? dflt : it->second;
}

void
ResponseWriter::sendAll(std::string_view data)
{
    if (broken_)
        return;
    if (!sendRaw(fd_, data))
        broken_ = true;
}

void
ResponseWriter::respond(const HttpResponse &response)
{
    if (started_)
        return;
    started_ = true;
    std::string head = statusLine(response.status);
    head += headerBlock(response.contentType, response.extraHeaders);
    head +=
        "Content-Length: " + std::to_string(response.body.size()) +
        "\r\n\r\n";
    sendAll(head);
    sendAll(response.body);
    finished_ = true;
}

void
ResponseWriter::beginChunked(
    int status, const std::string &contentType,
    const std::vector<std::pair<std::string, std::string>>
        &extraHeaders)
{
    if (started_)
        return;
    started_ = true;
    chunked_ = true;
    std::string head = statusLine(status);
    head += headerBlock(contentType, extraHeaders);
    head += "Transfer-Encoding: chunked\r\n\r\n";
    sendAll(head);
}

void
ResponseWriter::chunk(std::string_view data)
{
    if (!chunked_ || finished_ || data.empty())
        return;
    std::ostringstream frame;
    frame << std::hex << data.size() << "\r\n";
    sendAll(frame.str());
    sendAll(data);
    sendAll("\r\n");
}

void
ResponseWriter::endChunked(
    const std::vector<std::pair<std::string, std::string>> &trailers)
{
    if (!chunked_ || finished_)
        return;
    std::string tail = "0\r\n";
    for (const auto &[name, value] : trailers)
        tail += name + ": " + value + "\r\n";
    tail += "\r\n";
    sendAll(tail);
    finished_ = true;
}

// ------------------------------------------------------------------
// Server
// ------------------------------------------------------------------

struct HttpServer::Impl
{
    HttpHandler handler;
    HttpServerOptions options;

    int listenFd = -1;
    std::uint16_t port = 0;

    std::atomic<bool> draining{false};
    std::atomic<std::uint64_t> requests{0};

    /** One tracked connection thread; `done` lets the accept loop
     * reap finished threads without blocking on live ones. */
    struct Conn
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };

    mutable std::mutex m;
    std::condition_variable cv;
    unsigned active = 0;  ///< connection threads inside handleConn
    std::list<Conn> conns;  ///< reaped on accept, joined on drain
    bool drained = false;

    std::thread acceptThread;

    /**
     * Parse one request off the socket and dispatch it. Any protocol
     * problem answers with the right 4xx/5xx and closes; only a fully
     * parsed request reaches the handler.
     */
    void
    handleConn(int fd)
    {
        ResponseWriter writer(fd);
        HttpRequest request;
        const int verdict = readRequest(fd, request);
        if (verdict != 0) {
            if (verdict > 0)  // protocol error with a status code
                writer.respond({verdict, "text/plain",
                                std::string(httpReason(verdict)) +
                                    "\n",
                                {}});
            // verdict < 0: peer vanished / timed out; nothing to say.
        } else {
            requests.fetch_add(1, std::memory_order_relaxed);
            try {
                handler(request, writer);
                if (!writer.started())
                    writer.respond({500, "text/plain",
                                    "handler produced no response\n",
                                    {}});
                else if (!writer.finished())
                    writer.endChunked();
            } catch (const std::exception &e) {
                // A throwing handler degrades one exchange, not the
                // daemon (the batch layer's quarantine policy).
                support::metrics::counter("serve.http.handler_errors")
                    .add();
                if (!writer.started())
                    writer.respond({500, "text/plain",
                                    std::string("internal error: ") +
                                        e.what() + "\n",
                                    {}});
                else if (!writer.finished())
                    writer.endChunked();
            }
        }
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }

    /**
     * Read and parse one request. Returns 0 on success, a positive
     * HTTP status for protocol errors the peer should hear about, or
     * -1 when the connection died / timed out mid-request.
     */
    int
    readRequest(int fd, HttpRequest &request)
    {
        std::string buf;
        std::size_t headerEnd = std::string::npos;
        char tmp[4096];
        while (true) {
            headerEnd = buf.find("\r\n\r\n");
            if (headerEnd != std::string::npos)
                break;
            if (buf.size() > options.maxHeaderBytes)
                return 431;
            const ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return -1;  // timeout (SO_RCVTIMEO) or reset
            }
            if (n == 0)
                return buf.empty() ? -1 : 400;
            buf.append(tmp, static_cast<std::size_t>(n));
        }

        const std::string head = buf.substr(0, headerEnd);
        std::string rest = buf.substr(headerEnd + 4);

        // Request line.
        const std::size_t lineEnd = head.find("\r\n");
        const std::string line =
            lineEnd == std::string::npos ? head
                                         : head.substr(0, lineEnd);
        std::istringstream ls(line);
        std::string version;
        if (!(ls >> request.method >> request.target >> version) ||
            version.rfind("HTTP/1.", 0) != 0)
            return 400;

        // Headers (names lower-cased, values trimmed).
        std::size_t pos = lineEnd == std::string::npos
                              ? head.size()
                              : lineEnd + 2;
        while (pos < head.size()) {
            std::size_t eol = head.find("\r\n", pos);
            if (eol == std::string::npos)
                eol = head.size();
            const std::string hline = head.substr(pos, eol - pos);
            pos = eol + 2;
            const std::size_t colon = hline.find(':');
            if (colon == std::string::npos)
                return 400;
            request.headers.emplace_back(
                support::toLower(support::trim(hline.substr(0, colon))),
                support::trim(hline.substr(colon + 1)));
        }

        // Split target into path + query.
        const std::size_t q = request.target.find('?');
        request.path = percentDecode(request.target.substr(0, q));
        if (q != std::string::npos) {
            for (const auto &pair :
                 support::split(request.target.substr(q + 1), '&')) {
                if (pair.empty())
                    continue;
                const std::size_t eq = pair.find('=');
                if (eq == std::string::npos)
                    request.query[percentDecode(pair)] = "";
                else
                    request.query[percentDecode(pair.substr(0, eq))] =
                        percentDecode(pair.substr(eq + 1));
            }
        }

        // Body framing: explicit Content-Length or nothing. Chunked
        // uploads are refused rather than half-supported.
        if (const std::string *te =
                request.header("transfer-encoding")) {
            (void)te;
            return 501;
        }
        const std::string *cl = request.header("content-length");
        if (cl == nullptr) {
            if (!rest.empty())
                return 411;
            return 0;
        }
        char *end = nullptr;
        const unsigned long long want =
            std::strtoull(cl->c_str(), &end, 10);
        if (end == nullptr || *end != '\0')
            return 400;
        if (want > options.maxBodyBytes)
            return 413;
        request.body = std::move(rest);
        while (request.body.size() < want) {
            const ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return -1;
            }
            if (n == 0)
                return 400;  // peer closed mid-body
            request.body.append(tmp, static_cast<std::size_t>(n));
        }
        if (request.body.size() > want)
            request.body.resize(want);  // ignore pipelined trailing data
        return 0;
    }

    /** The accept loop owns its copy of the listen fd: beginDrain()
     * only shutdown(2)s the socket to pop accept(2) (accept then
     * fails with EINVAL and the loop exits); the fd itself is closed
     * by drain() after this thread is joined, so the fd number can
     * never be recycled into a connection socket while a stale
     * accept(2) still references it. */
    void
    acceptLoop(const int lfd)
    {
        while (true) {
            const int fd = ::accept(lfd, nullptr, nullptr);
            if (fd < 0) {
                if (errno == EINTR)
                    continue;
                return;  // listen socket shut down: drain began
            }
            if (draining.load(std::memory_order_acquire)) {
                ResponseWriter w(fd);
                w.respond({503, "text/plain", "draining\n",
                           {{"Retry-After", "1"}}});
                ::close(fd);
                continue;
            }

            struct timeval tv = {};
            tv.tv_sec = options.recvTimeoutSec;
            ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
            struct timeval stv = {};
            stv.tv_sec = options.sendTimeoutSec;
            ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &stv,
                         sizeof(stv));

            std::unique_lock lk(m);
            // Reap finished threads so a long-lived daemon does not
            // accumulate handles (their connections already closed).
            for (auto it = conns.begin(); it != conns.end();) {
                if (it->done->load(std::memory_order_acquire)) {
                    it->thread.join();
                    it = conns.erase(it);
                } else {
                    ++it;
                }
            }
            if (active >= options.maxConnections) {
                lk.unlock();
                support::metrics::counter("serve.http.conn_rejected")
                    .add();
                ResponseWriter w(fd);
                w.respond({503, "text/plain", "overloaded\n",
                           {{"Retry-After", "1"}}});
                ::close(fd);
                continue;
            }
            ++active;
            auto done = std::make_shared<std::atomic<bool>>(false);
            conns.push_back(
                {std::thread([this, fd, done] {
                     handleConn(fd);
                     std::lock_guard lg(m);
                     --active;
                     done->store(true, std::memory_order_release);
                     cv.notify_all();
                 }),
                 done});
        }
    }
};

HttpServer::HttpServer(HttpHandler handler, HttpServerOptions options)
    : impl_(std::make_unique<Impl>())
{
    impl_->handler = std::move(handler);
    impl_->options = std::move(options);
}

HttpServer::~HttpServer()
{
    drain();
}

bool
HttpServer::start(std::string *error)
{
    if (impl_->listenFd >= 0)
        return true;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error != nullptr)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(impl_->options.port);
    if (::inet_pton(AF_INET, impl_->options.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        if (error != nullptr)
            *error = "bad bind address: " + impl_->options.bindAddress;
        ::close(fd);
        return false;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        if (error != nullptr)
            *error = std::string("bind/listen: ") +
                     std::strerror(errno);
        ::close(fd);
        return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len);
    impl_->port = ntohs(addr.sin_port);
    impl_->listenFd = fd;
    impl_->acceptThread =
        std::thread([this, fd] { impl_->acceptLoop(fd); });
    return true;
}

std::uint16_t
HttpServer::port() const
{
    return impl_->port;
}

void
HttpServer::beginDrain()
{
    impl_->draining.store(true, std::memory_order_release);
    std::lock_guard lk(impl_->m);
    if (impl_->listenFd >= 0) {
        // shutdown(2) pops the accept loop out of accept(2) with
        // EINVAL but keeps the fd alive — drain() closes it after
        // joining the accept thread, so the loop never races a
        // close (and the fd number cannot be recycled under a
        // blocked accept).
        ::shutdown(impl_->listenFd, SHUT_RDWR);
    }
}

void
HttpServer::drain()
{
    beginDrain();
    if (impl_->acceptThread.joinable())
        impl_->acceptThread.join();
    std::unique_lock lk(impl_->m);
    if (impl_->listenFd >= 0) {
        ::close(impl_->listenFd);
        impl_->listenFd = -1;
    }
    if (impl_->drained)
        return;
    impl_->cv.wait(lk, [this] { return impl_->active == 0; });
    for (auto &conn : impl_->conns)
        conn.thread.join();
    impl_->conns.clear();
    impl_->drained = true;
}

bool
HttpServer::draining() const
{
    return impl_->draining.load(std::memory_order_acquire);
}

unsigned
HttpServer::activeConnections() const
{
    std::lock_guard lk(impl_->m);
    return impl_->active;
}

std::uint64_t
HttpServer::requestsHandled() const
{
    return impl_->requests.load(std::memory_order_relaxed);
}

// ------------------------------------------------------------------
// Client
// ------------------------------------------------------------------

const std::string *
ClientResponse::header(const std::string &nameLower) const
{
    for (const auto &[name, value] : headers) {
        if (name == nameLower)
            return &value;
    }
    return nullptr;
}

namespace
{

/** recv() until the predicate over the accumulated buffer holds. */
bool
recvUntil(int fd, std::string &buf,
          const std::function<bool(const std::string &)> &done)
{
    char tmp[4096];
    while (!done(buf)) {
        const ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return done(buf);
        buf.append(tmp, static_cast<std::size_t>(n));
    }
    return true;
}

/** De-chunk a complete chunked body (terminating 0-chunk, trailer
 * section and final blank line included); false while incomplete or
 * on framing error. Trailers are collected into `trailers`. */
bool
dechunk(const std::string &in, std::string &out,
        std::vector<std::pair<std::string, std::string>> &trailers)
{
    std::size_t pos = 0;
    while (true) {
        const std::size_t eol = in.find("\r\n", pos);
        if (eol == std::string::npos)
            return false;
        const unsigned long long size =
            std::strtoull(in.substr(pos, eol - pos).c_str(), nullptr,
                          16);
        pos = eol + 2;
        if (size == 0)
            break;
        if (pos + size + 2 > in.size())
            return false;
        out.append(in, pos, size);
        pos += size + 2;  // skip chunk + CRLF
    }
    // Trailer section: zero or more header lines, then a blank line.
    while (true) {
        const std::size_t eol = in.find("\r\n", pos);
        if (eol == std::string::npos)
            return false;  // trailer section still incomplete
        if (eol == pos)
            return true;  // blank line: message complete
        const std::string line = in.substr(pos, eol - pos);
        pos = eol + 2;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        trailers.emplace_back(
            support::toLower(support::trim(line.substr(0, colon))),
            support::trim(line.substr(colon + 1)));
    }
}

} // namespace

ClientResponse
httpRequest(std::uint16_t port, const std::string &method,
            const std::string &target, const std::string &body,
            const std::vector<std::pair<std::string, std::string>>
                &headers,
            unsigned timeoutSec)
{
    ClientResponse res;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        res.error = std::string("socket: ") + std::strerror(errno);
        return res;
    }
    struct timeval tv = {};
    tv.tv_sec = timeoutSec;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        res.error = std::string("connect: ") + std::strerror(errno);
        ::close(fd);
        return res;
    }

    std::string req = method + " " + target + " HTTP/1.1\r\n";
    req += "Host: 127.0.0.1:" + std::to_string(port) + "\r\n";
    for (const auto &[name, value] : headers)
        req += name + ": " + value + "\r\n";
    if (!body.empty() || method == "POST" || method == "PUT")
        req += "Content-Length: " + std::to_string(body.size()) +
               "\r\n";
    req += "Connection: close\r\n\r\n";
    req += body;
    if (!sendRaw(fd, req)) {
        res.error = "send failed";
        ::close(fd);
        return res;
    }

    std::string buf;
    if (!recvUntil(fd, buf, [](const std::string &b) {
            return b.find("\r\n\r\n") != std::string::npos;
        })) {
        res.error = "recv failed (headers)";
        ::close(fd);
        return res;
    }
    const std::size_t headerEnd = buf.find("\r\n\r\n");
    if (headerEnd == std::string::npos) {
        res.error = "connection closed before headers completed";
        ::close(fd);
        return res;
    }
    const std::string head = buf.substr(0, headerEnd);
    std::string rest = buf.substr(headerEnd + 4);

    std::istringstream hs(head);
    std::string line;
    std::getline(hs, line);
    std::istringstream sl(line);
    std::string version;
    sl >> version >> res.status;
    bool chunked = false;
    std::size_t contentLength = std::string::npos;
    while (std::getline(hs, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        const std::string name =
            support::toLower(support::trim(line.substr(0, colon)));
        const std::string value =
            support::trim(line.substr(colon + 1));
        res.headers.emplace_back(name, value);
        if (name == "transfer-encoding" &&
            support::toLower(value).find("chunked") !=
                std::string::npos)
            chunked = true;
        if (name == "content-length")
            contentLength = std::strtoull(value.c_str(), nullptr, 10);
    }

    if (chunked) {
        // Read until the terminating 0-chunk (trailers included)
        // parses.
        std::string decoded;
        std::vector<std::pair<std::string, std::string>> trailers;
        const bool got = recvUntil(
            fd, rest, [&decoded, &trailers](const std::string &b) {
                decoded.clear();
                trailers.clear();
                return dechunk(b, decoded, trailers);
            });
        ::close(fd);
        if (!got) {
            res.error = "recv failed (chunked body)";
            return res;
        }
        res.body = std::move(decoded);
        for (auto &trailer : trailers)
            res.headers.push_back(std::move(trailer));
        res.ok = true;
        return res;
    }

    if (contentLength != std::string::npos) {
        if (!recvUntil(fd, rest, [contentLength](const std::string &b) {
                return b.size() >= contentLength;
            })) {
            res.error = "recv failed (body)";
            ::close(fd);
            return res;
        }
        rest.resize(contentLength);
    } else {
        // Connection-close framing: read to EOF.
        recvUntil(fd, rest,
                  [](const std::string &) { return false; });
    }
    ::close(fd);
    res.body = std::move(rest);
    res.ok = true;
    return res;
}

} // namespace lfm::serve
