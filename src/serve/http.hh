/**
 * @file
 * Dependency-free HTTP/1.1 substrate for lfm-serve.
 *
 * A deliberately small server: POSIX sockets, blocking I/O, one
 * accept loop plus one thread per live connection, no TLS, no
 * keep-alive (every response carries "Connection: close" so drain
 * semantics stay trivial: no accepted connection is ever parked
 * half-idle). That is all the detection service needs — the hard
 * robustness problems (admission, backpressure, deadlines, crash
 * containment, resume) live a layer up in serve/service.hh, and the
 * HTTP layer's only jobs are to parse requests defensively and to
 * let handlers stream responses incrementally.
 *
 * Defensive parsing rules (malformed input degrades one connection,
 * never the daemon — the same quarantine-don't-abort policy the
 * importer applies per line):
 *  - request line + headers are capped (431 past the cap);
 *  - bodies need an explicit Content-Length (411 otherwise when a
 *    body is present; chunked *uploads* are not accepted: 501);
 *  - bodies past the configured ceiling are refused (413) without
 *    reading them in;
 *  - a connection that stalls mid-request times out and is closed;
 *  - a peer that stops *reading* is bounded too: accepted sockets
 *    carry a send timeout, so a stalled client of a streamed
 *    response breaks the connection instead of pinning its handler
 *    thread (and the admission slot it holds) forever.
 *
 * Responses are either fixed (status + body, Content-Length) or
 * chunked (Transfer-Encoding: chunked) via ResponseWriter, which the
 * service uses to stream per-trace findings as they are produced.
 *
 * The blocking client at the bottom exists for the test suite, the
 * CI script fallback, and `lfm_served --client` — the daemon is
 * exercised end-to-end without requiring curl on the host.
 */

#ifndef LFM_SERVE_HTTP_HH
#define LFM_SERVE_HTTP_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lfm::serve
{

/** One parsed request. Header names are lower-cased on parse. */
struct HttpRequest
{
    std::string method;  ///< "GET", "POST", ...
    std::string target;  ///< raw request target ("/detect?x=1")
    std::string path;    ///< target up to '?', percent-decoded
    std::map<std::string, std::string> query;  ///< decoded key=value
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Header value by lower-case name; nullptr when absent. */
    const std::string *header(const std::string &nameLower) const;

    /** Query parameter with a default. */
    std::string queryOr(const std::string &key,
                        const std::string &dflt) const;
};

/** A fixed (non-streamed) response. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
    std::vector<std::pair<std::string, std::string>> extraHeaders;
};

/** Standard reason phrase for a status code. */
const char *httpReason(int status);

/**
 * Per-exchange response channel handed to the handler. Exactly one
 * of respond() or beginChunked()+chunk()*+endChunked() must be used;
 * if the handler returns without either, the server sends a 500.
 * Write errors (peer went away) are sticky and silently swallowed —
 * the handler finishes its work (journal appends included) and the
 * connection is torn down afterwards.
 */
class ResponseWriter
{
  public:
    explicit ResponseWriter(int fd) : fd_(fd) {}

    ResponseWriter(const ResponseWriter &) = delete;
    ResponseWriter &operator=(const ResponseWriter &) = delete;

    /** Send a complete fixed response (Content-Length framing). */
    void respond(const HttpResponse &response);

    /** Start a chunked response; follow with chunk()/endChunked(). */
    void beginChunked(int status, const std::string &contentType,
                      const std::vector<std::pair<std::string, std::string>>
                          &extraHeaders = {});

    /** Send one chunk (empty data is a no-op, not a terminator). */
    void chunk(std::string_view data);

    /** Terminate the chunked body, optionally with HTTP trailers
     * (announce their names in a "Trailer" header at beginChunked
     * time). Trailers let a streamed response report facts that are
     * only known at the end — outcome, crash containment — after
     * the status line is long gone. */
    void endChunked(
        const std::vector<std::pair<std::string, std::string>>
            &trailers = {});

    /** True once any of the sending entry points ran. */
    bool started() const { return started_; }

    /** True once the response is complete. */
    bool finished() const { return finished_; }

  private:
    void sendAll(std::string_view data);

    int fd_;
    bool started_ = false;
    bool finished_ = false;
    bool chunked_ = false;
    bool broken_ = false;
};

/** Request handler; runs on the connection's thread. */
using HttpHandler =
    std::function<void(const HttpRequest &, ResponseWriter &)>;

struct HttpServerOptions
{
    /** Bind port; 0 picks an ephemeral port (see HttpServer::port). */
    std::uint16_t port = 0;

    /** Bind address (daemon default: loopback only). */
    std::string bindAddress = "127.0.0.1";

    /** Request line + headers ceiling (431 above). */
    std::size_t maxHeaderBytes = 64 * 1024;

    /** Body ceiling (413 above; the body is never read in). */
    std::size_t maxBodyBytes = 64ull << 20;

    /** Concurrent connection ceiling: connections accepted past this
     * get an immediate 503 with Retry-After and are closed. This is
     * the outermost pressure valve; the service's admission layer
     * applies the real per-tenant policy underneath it. */
    unsigned maxConnections = 64;

    /** Per-socket receive timeout: a connection that stalls this
     * long mid-request is closed. */
    unsigned recvTimeoutSec = 30;

    /** Per-socket send timeout: a peer that stops reading for this
     * long breaks the connection (sticky write error) instead of
     * blocking the handler thread indefinitely — without it a
     * stalled client of a chunked response would hold its campaign
     * mutex and admission slot forever and drain() could never
     * finish. */
    unsigned sendTimeoutSec = 30;
};

/**
 * The accept-loop server; see the file comment. start() binds and
 * spawns the accept thread; beginDrain() stops accepting (in-flight
 * requests keep running); drain() additionally joins every
 * connection. The destructor drains.
 */
class HttpServer
{
  public:
    explicit HttpServer(HttpHandler handler,
                        HttpServerOptions options = {});
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Bind + listen + start accepting; false (with error) on bind
     * failure. Idempotent once started. */
    bool start(std::string *error = nullptr);

    /** The bound port (the kernel's pick when options.port was 0). */
    std::uint16_t port() const;

    /** Stop accepting new connections; returns immediately. */
    void beginDrain();

    /** beginDrain() + wait for every in-flight connection to finish
     * and join all threads. Safe to call twice. */
    void drain();

    bool draining() const;

    /** Connections currently being served. */
    unsigned activeConnections() const;

    /** Total requests fully parsed and dispatched to the handler. */
    std::uint64_t requestsHandled() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

// ------------------------------------------------------------------
// Minimal blocking client (tests, CI fallback, lfm_served --client)
// ------------------------------------------------------------------

/** One client-side response; chunked bodies come back de-chunked and
 * any chunked trailers are appended to `headers` (lower-cased like
 * every other header). */
struct ClientResponse
{
    bool ok = false;     ///< transport + parse succeeded
    std::string error;   ///< why not, when !ok
    int status = 0;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Header value by lower-case name; nullptr when absent. */
    const std::string *header(const std::string &nameLower) const;
};

/**
 * Perform one blocking HTTP/1.1 request against 127.0.0.1:port.
 * Sends Content-Length framing, reads either framing back.
 */
ClientResponse
httpRequest(std::uint16_t port, const std::string &method,
            const std::string &target, const std::string &body = {},
            const std::vector<std::pair<std::string, std::string>>
                &headers = {},
            unsigned timeoutSec = 120);

} // namespace lfm::serve

#endif // LFM_SERVE_HTTP_HH
