/**
 * @file
 * Plain-text table rendering for benches and examples: fixed-width
 * ASCII (the default), Markdown, and CSV.
 */

#ifndef LFM_REPORT_TABLE_HH
#define LFM_REPORT_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace lfm::report
{

/** Column alignment. */
enum class Align
{
    Left,
    Right,
};

/**
 * A simple rows-of-strings table with a title and column headers.
 */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Define the columns; must be called before addRow. */
    void setColumns(std::vector<std::string> headers,
                    std::vector<Align> aligns = {});

    /** Append one row; must match the column count. */
    void addRow(std::vector<std::string> cells);

    /** Append a visual separator row (ASCII rendering only). */
    void addSeparator();

    /// @name Cell helpers.
    /// @{
    static std::string cell(std::int64_t v);
    static std::string cell(std::size_t v);
    static std::string cell(int v);
    static std::string cell(double v, int decimals = 1);
    /// @}

    /** Render as an ASCII box table. */
    std::string ascii() const;

    /** Render as GitHub-flavoured Markdown. */
    std::string markdown() const;

    /** Render as CSV (RFC-4180-ish quoting). */
    std::string csv() const;

    const std::string &title() const { return title_; }
    std::size_t rowCount() const;

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<Align> aligns_;
    /** Separator rows are encoded as empty vectors. */
    std::vector<std::vector<std::string>> rows_;
};

} // namespace lfm::report

#endif // LFM_REPORT_TABLE_HH
