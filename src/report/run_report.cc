#include "report/run_report.hh"

#include <chrono>
#include <ctime>
#include <utility>

#include "detect/batch.hh"
#include "support/metrics.hh"

namespace lfm::report
{

namespace
{

std::uint64_t
wallNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::int64_t
cpuNowNs()
{
    // Process CPU time: sums over all threads, so a stage that keeps
    // N workers busy shows ~N x its wall time here.
    return static_cast<std::int64_t>(
        static_cast<double>(std::clock()) * 1e9 / CLOCKS_PER_SEC);
}

} // namespace

RunReport::RunReport(std::string campaign)
    : campaign_(std::move(campaign))
{
}

void
RunReport::note(const std::string &key, support::Json value)
{
    for (auto &kv : notes_) {
        if (kv.first == key) {
            kv.second = std::move(value);
            return;
        }
    }
    notes_.emplace_back(key, std::move(value));
}

void
RunReport::setSeeds(std::uint64_t firstSeed, std::size_t count)
{
    firstSeed_ = firstSeed;
    seedCount_ = count;
    hasSeeds_ = true;
}

void
RunReport::addTracesAnalyzed(std::size_t n)
{
    tracesAnalyzed_ += n;
}

void
RunReport::addFindings(const std::string &detector, std::size_t n)
{
    findingsByDetector_[detector] += n;
}

void
RunReport::addStage(const std::string &name, double wallSeconds,
                    double cpuSeconds)
{
    stages_.push_back({name, wallSeconds, cpuSeconds});
}

void
RunReport::setFindingsOutputs(const std::string &jsonPath,
                              const std::string &sarifPath)
{
    findingsJsonPath_ = jsonPath;
    findingsSarifPath_ = sarifPath;
    hasFindingsOutputs_ = true;
}

void
RunReport::recordPoolStats(const support::WorkStealingPool::Stats &s)
{
    pool_.executed += s.executed;
    pool_.stolen += s.stolen;
    pool_.parks += s.parks;
    pool_.drained += s.drained;
    hasPoolStats_ = true;
}

void
RunReport::setOutcome(support::RunOutcome outcome)
{
    outcome_ = support::worseOutcome(outcome_, outcome);
    hasFailsafe_ = true;
}

void
RunReport::addQuarantined(std::size_t n)
{
    quarantined_ += n;
    hasFailsafe_ = hasFailsafe_ || n != 0;
}

void
RunReport::addSkipped(std::size_t n)
{
    skipped_ += n;
    hasFailsafe_ = hasFailsafe_ || n != 0;
}

void
RunReport::addTruncated(std::size_t n)
{
    truncated_ += n;
    hasFailsafe_ = hasFailsafe_ || n != 0;
}

void
RunReport::addRetries(std::size_t n)
{
    retries_ += n;
    hasFailsafe_ = hasFailsafe_ || n != 0;
}

void
RunReport::addWatchdogFires(std::size_t n)
{
    watchdogFires_ += n;
    hasFailsafe_ = hasFailsafe_ || n != 0;
}

void
RunReport::setFaultPlan(support::Json plan)
{
    faultPlan_ = std::move(plan);
    hasFaultPlan_ = true;
    hasFailsafe_ = true;
}

void
RunReport::addCrashes(std::size_t n)
{
    crashes_ += n;
    hasSandbox_ = hasSandbox_ || n != 0;
}

void
RunReport::addWorkerRestarts(std::size_t n)
{
    workerRestarts_ += n;
    hasSandbox_ = hasSandbox_ || n != 0;
}

void
RunReport::addBenchedWorkers(std::size_t n)
{
    benchedWorkers_ += n;
    hasSandbox_ = hasSandbox_ || n != 0;
}

void
RunReport::addResumed(std::size_t n)
{
    resumed_ += n;
    hasSandbox_ = hasSandbox_ || n != 0;
}

void
RunReport::setShards(unsigned shards)
{
    shards_ = shards;
    hasSharded_ = true;
}

void
RunReport::addShardRetries(std::size_t n)
{
    shardRetries_ += n;
    hasSharded_ = hasSharded_ || n != 0;
}

void
RunReport::addBenchedShards(std::size_t n)
{
    benchedShards_ += n;
    hasSharded_ = hasSharded_ || n != 0;
}

void
RunReport::addStragglers(std::size_t n)
{
    stragglers_ += n;
    hasSharded_ = hasSharded_ || n != 0;
}

void
RunReport::addHarvested(std::size_t n)
{
    harvested_ += n;
    hasSharded_ = hasSharded_ || n != 0;
}

RunReport::Stage::Stage(RunReport &report, std::string name)
    : report_(&report), name_(std::move(name)),
      wallStartNs_(wallNowNs()), cpuStartNs_(cpuNowNs())
{
}

RunReport::Stage::Stage(Stage &&other) noexcept
    : report_(other.report_), name_(std::move(other.name_)),
      wallStartNs_(other.wallStartNs_), cpuStartNs_(other.cpuStartNs_)
{
    other.report_ = nullptr;
}

RunReport::Stage::~Stage()
{
    if (!report_)
        return;
    const double wall =
        static_cast<double>(wallNowNs() - wallStartNs_) / 1e9;
    const double cpu =
        static_cast<double>(cpuNowNs() - cpuStartNs_) / 1e9;
    report_->addStage(name_, wall, cpu);
}

support::Json
RunReport::toJson() const
{
    support::Json doc;
    doc.set("campaign", campaign_);
    for (const auto &[key, value] : notes_)
        doc.set(key, value);

    if (hasSeeds_) {
        support::Json seeds;
        seeds.set("first", firstSeed_).set("count", seedCount_);
        doc.set("seeds", std::move(seeds));
    }

    doc.set("traces_analyzed", tracesAnalyzed_);

    support::Json findings;
    for (const auto &[detector, count] : findingsByDetector_)
        findings.set(detector, count);
    doc.set("findings_by_detector", std::move(findings));

    support::Json stages = support::Json::array();
    for (const auto &stage : stages_) {
        support::Json row;
        row.set("name", stage.name)
            .set("wall_ms", stage.wallSeconds * 1e3)
            .set("cpu_ms", stage.cpuSeconds * 1e3);
        stages.push(std::move(row));
    }
    doc.set("stages", std::move(stages));

    if (hasFindingsOutputs_) {
        support::Json outputs;
        if (!findingsJsonPath_.empty())
            outputs.set("json", findingsJsonPath_);
        if (!findingsSarifPath_.empty())
            outputs.set("sarif", findingsSarifPath_);
        doc.set("findings_outputs", std::move(outputs));
    }

    if (hasPoolStats_) {
        support::Json pool;
        pool.set("executed", pool_.executed)
            .set("stolen", pool_.stolen)
            .set("parks", pool_.parks)
            .set("drained", pool_.drained);
        doc.set("pool", std::move(pool));
    }

    if (hasFailsafe_) {
        support::Json failsafe;
        failsafe.set("outcome", support::outcomeName(outcome_))
            .set("quarantined", quarantined_)
            .set("skipped", skipped_)
            .set("truncated", truncated_)
            .set("retries", retries_)
            .set("watchdog_fires", watchdogFires_);
        if (hasFaultPlan_)
            failsafe.set("fault_plan", faultPlan_);
        doc.set("failsafe", std::move(failsafe));
    }

    if (hasSandbox_) {
        support::Json sandbox;
        sandbox.set("crashes", crashes_)
            .set("worker_restarts", workerRestarts_)
            .set("benched_workers", benchedWorkers_)
            .set("resumed", resumed_);
        doc.set("sandbox", std::move(sandbox));
    }

    if (hasSharded_) {
        support::Json sharded;
        sharded.set("shards", static_cast<std::size_t>(shards_))
            .set("shard_retries", shardRetries_)
            .set("benched_shards", benchedShards_)
            .set("stragglers_cancelled", stragglers_)
            .set("harvested_records", harvested_);
        doc.set("sharded", std::move(sharded));
    }

    doc.set("metrics",
            support::metrics::Registry::instance().snapshotJson());
    return doc;
}

bool
RunReport::writeTo(const std::string &path) const
{
    return support::writeJsonFile(path, toJson());
}

void
recordTraceReports(RunReport &report,
                   const std::vector<detect::TraceReport> &reports)
{
    std::size_t analyzed = 0;
    std::size_t quarantined = 0;
    std::size_t skipped = 0;
    std::size_t crashed = 0;
    for (const auto &tr : reports) {
        switch (tr.status) {
        case detect::TraceStatus::Analyzed:
            ++analyzed;
            for (const auto &finding : tr.findings)
                report.addFindings(finding.detector, 1);
            break;
        case detect::TraceStatus::Quarantined:
            ++quarantined;
            break;
        case detect::TraceStatus::Skipped:
            ++skipped;
            break;
        case detect::TraceStatus::Crashed:
            ++crashed;
            break;
        }
    }
    report.addTracesAnalyzed(analyzed);
    report.addQuarantined(quarantined);
    report.addSkipped(skipped);
    report.addCrashes(crashed);
    if (crashed > 0)
        report.setOutcome(support::RunOutcome::Crashed);
}

std::string
runReportPath(const std::string &campaign)
{
    return "RUN_" + campaign + ".json";
}

} // namespace lfm::report
