/**
 * @file
 * Paper-vs-reproduced comparison rendering: the uniform footer every
 * table bench prints, showing the published value, the database
 * value, the empirical (kernel) value where one exists, and a match
 * mark.
 */

#ifndef LFM_REPORT_COMPARE_HH
#define LFM_REPORT_COMPARE_HH

#include <optional>
#include <string>
#include <vector>

#include "study/findings.hh"

namespace lfm::report
{

/** One paper-vs-reproduced comparison line. */
struct CompareRow
{
    std::string label;
    std::string paper;
    std::string reproduced;
    std::optional<std::string> empirical;
    bool match = false;
    bool approximate = false;
};

/** Build a row from a finding. */
CompareRow fromFinding(const study::Finding &finding);

/** Render rows as an aligned block with ✓ / ✗ marks. */
std::string renderComparison(const std::vector<CompareRow> &rows);

/** Render a whole findings list (convenience). */
std::string renderFindings(const std::vector<study::Finding> &findings);

} // namespace lfm::report

#endif // LFM_REPORT_COMPARE_HH
