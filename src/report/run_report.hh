/**
 * @file
 * Machine-readable campaign run reports.
 *
 * A RunReport is the one-JSON-document-per-campaign summary the
 * observability layer feeds: what was explored (seed range, traces
 * analyzed), what was found (findings tallied per detector), how long
 * each stage took (wall and CPU time via RAII stage scopes), how the
 * work-stealing pool behaved (steal/idle statistics), plus a full
 * merge-on-read snapshot of the metrics registry. Every bench writes
 * one next to its BENCH_*.json so a campaign can be watched, compared
 * and trusted after the fact — the study's own thesis applied to our
 * infrastructure: diagnosis needs machine-readable execution
 * evidence.
 */

#ifndef LFM_REPORT_RUN_REPORT_HH
#define LFM_REPORT_RUN_REPORT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/failsafe.hh"
#include "support/json.hh"
#include "support/workpool.hh"

namespace lfm::detect
{
struct TraceReport;
}

namespace lfm::report
{

/** One campaign's run evidence; see the file comment. */
class RunReport
{
  public:
    explicit RunReport(std::string campaign);

    const std::string &campaign() const { return campaign_; }

    /** Free-form metadata ("workers": 8, "corpus": "kernels", ...). */
    void note(const std::string &key, support::Json value);

    /** The stress/exploration seed range the campaign covered. */
    void setSeeds(std::uint64_t firstSeed, std::size_t count);

    /** Count traces that went through detection. */
    void addTracesAnalyzed(std::size_t n);

    /** Tally findings under the producing detector's name. */
    void addFindings(const std::string &detector, std::size_t n);

    /** Record one completed stage's timings directly. */
    void addStage(const std::string &name, double wallSeconds,
                  double cpuSeconds);

    /**
     * Record where the campaign wrote its machine-readable findings
     * (the lfm-native JSON document and/or the SARIF 2.1.0 one).
     * Emitted as a "findings_outputs" object so downstream tooling
     * can discover the interchange files from the run report alone;
     * pass an empty string for a format the campaign did not write.
     */
    void setFindingsOutputs(const std::string &jsonPath,
                            const std::string &sarifPath);

    /** Fold one pool run's steal/idle statistics into the report
     * (multiple runs accumulate). */
    void recordPoolStats(const support::WorkStealingPool::Stats &s);

    /// @name Failsafe evidence (emitted as a "failsafe" object once
    /// any of these is touched; absent from classic reports).
    /// @{

    /** Merge a campaign outcome (worse-of across calls). */
    void setOutcome(support::RunOutcome outcome);

    /** Count traces the failsafe layer quarantined. */
    void addQuarantined(std::size_t n);

    /** Count traces cancellation skipped. */
    void addSkipped(std::size_t n);

    /** Count executions truncated by a step ceiling. */
    void addTruncated(std::size_t n);

    /** Count detector retry attempts. */
    void addRetries(std::size_t n);

    /** Count watchdog fires. */
    void addWatchdogFires(std::size_t n);

    /** Record the active fault-injection plan (FaultPlan::toJson()). */
    void setFaultPlan(support::Json plan);

    /// @}

    /// @name Sandbox / resume evidence (emitted as a "sandbox" object
    /// once any of these is touched; absent from classic reports).
    /// @{

    /** Count executions/traces lost to a contained worker crash. */
    void addCrashes(std::size_t n);

    /** Count sandbox worker subprocesses re-forked after a crash. */
    void addWorkerRestarts(std::size_t n);

    /** Count worker slots permanently benched. */
    void addBenchedWorkers(std::size_t n);

    /** Count seeds restored from a journal instead of re-executed. */
    void addResumed(std::size_t n);

    /// @}

    /// @name Sharded-campaign evidence (emitted as a "sharded" object
    /// once setShards() is called; absent otherwise). The merged
    /// study numbers are invariant to every one of these counters —
    /// they are the robustness ledger, not results.
    /// @{

    /** Record the shard count; switches the "sharded" object on. */
    void setShards(unsigned shards);

    /** Count shard respawns after a failure. */
    void addShardRetries(std::size_t n);

    /** Count shard slots permanently benched. */
    void addBenchedShards(std::size_t n);

    /** Count stalled shards SIGKILLed past the straggler deadline. */
    void addStragglers(std::size_t n);

    /** Count journaled-but-unreported records harvested from dead
     * shards' journals. */
    void addHarvested(std::size_t n);

    /// @}

    /**
     * RAII stage timer: measures wall time (steady clock) and CPU
     * time (process clock) from construction to destruction and adds
     * the stage to the report. Keep one per pipeline stage.
     */
    class Stage
    {
      public:
        Stage(RunReport &report, std::string name);
        ~Stage();

        Stage(Stage &&other) noexcept;
        Stage(const Stage &) = delete;
        Stage &operator=(const Stage &) = delete;
        Stage &operator=(Stage &&) = delete;

      private:
        RunReport *report_;
        std::string name_;
        std::uint64_t wallStartNs_;
        std::int64_t cpuStartNs_;
    };

    /** Start a named stage scope. */
    Stage stage(std::string name) { return Stage(*this, std::move(name)); }

    /**
     * The full document: campaign, seeds, traces analyzed, findings
     * by detector, stages (wall/cpu ms), accumulated pool stats, and
     * a snapshot of the metrics registry taken at call time.
     */
    support::Json toJson() const;

    /** Write toJson() to path; false on I/O failure. */
    bool writeTo(const std::string &path) const;

  private:
    struct StageRecord
    {
        std::string name;
        double wallSeconds;
        double cpuSeconds;
    };

    std::string campaign_;
    std::vector<std::pair<std::string, support::Json>> notes_;
    std::uint64_t firstSeed_ = 0;
    std::size_t seedCount_ = 0;
    bool hasSeeds_ = false;
    std::size_t tracesAnalyzed_ = 0;
    std::map<std::string, std::size_t> findingsByDetector_;
    std::vector<StageRecord> stages_;
    support::WorkStealingPool::Stats pool_;
    bool hasPoolStats_ = false;

    std::string findingsJsonPath_;
    std::string findingsSarifPath_;
    bool hasFindingsOutputs_ = false;

    support::RunOutcome outcome_ = support::RunOutcome::Completed;
    std::size_t quarantined_ = 0;
    std::size_t skipped_ = 0;
    std::size_t truncated_ = 0;
    std::size_t retries_ = 0;
    std::size_t watchdogFires_ = 0;
    support::Json faultPlan_;
    bool hasFaultPlan_ = false;
    bool hasFailsafe_ = false;

    std::size_t crashes_ = 0;
    std::size_t workerRestarts_ = 0;
    std::size_t benchedWorkers_ = 0;
    std::size_t resumed_ = 0;
    bool hasSandbox_ = false;

    unsigned shards_ = 0;
    std::size_t shardRetries_ = 0;
    std::size_t benchedShards_ = 0;
    std::size_t stragglers_ = 0;
    std::size_t harvested_ = 0;
    bool hasSharded_ = false;
};

/** Fold a batch/stream result into the report: Analyzed traces count
 * toward traces_analyzed with every finding tallied under its
 * detector; Quarantined / Skipped traces feed the failsafe section. */
void recordTraceReports(RunReport &report,
                        const std::vector<detect::TraceReport> &reports);

/** Canonical report path for a campaign: "RUN_<campaign>.json". */
std::string runReportPath(const std::string &campaign);

} // namespace lfm::report

#endif // LFM_REPORT_RUN_REPORT_HH
