#include "report/compare.hh"

#include <sstream>

#include "support/stats.hh"
#include "support/string_utils.hh"

namespace lfm::report
{

CompareRow
fromFinding(const study::Finding &finding)
{
    CompareRow row;
    row.label = finding.id + ": " + finding.statement;
    row.paper = support::formatRatio(
        static_cast<std::uint64_t>(finding.paperNumer),
        static_cast<std::uint64_t>(finding.paperDenom));
    row.reproduced = support::formatRatio(
        static_cast<std::uint64_t>(finding.computedNumer),
        static_cast<std::uint64_t>(finding.computedDenom));
    row.match = finding.matches();
    row.approximate = finding.approximate;
    return row;
}

std::string
renderComparison(const std::vector<CompareRow> &rows)
{
    std::size_t paperW = 5;
    std::size_t reproW = 10;
    for (const auto &row : rows) {
        paperW = std::max(paperW, row.paper.size());
        reproW = std::max(reproW, row.reproduced.size());
    }

    std::ostringstream os;
    for (const auto &row : rows) {
        os << "  [" << (row.match ? "OK" : "!!") << "] paper "
           << support::padLeft(row.paper, paperW) << "  reproduced "
           << support::padLeft(row.reproduced, reproW);
        if (row.empirical)
            os << "  empirical " << *row.empirical;
        if (row.approximate)
            os << "  (approx.)";
        os << "\n       " << row.label << "\n";
    }
    return os.str();
}

std::string
renderFindings(const std::vector<study::Finding> &findings)
{
    std::vector<CompareRow> rows;
    rows.reserve(findings.size());
    for (const auto &f : findings)
        rows.push_back(fromFinding(f));
    return renderComparison(rows);
}

} // namespace lfm::report
