#include "report/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/logging.hh"
#include "support/string_utils.hh"

namespace lfm::report
{

void
Table::setColumns(std::vector<std::string> headers,
                  std::vector<Align> aligns)
{
    headers_ = std::move(headers);
    aligns_ = std::move(aligns);
    if (aligns_.empty()) {
        // Default: first column left, the rest right (label + data).
        aligns_.assign(headers_.size(), Align::Right);
        if (!aligns_.empty())
            aligns_[0] = Align::Left;
    }
    LFM_ASSERT(aligns_.size() == headers_.size(),
               "alignment count must match header count");
}

void
Table::addRow(std::vector<std::string> cells)
{
    LFM_ASSERT(cells.size() == headers_.size(),
               "row width must match header count");
    rows_.push_back(std::move(cells));
}

void
Table::addSeparator()
{
    rows_.emplace_back();
}

std::string
Table::cell(std::int64_t v)
{
    return std::to_string(v);
}

std::string
Table::cell(std::size_t v)
{
    return std::to_string(v);
}

std::string
Table::cell(int v)
{
    return std::to_string(v);
}

std::string
Table::cell(double v, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::size_t
Table::rowCount() const
{
    std::size_t n = 0;
    for (const auto &row : rows_) {
        if (!row.empty())
            ++n;
    }
    return n;
}

std::string
Table::ascii() const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto line = [&widths]() {
        std::string out = "+";
        for (std::size_t w : widths)
            out += std::string(w + 2, '-') + "+";
        return out + "\n";
    };
    auto render = [&](const std::vector<std::string> &cells) {
        std::string out = "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            const std::string &text = cells[c];
            out += " ";
            out += aligns_[c] == Align::Left
                       ? support::padRight(text, widths[c])
                       : support::padLeft(text, widths[c]);
            out += " |";
        }
        return out + "\n";
    };

    std::ostringstream os;
    os << title_ << "\n" << line() << render(headers_) << line();
    for (const auto &row : rows_) {
        if (row.empty())
            os << line();
        else
            os << render(row);
    }
    os << line();
    return os.str();
}

std::string
Table::markdown() const
{
    std::ostringstream os;
    os << "### " << title_ << "\n\n|";
    for (const auto &h : headers_)
        os << " " << h << " |";
    os << "\n|";
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << (aligns_[c] == Align::Left ? " :--- |" : " ---: |");
    os << "\n";
    for (const auto &row : rows_) {
        if (row.empty())
            continue;
        os << "|";
        for (const auto &cellText : row)
            os << " " << cellText << " |";
        os << "\n";
    }
    return os.str();
}

std::string
Table::csv() const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char c : s) {
            if (c == '"')
                out += '"';
            out += c;
        }
        return out + "\"";
    };
    std::ostringstream os;
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << (c ? "," : "") << quote(headers_[c]);
    os << "\n";
    for (const auto &row : rows_) {
        if (row.empty())
            continue;
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << quote(row[c]);
        os << "\n";
    }
    return os.str();
}

} // namespace lfm::report
