#!/usr/bin/env python3
"""Compare two perf-bench JSON documents (BENCH_*.json) metric by metric.

Usage:
    scripts/bench_compare.py OLD.json NEW.json [--noise-pct P]
                             [--fail-on-regression] [--ignore SUBSTR]...

Every numeric leaf in the two documents is matched by its dotted path
(array elements are keyed by their "name"/"workers" field when present,
so reordering a trace mix does not misalign the diff) and reported with
its absolute and relative delta.  Metrics are classified by suffix:

  lower-is-better   *_ms, *_secs, *_pct   (timings, overheads)
  higher-is-better  *_per_sec, *speedup*  (throughput, ratios)
  gate              boolean leaves        (equivalence / honest gates)

A relative change within the noise gate (default 10%) is reported as
noise, not as a regression — single-run wall-clock timings on a shared
host jitter far more than any real effect worth acting on.

Exit code policy mirrors the benches themselves: boolean gate
regressions (true in OLD, false in NEW) always fail; timing deltas are
advisory unless --fail-on-regression is given.  Metrics present in only
one document are listed but never fail the comparison.  --ignore SUBSTR
(repeatable) drops any metric whose dotted path contains SUBSTR from
gating entirely — for gates that only hold under the full-length run,
e.g. the 2% instrumentation-noise bound, when diffing a smoke run
against a committed full-run baseline.
"""

import argparse
import json
import sys

LOWER_IS_BETTER = ("_ms", "_secs", "_pct")
HIGHER_IS_BETTER = ("_per_sec",)
HIGHER_SUBSTRINGS = ("speedup",)


def flatten(node, prefix=""):
    """Yield (dotted_path, leaf) for every scalar leaf in the document."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from flatten(value, f"{prefix}.{key}" if prefix else key)
    elif isinstance(node, list):
        for index, item in enumerate(node):
            label = str(index)
            if isinstance(item, dict):
                for id_key in ("name", "workers"):
                    if id_key in item:
                        label = f"{id_key}={item[id_key]}"
                        break
            yield from flatten(item, f"{prefix}[{label}]")
    else:
        yield prefix, node


def direction(path):
    """-1: lower is better, +1: higher is better, 0: informational."""
    leaf = path.rsplit(".", 1)[-1]
    if leaf.endswith(LOWER_IS_BETTER):
        return -1
    if leaf.endswith(HIGHER_IS_BETTER):
        return 1
    if any(s in leaf for s in HIGHER_SUBSTRINGS):
        return 1
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json documents with a noise gate.")
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument("--noise-pct", type=float, default=10.0,
                        help="relative changes within this %% are noise "
                             "(default: %(default)s)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="also exit non-zero on beyond-noise timing "
                             "regressions (default: gates only)")
    parser.add_argument("--ignore", action="append", default=[],
                        metavar="SUBSTR",
                        help="exclude metrics whose path contains "
                             "SUBSTR from gating (repeatable)")
    args = parser.parse_args()

    with open(args.old) as fh:
        old = dict(flatten(json.load(fh)))
    with open(args.new) as fh:
        new = dict(flatten(json.load(fh)))

    gate_regressions = []
    timing_regressions = []
    improvements = []
    rows = []

    for path in sorted(set(old) & set(new)):
        a, b = old[path], new[path]
        if any(s in path for s in args.ignore):
            if a != b:
                rows.append((path, str(a), str(b), "", "ignored"))
            continue
        if isinstance(a, bool) or isinstance(b, bool):
            if a is True and b is not True:
                gate_regressions.append(path)
                rows.append((path, str(a), str(b), "", "GATE REGRESSED"))
            elif a != b:
                rows.append((path, str(a), str(b), "", "changed"))
            continue
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            if a != b:
                rows.append((path, str(a), str(b), "", "changed"))
            continue
        if a == b:
            continue
        rel = (b - a) / abs(a) * 100.0 if a else float("inf")
        sign = direction(path)
        if sign == 0:
            verdict = "info"
        elif abs(rel) <= args.noise_pct:
            verdict = "within noise"
        elif (rel > 0) == (sign > 0):
            verdict = "improved"
            improvements.append(path)
        else:
            verdict = "REGRESSED"
            timing_regressions.append(path)
        rows.append((path, f"{a:g}", f"{b:g}", f"{rel:+.1f}%", verdict))

    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))

    if not rows and not only_old and not only_new:
        print(f"identical: {args.old} == {args.new} "
              f"({len(old)} metrics)")
        return 0

    if rows:
        widths = [max(len(r[i]) for r in rows) for i in range(4)]
        print(f"{'metric':<{widths[0]}}  {'old':>{widths[1]}}  "
              f"{'new':>{widths[2]}}  {'delta':>{widths[3]}}  verdict")
        for path, a, b, rel, verdict in rows:
            print(f"{path:<{widths[0]}}  {a:>{widths[1]}}  "
                  f"{b:>{widths[2]}}  {rel:>{widths[3]}}  {verdict}")
    for path in only_old:
        print(f"only in {args.old}: {path}")
    for path in only_new:
        print(f"only in {args.new}: {path}")

    print(f"\nsummary: {len(gate_regressions)} gate regression(s), "
          f"{len(timing_regressions)} beyond-noise timing regression(s), "
          f"{len(improvements)} improvement(s), "
          f"noise gate ±{args.noise_pct:g}%")

    if gate_regressions:
        return 1
    if args.fail_on_regression and timing_regressions:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
