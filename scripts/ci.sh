#!/usr/bin/env bash
# CI entry point: configure, build, run the full test suite, then
# re-check the genuinely multithreaded pieces (executor handoff,
# parallel engine) under ThreadSanitizer.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== configure + build (RelWithDebInfo) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$JOBS"

echo "== ctest =="
ctest --test-dir build --output-on-failure

echo "== bench smoke (equivalence-only perf benches) =="
ctest --test-dir build -L bench-smoke --output-on-failure

echo "== TSan build (sim + explore + parallel + pool/stream tests) =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLFM_TSAN=ON
cmake --build build-tsan -j "$JOBS" \
    --target test_sim test_parallel test_support test_pipeline \
    test_failsafe

echo "== TSan: executor + parallel engine + pool + detection =="
./build-tsan/tests/test_sim
./build-tsan/tests/test_parallel
./build-tsan/tests/test_support
./build-tsan/tests/test_pipeline
./build-tsan/tests/test_failsafe

echo "== crash-handler lint (async-signal-safety) =="
# Everything in crash_handler.cc can run inside a signal handler, so
# the whole TU is held to the async-signal-safe subset: strip comments
# (-fpreprocessed -dD -E -P) and grep what remains for banned calls.
# The include lines are not expanded, so the lint covers exactly the
# code this TU adds.
CC_BIN="${CC:-cc}"
command -v "$CC_BIN" >/dev/null || CC_BIN=gcc
BANNED='malloc|calloc|realloc|(^|[^_a-zA-Z])free[[:space:]]*\(|printf|iostream|cout|cerr|std::string|(^|[^_a-zA-Z])new[[:space:]]|(^|[^_a-zA-Z])delete[[:space:]]|throw|mutex|fopen|fwrite|syslog|(^|[^_a-zA-Z])exit[[:space:]]*\('
if "$CC_BIN" -fpreprocessed -dD -E -P src/support/crash_handler.cc \
        | grep -nE "$BANNED"; then
    echo "FAIL: crash_handler.cc calls something that is not"
    echo "      async-signal-safe (matches above)"
    exit 1
fi

echo "== ASan+UBSan build (sandbox: forked crashing children) =="
# TSan cannot supervise children that die on purpose; the sandbox
# layer gets its memory-safety pass under ASan+UBSan instead.
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLFM_ASAN=ON
cmake --build build-asan -j "$JOBS" \
    --target test_sandbox crash_recovery_demo

echo "== ASan: crash containment + kill/resume demo =="
# handle_segv=0/handle_abort=0: the child's own crash reporter — not
# ASan's handler — must observe the signal; leak checking is off
# because sandbox children exit by dying; the suppressions quiet
# UBSan about the *deliberate* null stores being contained.
ASAN_OPTS="handle_segv=0:handle_abort=0:detect_leaks=0"
UBSAN_OPTS="suppressions=$PWD/scripts/ubsan.supp"
ASAN_OPTIONS="$ASAN_OPTS" UBSAN_OPTIONS="$UBSAN_OPTS" \
    ./build-asan/tests/test_sandbox
(cd build-asan/examples &&
    ASAN_OPTIONS="$ASAN_OPTS" UBSAN_OPTIONS="$UBSAN_OPTS" \
    ./crash_recovery_demo)

echo "CI OK"
