#!/usr/bin/env bash
# CI entry point: configure, build, run the full test suite, then
# re-check the genuinely multithreaded pieces (executor handoff,
# parallel engine) under ThreadSanitizer.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== configure + build (RelWithDebInfo) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$JOBS"

echo "== ctest =="
ctest --test-dir build --output-on-failure

echo "== bench smoke (equivalence-only perf benches) =="
ctest --test-dir build -L bench-smoke --output-on-failure

echo "== TSan build (sim + explore + parallel + pool/stream tests) =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLFM_TSAN=ON
cmake --build build-tsan -j "$JOBS" \
    --target test_sim test_parallel test_support test_pipeline \
    test_failsafe

echo "== TSan: executor + parallel engine + pool + detection =="
./build-tsan/tests/test_sim
./build-tsan/tests/test_parallel
./build-tsan/tests/test_support
./build-tsan/tests/test_pipeline
./build-tsan/tests/test_failsafe

echo "CI OK"
