#!/usr/bin/env bash
# CI entry point: configure, build, run the full test suite, then
# re-check the genuinely multithreaded pieces (executor handoff,
# parallel engine) under ThreadSanitizer.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== configure + build (RelWithDebInfo) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$JOBS"

echo "== ctest =="
ctest --test-dir build --output-on-failure

echo "== bench smoke (equivalence-only perf benches) =="
ctest --test-dir build -L bench-smoke --output-on-failure

echo "== bench-perf (detector hot path: equivalence + honest gates) =="
# Runs the detector perf bench in smoke mode from a scratch directory.
# Exit 0 asserts every equivalence gate (fused==separate, SoA context
# == reference build, scratch reuse == fresh, batch worker-count
# invariance, instrumentation on/off identity) plus the off-overhead
# gate — which in smoke mode is the explicitly reported absolute
# epsilon, never a silently passed 2% claim.
BENCH_PERF_DIR="build/bench-perf-ci"
mkdir -p "$BENCH_PERF_DIR"
(cd "$BENCH_PERF_DIR" && ../bench/perf_detectors --smoke)

echo "== bench-perf: gate assertions from BENCH_detect.json =="
# Re-assert the gates from the emitted document itself, so a bench
# that mis-reports its own exit code still fails CI: every
# equivalence flag true, the overhead gate honest (gate_ok with its
# declared gate_mode), and the fused-vs-separate 3x speedup — an
# algorithmic ratio (quadratic legacy vs shared-context pass), so it
# holds on any host the smoke battery runs on.
BENCH_JSON="$BENCH_PERF_DIR/BENCH_detect.json"
test -f "$BENCH_JSON" || { echo "FAIL: $BENCH_JSON missing"; exit 1; }
if command -v python3 >/dev/null; then
    python3 - "$BENCH_JSON" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for key, ok in doc["equivalence"].items():
    assert ok is True, f"equivalence.{key} is {ok}"
instr = doc["instrumentation_overhead"]
assert instr["gate_ok"] is True, "instrumentation gate failed"
assert instr["gate_mode"] in ("strict-2pct", "smoke-epsilon")
assert doc["fusion"]["meets_3x_gate"] is True, \
    f"fused speedup {doc['fusion']['fused_speedup_vs_separate_legacy']:.2f}x < 3x"
print("bench gates ok: fused %.2fx, off-overhead %.2f%% (%s)" % (
    doc["fusion"]["fused_speedup_vs_separate_legacy"],
    instr["off_overhead_pct"], instr["gate_mode"]))
PYEOF
else
    # Note: within_noise_2pct may honestly be false in smoke mode
    # (that is the point of the fix); only the gates are asserted.
    for key in '"meets_3x_gate": true' '"gate_ok": true' \
               '"fused_equals_separate": true' \
               '"soa_equals_reference": true' \
               '"scratch_equals_fresh": true' \
               '"batch_worker_invariant": true' \
               '"instrumentation_on_off_identical": true'; do
        grep -qF "$key" "$BENCH_JSON" || {
            echo "FAIL: BENCH_detect.json missing $key"; exit 1; }
    done
    echo "bench gates ok (grep fallback)"
fi

echo "== bench-perf: corpus ingest gates (text == binary == mmap) =="
# The corpus-ingest section of the same document: the three load
# paths (text parse, binary decode, mmap zero-copy view) must agree
# byte-for-byte — same event checksums, same round-tripped trace
# text, same pipeline findings. The 5x mmap-vs-text speedup is
# reported but, like every timing, advisory here; the equivalence
# booleans are the gates.
if command -v python3 >/dev/null; then
    python3 - "$BENCH_JSON" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
eq = doc["equivalence"]
for key in ("corpus_checksums_agree",
            "corpus_roundtrip_byte_identical",
            "corpus_findings_byte_identical"):
    assert eq[key] is True, f"equivalence.{key} is {eq[key]}"
ci = doc["corpus_ingest"]
print("corpus gates ok: %d traces, mmap %.2fx vs text "
      "(5x gate %s), binary %.2fx" % (
          ci["traces"], ci["mmap_speedup_vs_text"],
          "met" if ci["meets_5x_gate"] else "missed — advisory",
          ci["binary_speedup_vs_text"]))
PYEOF
else
    for key in '"corpus_checksums_agree": true' \
               '"corpus_roundtrip_byte_identical": true' \
               '"corpus_findings_byte_identical": true'; do
        grep -qF "$key" "$BENCH_JSON" || {
            echo "FAIL: BENCH_detect.json missing $key"; exit 1; }
    done
    echo "corpus gates ok (grep fallback)"
fi

echo "== lfm_tracepack: pack / info / unpack round trip =="
# Pack the example text traces into one LFMC corpus, inspect it, then
# unpack into a scratch directory — every unpacked trace must be
# byte-identical to its source. This exercises the exact binary path
# users hit, from the CLI down to the mmap reader.
PACK_DIR="build/tracepack-ci"
rm -rf "$PACK_DIR" && mkdir -p "$PACK_DIR"
./build/tools/lfm_tracepack pack "$PACK_DIR/examples.lfmc" \
    examples/traces/*.txt
./build/tools/lfm_tracepack info "$PACK_DIR/examples.lfmc"
./build/tools/lfm_tracepack unpack "$PACK_DIR/examples.lfmc" \
    "$PACK_DIR/unpacked"
i=0
for src in examples/traces/*.txt; do
    unpacked=$(printf "%s/unpacked/trace_%04d.txt" "$PACK_DIR" "$i")
    cmp "$src" "$unpacked" || {
        echo "FAIL: $src != $unpacked after pack/unpack"; exit 1; }
    i=$((i + 1))
done
echo "tracepack round trip ok: $i trace(s) byte-identical"

echo "== bench-trajectory: this run vs committed baseline =="
# Diff the fresh smoke BENCH_detect.json against the committed
# full-run baseline at the repo root. Timing deltas stay advisory
# (smoke reps vs full reps differ wildly); boolean gate regressions
# exit non-zero. Two gates are excluded because they are
# timing-derived and only claimed for the full-length run:
# within_noise_2pct (the 2% instrumentation bound smoke mode honestly
# replaces with an epsilon) and meets_5x_gate (mmap-vs-text ratio,
# advisory on a loaded host).
if command -v python3 >/dev/null; then
    python3 scripts/bench_compare.py BENCH_detect.json "$BENCH_JSON" \
        --ignore within_noise_2pct --ignore meets_5x_gate
else
    echo "bench-trajectory skipped (python3 unavailable)"
fi

echo "== bench-perf (parallel engine: sharded equals-classic gates) =="
# perf_parallel --smoke from a scratch directory: exit 0 asserts that
# the multi-process sharded backend reproduced the classic
# single-worker stress result exactly at shard counts {1, 2, 4}
# (equals_classic), on top of the executor hot-path sanity checks.
PAR_PERF_DIR="build/bench-parallel-ci"
rm -rf "$PAR_PERF_DIR" && mkdir -p "$PAR_PERF_DIR"
(cd "$PAR_PERF_DIR" && ../bench/perf_parallel --smoke)

echo "== bench-trajectory: perf_parallel vs committed baseline =="
# Same contract as the detector trajectory above: timing deltas are
# advisory (smoke vs full-length runs, arbitrary hosts); a regression
# in any boolean gate — equals_classic above all — exits non-zero.
if command -v python3 >/dev/null; then
    python3 scripts/bench_compare.py BENCH_perf.json \
        "$PAR_PERF_DIR/BENCH_perf.json"
else
    echo "bench-trajectory skipped (python3 unavailable)"
fi

echo "== lfm_campaign: chaos drill (SIGKILL + corrupt tail + resume) =="
# The sharded backend's end-to-end robustness contract, driven from
# the shell like an operator would: an uninterrupted single-shard
# reference run, then a 4-shard campaign that (a) has shard 0
# SIGKILLed by chaos injection after one journaled seed, (b) loses
# its supervisor to a bash-side SIGKILL mid-run, and (c) has one
# shard journal's tail corrupted on disk — and after --resume the
# canonical results and replayed findings documents must both be
# byte-identical to the reference (cmp, no normalisation).
CHAOS_DIR="build/campaign-chaos-ci"
rm -rf "$CHAOS_DIR" && mkdir -p "$CHAOS_DIR/ref" "$CHAOS_DIR/chaos"
CAMPAIGN=./build/tools/lfm_campaign
CHAOS_KERNEL=apache-25520
"$CAMPAIGN" --kernel "$CHAOS_KERNEL" --runs 400 --shards 1 \
    --state "$CHAOS_DIR/ref" --name drill \
    --results "$CHAOS_DIR/ref.json" \
    --findings "$CHAOS_DIR/ref_findings.json"
"$CAMPAIGN" --kernel "$CHAOS_KERNEL" --runs 400 --shards 4 \
    --chaos-kill 0:1 --state "$CHAOS_DIR/chaos" --name drill \
    > "$CHAOS_DIR/chaos_run1.log" 2>&1 &
CHAOS_PID=$!
# Kill the supervisor as soon as shard journals exist; if the whole
# campaign beat us to the finish line the resume below still has to
# restore every seed, so either way the gate is meaningful.
for _ in $(seq 1 200); do
    if ls "$CHAOS_DIR"/chaos/drill.shard*.lfmj >/dev/null 2>&1; then
        break
    fi
    sleep 0.01
done
kill -KILL "$CHAOS_PID" 2>/dev/null || echo "chaos run finished early"
wait "$CHAOS_PID" 2>/dev/null || true
# Corrupt one survivor's tail: 5 bytes torn off mid-record, as a
# crash during append would leave it.
CORRUPT=$(ls -S "$CHAOS_DIR"/chaos/drill.shard*.lfmj | head -n 1)
truncate -s -5 "$CORRUPT"
"$CAMPAIGN" --kernel "$CHAOS_KERNEL" --runs 400 --shards 4 \
    --chaos-kill 0:1 --resume --state "$CHAOS_DIR/chaos" --name drill \
    --results "$CHAOS_DIR/chaos.json" \
    --findings "$CHAOS_DIR/chaos_findings.json" --report
cmp "$CHAOS_DIR/ref.json" "$CHAOS_DIR/chaos.json" || {
    echo "FAIL: chaos campaign results differ from reference"; exit 1; }
cmp "$CHAOS_DIR/ref_findings.json" "$CHAOS_DIR/chaos_findings.json" || {
    echo "FAIL: chaos campaign findings differ from reference"; exit 1; }
test -f "$CHAOS_DIR/chaos/RUN_drill.json" || {
    echo "FAIL: --report did not write RUN_drill.json"; exit 1; }
echo "campaign chaos ok: kill + corrupt + resume == reference (cmp)"

echo "== lfm_import: external log ingest (determinism + detectors) =="
# Import the committed example pthread logs twice into separate LFMC
# corpora — the outputs must be byte-identical (the importer's
# replay is deterministic by construction) — then feed the imported
# corpus to the detector bench, whose --corpus gate requires the
# heap-decode and zero-copy-view batch reports to agree byte for
# byte.
IMPORT_DIR="build/import-ci"
rm -rf "$IMPORT_DIR" && mkdir -p "$IMPORT_DIR"
IMPORT_INPUTS="examples/extern_logs/racy_counter
examples/extern_logs/uaf_teardown.log
examples/extern_logs/missed_notify.log
examples/extern_logs/barrier_pipeline.log"
# missed_notify.log stalls one record by design (that IS the missed
# notify), so the full set imports as a *partial* corpus: exit 3 and
# clean:false in the --json summary — asserted, not tolerated.
IMPORT_RC=0
# shellcheck disable=SC2086
./build/tools/lfm_import --json -o "$IMPORT_DIR/pass1.lfmc" \
    $IMPORT_INPUTS > "$IMPORT_DIR/pass1.json" || IMPORT_RC=$?
test "$IMPORT_RC" -eq 3 || {
    echo "FAIL: partial import exited $IMPORT_RC, want 3"; exit 1; }
grep -qF '"clean": false' "$IMPORT_DIR/pass1.json" || {
    echo "FAIL: --json summary does not say clean:false"; exit 1; }
IMPORT_RC=0
# shellcheck disable=SC2086
./build/tools/lfm_import -o "$IMPORT_DIR/pass2.lfmc" \
    $IMPORT_INPUTS || IMPORT_RC=$?
test "$IMPORT_RC" -eq 3 || {
    echo "FAIL: second import exited $IMPORT_RC, want 3"; exit 1; }
cmp "$IMPORT_DIR/pass1.lfmc" "$IMPORT_DIR/pass2.lfmc" || {
    echo "FAIL: lfm_import output differs across two runs"; exit 1; }
# A stall-free subset is a trustworthy corpus: exit 0, clean:true.
./build/tools/lfm_import --json -o "$IMPORT_DIR/clean.lfmc" \
    examples/extern_logs/racy_counter \
    examples/extern_logs/uaf_teardown.log > "$IMPORT_DIR/clean.json"
grep -qF '"clean": true' "$IMPORT_DIR/clean.json" || {
    echo "FAIL: clean import not marked clean:true"; exit 1; }
./build/tools/lfm_tracepack info "$IMPORT_DIR/pass1.lfmc"
(cd "$IMPORT_DIR" && ../bench/perf_detectors --smoke --corpus pass1.lfmc \
    | tail -n 8)
echo "import ok: byte-identical across runs, heap==view gate passed"

echo "== lfm-serve: daemon end-to-end (stream == batch, drain, resume) =="
# Start the daemon, upload the example corpus plus a raw pthread log,
# require the streamed findings to be byte-identical to the --batch
# generator, drain it with SIGTERM (exit 0), SIGKILL a successor in
# the middle of a streaming campaign, and check that a restart over
# the same state directory resumes to byte-identical results.
SERVE_DIR="build/serve-ci"
rm -rf "$SERVE_DIR" && mkdir -p "$SERVE_DIR"
SERVED=./build/tools/lfm_served
./build/tools/lfm_tracepack pack "$SERVE_DIR/examples.lfmc" \
    examples/traces/*.txt
"$SERVED" --batch "$SERVE_DIR/examples.lfmc" > "$SERVE_DIR/batch.json"

"$SERVED" --port-file "$SERVE_DIR/port" --state-dir "$SERVE_DIR/state" \
    > "$SERVE_DIR/daemon1.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do test -s "$SERVE_DIR/port" && break; sleep 0.1; done
test -s "$SERVE_DIR/port" || {
    echo "FAIL: lfm_served never published its port"
    cat "$SERVE_DIR/daemon1.log"; exit 1; }
PORT=$(cat "$SERVE_DIR/port")

"$SERVED" --client POST "/detect?campaign=ci" \
    "$SERVE_DIR/examples.lfmc" --port "$PORT" \
    > "$SERVE_DIR/streamed.json"
cmp "$SERVE_DIR/batch.json" "$SERVE_DIR/streamed.json" || {
    echo "FAIL: streamed findings differ from --batch"; exit 1; }
"$SERVED" --client POST "/detect?campaign=ci-log" \
    examples/extern_logs/uaf_teardown.log --port "$PORT" > /dev/null

if command -v curl >/dev/null; then
    curl -fsS "http://127.0.0.1:$PORT/healthz"
    curl -fsS "http://127.0.0.1:$PORT/metrics" > /dev/null
else
    "$SERVED" --client GET /healthz --port "$PORT"
    "$SERVED" --client GET /metrics --port "$PORT" > /dev/null
fi

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || {
    echo "FAIL: SIGTERM drain exited non-zero"; exit 1; }

# Successor over the same state: the drained campaign's findings are
# served from the journal, byte-identical — then a streaming session
# is SIGKILL'd half-done.
rm -f "$SERVE_DIR/port"
"$SERVED" --port-file "$SERVE_DIR/port" --state-dir "$SERVE_DIR/state" \
    > "$SERVE_DIR/daemon2.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do test -s "$SERVE_DIR/port" && break; sleep 0.1; done
test -s "$SERVE_DIR/port" || {
    echo "FAIL: restarted lfm_served never published its port"
    cat "$SERVE_DIR/daemon2.log"; exit 1; }
PORT=$(cat "$SERVE_DIR/port")
"$SERVED" --client GET /campaigns/ci/findings --port "$PORT" \
    > "$SERVE_DIR/resumed.json"
cmp "$SERVE_DIR/batch.json" "$SERVE_DIR/resumed.json" || {
    echo "FAIL: restart served different findings for campaign ci"
    exit 1; }
"$SERVED" --client POST /campaigns/ci-session --port "$PORT" > /dev/null
"$SERVED" --client POST /campaigns/ci-session/traces \
    examples/traces/racy_counter.txt --port "$PORT" > /dev/null
"$SERVED" --client POST /campaigns/ci-session/traces \
    examples/traces/abba_deadlock.txt --port "$PORT" > /dev/null
kill -KILL "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true

rm -f "$SERVE_DIR/port"
"$SERVED" --port-file "$SERVE_DIR/port" --state-dir "$SERVE_DIR/state" \
    > "$SERVE_DIR/daemon3.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do test -s "$SERVE_DIR/port" && break; sleep 0.1; done
test -s "$SERVE_DIR/port" || {
    echo "FAIL: third lfm_served never published its port"
    cat "$SERVE_DIR/daemon3.log"; exit 1; }
PORT=$(cat "$SERVE_DIR/port")
# The revived session finishes now; its findings must equal a batch
# run over the same two traces.
"$SERVED" --client POST /campaigns/ci-session/finish --port "$PORT" \
    > "$SERVE_DIR/session.json"
./build/tools/lfm_tracepack pack "$SERVE_DIR/session.lfmc" \
    examples/traces/racy_counter.txt examples/traces/abba_deadlock.txt
"$SERVED" --batch "$SERVE_DIR/session.lfmc" \
    > "$SERVE_DIR/session_batch.json"
cmp "$SERVE_DIR/session_batch.json" "$SERVE_DIR/session.json" || {
    echo "FAIL: resumed session findings differ from batch"; exit 1; }
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || {
    echo "FAIL: final SIGTERM drain exited non-zero"; exit 1; }
echo "serve ok: stream==batch, drain clean, SIGKILL resume identical"

echo "== bench-perf: SARIF lint =="
# The emitted findings document must be structurally SARIF 2.1.0:
# parseable, versioned, with runs/results carrying ruleId + locations.
SARIF="$BENCH_PERF_DIR/FINDINGS_detect.sarif"
test -f "$SARIF" || { echo "FAIL: $SARIF was not emitted"; exit 1; }
if command -v python3 >/dev/null; then
    python3 - "$SARIF" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["version"] == "2.1.0", "version must be 2.1.0"
runs = doc["runs"]
assert isinstance(runs, list) and runs, "runs must be non-empty"
assert runs[0]["tool"]["driver"]["rules"], "driver.rules missing"
for result in runs[0]["results"]:
    assert result["ruleId"], "result without ruleId"
    assert result["locations"], "result without locations"
print("SARIF lint ok:", len(runs[0]["results"]), "results")
PYEOF
else
    # Grep fallback: the required top-level keys must all appear.
    for key in '"version": "2.1.0"' '"runs"' '"results"' \
               '"ruleId"' '"locations"'; do
        grep -qF "$key" "$SARIF" || {
            echo "FAIL: SARIF missing $key"; exit 1; }
    done
    echo "SARIF lint ok (grep fallback)"
fi

echo "== TSan build (sim + explore + parallel + pool/stream tests) =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLFM_TSAN=ON
cmake --build build-tsan -j "$JOBS" \
    --target test_sim test_parallel test_support test_pipeline \
    test_failsafe test_sharded

echo "== TSan: executor + parallel engine + pool + detection =="
# test_sharded's executor-concept tests run under TSan; its fork-based
# shard tests skip themselves (TSan cannot follow a multi-threaded
# child through fork) and get their sanitizer pass under ASan below.
./build-tsan/tests/test_sim
./build-tsan/tests/test_parallel
./build-tsan/tests/test_support
./build-tsan/tests/test_pipeline
./build-tsan/tests/test_failsafe
./build-tsan/tests/test_sharded

echo "== crash-handler lint (async-signal-safety) =="
# Everything in crash_handler.cc can run inside a signal handler, so
# the whole TU is held to the async-signal-safe subset: strip comments
# (-fpreprocessed -dD -E -P) and grep what remains for banned calls.
# The include lines are not expanded, so the lint covers exactly the
# code this TU adds.
CC_BIN="${CC:-cc}"
command -v "$CC_BIN" >/dev/null || CC_BIN=gcc
BANNED='malloc|calloc|realloc|(^|[^_a-zA-Z])free[[:space:]]*\(|printf|iostream|cout|cerr|std::string|(^|[^_a-zA-Z])new[[:space:]]|(^|[^_a-zA-Z])delete[[:space:]]|throw|mutex|fopen|fwrite|syslog|(^|[^_a-zA-Z])exit[[:space:]]*\('
if "$CC_BIN" -fpreprocessed -dD -E -P src/support/crash_handler.cc \
        | grep -nE "$BANNED"; then
    echo "FAIL: crash_handler.cc calls something that is not"
    echo "      async-signal-safe (matches above)"
    exit 1
fi

echo "== ASan+UBSan build (sandbox: forked crashing children) =="
# TSan cannot supervise children that die on purpose; the sandbox
# layer gets its memory-safety pass under ASan+UBSan instead.
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLFM_ASAN=ON
cmake --build build-asan -j "$JOBS" \
    --target test_sandbox crash_recovery_demo sharded_campaign_demo

echo "== ASan: crash containment + kill/resume demo =="
# handle_segv=0/handle_abort=0: the child's own crash reporter — not
# ASan's handler — must observe the signal; leak checking is off
# because sandbox children exit by dying; the suppressions quiet
# UBSan about the *deliberate* null stores being contained.
ASAN_OPTS="handle_segv=0:handle_abort=0:detect_leaks=0"
UBSAN_OPTS="suppressions=$PWD/scripts/ubsan.supp"
ASAN_OPTIONS="$ASAN_OPTS" UBSAN_OPTIONS="$UBSAN_OPTS" \
    ./build-asan/tests/test_sandbox
(cd build-asan/examples &&
    ASAN_OPTIONS="$ASAN_OPTS" UBSAN_OPTIONS="$UBSAN_OPTS" \
    ./crash_recovery_demo)
(cd build-asan/examples &&
    ASAN_OPTIONS="$ASAN_OPTS" UBSAN_OPTIONS="$UBSAN_OPTS" \
    ./sharded_campaign_demo)

echo "CI OK"
