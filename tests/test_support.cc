/**
 * @file
 * Unit tests for the support substrate: PRNG, statistics, strings.
 */

#include <gtest/gtest.h>

#include <set>

#include "support/random.hh"
#include "support/stats.hh"
#include "support/string_utils.hh"

namespace
{

using namespace lfm::support;

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LT(equal, 4);
}

TEST(Rng, BelowIsInRangeAndCoversAll)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.below(5);
        EXPECT_LT(v, 5u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(13);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(17);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(5);
    Rng child = a.split();
    EXPECT_NE(a.next(), child.next());
}

TEST(RunningStat, MeanAndVariance)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesSequential)
{
    RunningStat all, a, b;
    for (int i = 0; i < 50; ++i) {
        double x = i * 0.7 - 3;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(IntHistogram, CumulativeQueries)
{
    IntHistogram h;
    h.add(1, 49);  // e.g. single-variable bugs
    h.add(2, 16);
    h.add(3, 5);
    h.add(7, 4);
    EXPECT_EQ(h.total(), 74u);
    EXPECT_EQ(h.at(2), 16u);
    EXPECT_EQ(h.atMost(1), 49u);
    EXPECT_EQ(h.atMost(2), 65u);
    EXPECT_EQ(h.above(2), 9u);
    EXPECT_NEAR(h.fractionAtMost(1), 49.0 / 74.0, 1e-12);
    EXPECT_EQ(h.minValue(), 1);
    EXPECT_EQ(h.maxValue(), 7);
}

TEST(Stats, RatioFormatting)
{
    EXPECT_EQ(formatRatio(101, 105), "101/105 (96%)");
    EXPECT_EQ(formatRatio(0, 0), "0/0 (n/a)");
    EXPECT_EQ(formatPercent(49, 74), "66.2%");
    EXPECT_EQ(formatPercent(1, 0), "n/a");
}

TEST(Strings, JoinSplitTrim)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(trim("  hi \n"), "hi");
    EXPECT_EQ(trim(""), "");
}

TEST(Strings, PaddingAndCase)
{
    EXPECT_EQ(padLeft("x", 3), "  x");
    EXPECT_EQ(padRight("x", 3), "x  ");
    EXPECT_EQ(padLeft("xyz", 2), "xyz");
    EXPECT_EQ(toLower("AtOmIcItY"), "atomicity");
    EXPECT_TRUE(iequals("MySQL", "mysql"));
    EXPECT_FALSE(iequals("apache", "apach"));
}

} // namespace
