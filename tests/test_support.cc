/**
 * @file
 * Unit tests for the support substrate: PRNG, statistics, strings,
 * the work-stealing pool's exception/parking semantics, the metrics
 * layer, and the detection stream's lifecycle edges.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

#include "detect/batch.hh"
#include "detect/pipeline.hh"
#include "support/journal.hh"
#include "support/metrics.hh"
#include "support/random.hh"
#include "support/stats.hh"
#include "support/string_utils.hh"
#include "support/workpool.hh"

namespace
{

using namespace lfm::support;

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LT(equal, 4);
}

TEST(Rng, BelowIsInRangeAndCoversAll)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.below(5);
        EXPECT_LT(v, 5u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(13);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(17);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(5);
    Rng child = a.split();
    EXPECT_NE(a.next(), child.next());
}

TEST(RunningStat, MeanAndVariance)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesSequential)
{
    RunningStat all, a, b;
    for (int i = 0; i < 50; ++i) {
        double x = i * 0.7 - 3;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(IntHistogram, CumulativeQueries)
{
    IntHistogram h;
    h.add(1, 49);  // e.g. single-variable bugs
    h.add(2, 16);
    h.add(3, 5);
    h.add(7, 4);
    EXPECT_EQ(h.total(), 74u);
    EXPECT_EQ(h.at(2), 16u);
    EXPECT_EQ(h.atMost(1), 49u);
    EXPECT_EQ(h.atMost(2), 65u);
    EXPECT_EQ(h.above(2), 9u);
    EXPECT_NEAR(h.fractionAtMost(1), 49.0 / 74.0, 1e-12);
    EXPECT_EQ(h.minValue(), 1);
    EXPECT_EQ(h.maxValue(), 7);
}

TEST(Stats, RatioFormatting)
{
    EXPECT_EQ(formatRatio(101, 105), "101/105 (96%)");
    EXPECT_EQ(formatRatio(0, 0), "0/0 (n/a)");
    EXPECT_EQ(formatPercent(49, 74), "66.2%");
    EXPECT_EQ(formatPercent(1, 0), "n/a");
}

namespace
{

/// Textbook byte-at-a-time CRC-32 (IEEE, reflected): the oracle the
/// production slicing-by-8 implementation must agree with.
std::uint32_t
crc32Reference(const void *data, std::size_t len, std::uint32_t crc)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < len; ++i) {
        crc ^= p[i];
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
    }
    return ~crc;
}

} // namespace

TEST(Crc32, MatchesKnownVector)
{
    // The canonical CRC-32 check value.
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Crc32, SlicedMatchesBytewiseReferenceAtEveryLengthAndOffset)
{
    Rng rng(0xC4C32u);
    std::vector<std::uint8_t> bytes(513);
    for (auto &b : bytes)
        b = static_cast<std::uint8_t>(rng.next());
    // Sweep lengths across the slicing-by-8 boundaries (0..64) plus
    // larger blocks, at every alignment 0..7, so both the unaligned
    // prologue and the word loop are exercised.
    for (std::size_t offset = 0; offset < 8; ++offset) {
        for (std::size_t len = 0; len <= 64; ++len) {
            ASSERT_EQ(crc32(bytes.data() + offset, len),
                      crc32Reference(bytes.data() + offset, len, 0))
                << "offset " << offset << " len " << len;
        }
        const std::size_t len = bytes.size() - offset;
        ASSERT_EQ(crc32(bytes.data() + offset, len),
                  crc32Reference(bytes.data() + offset, len, 0))
            << "offset " << offset;
    }
}

TEST(Crc32, ChainedContinuationMatchesOneShot)
{
    Rng rng(7);
    std::vector<std::uint8_t> bytes(301);
    for (auto &b : bytes)
        b = static_cast<std::uint8_t>(rng.next());
    const std::uint32_t whole = crc32(bytes.data(), bytes.size());
    for (std::size_t split : {0u, 1u, 7u, 8u, 100u, 300u, 301u}) {
        const std::uint32_t first = crc32(bytes.data(), split);
        EXPECT_EQ(crc32(bytes.data() + split, bytes.size() - split,
                        first),
                  whole)
            << "split at " << split;
    }
}

TEST(Strings, JoinSplitTrim)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(trim("  hi \n"), "hi");
    EXPECT_EQ(trim(""), "");
}

TEST(Strings, PaddingAndCase)
{
    EXPECT_EQ(padLeft("x", 3), "  x");
    EXPECT_EQ(padRight("x", 3), "x  ");
    EXPECT_EQ(padLeft("xyz", 2), "xyz");
    EXPECT_EQ(toLower("AtOmIcItY"), "atomicity");
    EXPECT_TRUE(iequals("MySQL", "mysql"));
    EXPECT_FALSE(iequals("apache", "apach"));
}

TEST(WorkPool, ThrowingTaskRethrowsOnCallerMultiWorker)
{
    WorkStealingPool pool(4);
    std::atomic<int> ran{0};
    constexpr int kTasks = 64;
    for (int i = 0; i < kTasks; ++i) {
        pool.push(static_cast<unsigned>(i) % pool.workers(),
                  [&ran, i](unsigned) {
                      if (i == 13)
                          throw std::runtime_error("boom");
                      ran.fetch_add(1, std::memory_order_relaxed);
                  });
    }
    try {
        pool.run();
        FAIL() << "expected run() to rethrow the task's exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom");
    }
    // Every queued task is accounted for: executed or drained unrun.
    const auto &stats = pool.lastRunStats();
    EXPECT_EQ(stats.executed + stats.drained,
              static_cast<std::uint64_t>(kTasks));

    // The pool quiesced cleanly and stays reusable.
    std::atomic<int> again{0};
    for (int i = 0; i < 16; ++i)
        pool.push(static_cast<unsigned>(i) % pool.workers(),
                  [&again](unsigned) {
                      again.fetch_add(1, std::memory_order_relaxed);
                  });
    pool.run();
    EXPECT_EQ(again.load(), 16);
    EXPECT_EQ(pool.lastRunStats().executed, 16u);
    EXPECT_EQ(pool.lastRunStats().drained, 0u);
}

TEST(WorkPool, ThrowingTaskRethrowsOnCallerInlinePath)
{
    WorkStealingPool pool(1);
    int ran = 0;
    pool.push(0, [&ran](unsigned) { ++ran; });
    pool.push(0, [](unsigned) {
        throw std::runtime_error("inline boom");
    });
    pool.push(0, [&ran](unsigned) { ++ran; });
    try {
        pool.run();
        FAIL() << "expected run() to rethrow on the inline path";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "inline boom");
    }
    const auto &stats = pool.lastRunStats();
    EXPECT_EQ(stats.executed + stats.drained, 3u);

    pool.push(0, [&ran](unsigned) { ++ran; });
    pool.run();
    EXPECT_EQ(pool.lastRunStats().drained, 0u);
}

TEST(WorkPool, OnlyFirstExceptionWins)
{
    WorkStealingPool pool(1);
    for (int i = 0; i < 3; ++i) {
        pool.push(0, [i](unsigned) {
            throw std::runtime_error("err" + std::to_string(i));
        });
    }
    // Single worker pops its own deque LIFO, so task 2 runs first;
    // the later throwers drain unrun and must not replace it.
    try {
        pool.run();
        FAIL() << "expected rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "err2");
    }
    EXPECT_EQ(pool.lastRunStats().executed, 1u);
    EXPECT_EQ(pool.lastRunStats().drained, 2u);
}

TEST(WorkPool, ParkedWorkersWakeForLateWork)
{
    WorkStealingPool pool(4);
    std::atomic<int> done{0};
    // One slow root task fans out late: the other workers find every
    // deque empty and park on the idle condition variable. The late
    // pushes must wake them and every task must run.
    pool.push(0, [&](unsigned w) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        for (int i = 0; i < 32; ++i)
            pool.push(w, [&done](unsigned) {
                done.fetch_add(1, std::memory_order_relaxed);
            });
    });
    pool.run();
    EXPECT_EQ(done.load(), 32);
    // During the 50ms producer stall at least one idle worker parked
    // instead of spinning.
    EXPECT_GE(pool.lastRunStats().parks, 1u);
}

TEST(WorkPool, StealingStillCompletesEverything)
{
    WorkStealingPool pool(8);
    std::atomic<int> done{0};
    constexpr int kTasks = 400;
    // All work lands on worker 0; the other seven can only steal.
    for (int i = 0; i < kTasks; ++i)
        pool.push(0, [&done](unsigned) {
            done.fetch_add(1, std::memory_order_relaxed);
        });
    pool.run();
    EXPECT_EQ(done.load(), kTasks);
    EXPECT_EQ(pool.lastRunStats().executed,
              static_cast<std::uint64_t>(kTasks));
}

TEST(Metrics, CounterMergeMatchesAcrossWorkerCounts)
{
    metrics::setEnabled(true);
    auto &c = metrics::counter("test.merge");
    for (unsigned workers : {1u, 2u, 8u}) {
        c.reset();
        WorkStealingPool pool(workers);
        constexpr int kTasks = 200;
        for (int i = 0; i < kTasks; ++i)
            pool.push(static_cast<unsigned>(i) % workers,
                      [&c](unsigned) { c.add(3); });
        pool.run();
        EXPECT_EQ(c.value(), 3u * kTasks) << "workers=" << workers;
    }
    metrics::setEnabled(false);
}

TEST(Metrics, DisabledLayerRecordsNothing)
{
    metrics::setEnabled(false);
    auto &c = metrics::counter("test.disabled");
    c.reset();
    c.add(5);
    EXPECT_EQ(c.value(), 0u);

    auto &t = metrics::timer("test.disabled-timer");
    t.reset();
    { auto scope = t.time(); }
    EXPECT_EQ(t.snapshot().count, 0u);
}

TEST(Metrics, HistogramBucketsAndQuantiles)
{
    metrics::setEnabled(true);
    auto &h = metrics::histogram("test.hist");
    h.reset();
    for (int i = 0; i < 100; ++i)
        h.observe(10);
    h.observe(1000);
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 101u);
    EXPECT_EQ(snap.sum, 100u * 10u + 1000u);
    EXPECT_NEAR(snap.mean(), 2000.0 / 101.0, 1e-9);
    // The median bucket covers the 10s, far below the outlier.
    EXPECT_GE(snap.quantileUpperBound(0.5), 10u);
    EXPECT_LT(snap.quantileUpperBound(0.5), 1000u);
    metrics::setEnabled(false);
}

TEST(DetectionStream, FinishIsIdempotentAndSubmitAfterIsRejected)
{
    metrics::setEnabled(true);
    metrics::Registry::instance().reset();
    lfm::detect::Pipeline pipeline;
    lfm::detect::DetectionStream stream(pipeline, 2);
    for (std::uint64_t k = 0; k < 8; ++k)
        EXPECT_TRUE(stream.submit(k, lfm::trace::Trace()));
    const auto reports = stream.finish();
    ASSERT_EQ(reports.size(), 8u);
    for (std::uint64_t k = 0; k < 8; ++k)
        EXPECT_EQ(reports[k].key, k);

    EXPECT_TRUE(stream.finish().empty());
    EXPECT_FALSE(stream.submit(99, lfm::trace::Trace()));
    EXPECT_EQ(metrics::counter("detect.stream.rejected").value(), 1u);
    metrics::setEnabled(false);
}

TEST(DetectionStream, DestructorWithoutFinishCountsUnharvested)
{
    metrics::setEnabled(true);
    metrics::Registry::instance().reset();
    lfm::detect::Pipeline pipeline;
    {
        lfm::detect::DetectionStream stream(pipeline, 2);
        for (std::uint64_t k = 0; k < 5; ++k)
            EXPECT_TRUE(stream.submit(k, lfm::trace::Trace()));
        // No finish(): the destructor still analyzes everything
        // queued and reports the dropped results through metrics.
    }
    EXPECT_EQ(metrics::counter("detect.stream.analyzed").value(), 5u);
    EXPECT_EQ(metrics::counter("detect.stream.unharvested").value(),
              5u);
    metrics::setEnabled(false);
}

} // namespace
