/**
 * @file
 * Trace-validator tests: hand-built violations are caught, and —
 * the real payoff — every execution the simulator produces across
 * all kernels, variants, and policies is structurally valid
 * (parameterized executor-oracle sweep).
 */

#include <gtest/gtest.h>

#include "bugs/registry.hh"
#include "sim/policy.hh"
#include "trace/validate.hh"

namespace
{

using namespace lfm;
using namespace lfm::trace;

Event
mk(ThreadId tid, EventKind kind, ObjectId obj = kNoObject,
   ObjectId obj2 = kNoObject, std::uint64_t aux = 0)
{
    Event e;
    e.thread = tid;
    e.kind = kind;
    e.obj = obj;
    e.obj2 = obj2;
    e.aux = aux;
    return e;
}

TEST(Validate, CleanTraceHasNoProblems)
{
    Trace t;
    t.append(mk(0, EventKind::ThreadBegin, kNoObject, kNoObject,
                kSpuriousWakeup));
    t.append(mk(0, EventKind::Lock, 5));
    t.append(mk(0, EventKind::Write, 9));
    t.append(mk(0, EventKind::Unlock, 5));
    t.append(mk(0, EventKind::ThreadEnd));
    EXPECT_TRUE(validateTrace(t).empty());
}

TEST(Validate, NegativeThreadIdCaught)
{
    // Same gap the text loader had: a negative thread id is not a
    // trace any recorder produces, so the validator must flag it.
    Trace t;
    t.append(mk(-1, EventKind::ThreadBegin, kNoObject, kNoObject,
                kSpuriousWakeup));
    t.append(mk(-1, EventKind::Write, 9));
    auto problems = validateTrace(t);
    ASSERT_GE(problems.size(), 2u);
    EXPECT_NE(problems[0].find("negative thread id"),
              std::string::npos);
}

TEST(Validate, DoubleAcquisitionCaught)
{
    Trace t;
    t.append(mk(0, EventKind::Lock, 5));
    t.append(mk(1, EventKind::Lock, 5));
    auto problems = validateTrace(t);
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("while held"), std::string::npos);
}

TEST(Validate, UnlockByNonHolderCaught)
{
    Trace t;
    t.append(mk(0, EventKind::Lock, 5));
    t.append(mk(1, EventKind::Unlock, 5));
    auto problems = validateTrace(t);
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("non-holder"), std::string::npos);
}

TEST(Validate, WriterUnderReadersCaught)
{
    Trace t;
    t.append(mk(0, EventKind::RdLock, 5));
    t.append(mk(1, EventKind::Lock, 5));
    auto problems = validateTrace(t);
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("under readers"), std::string::npos);
}

TEST(Validate, WaitWithoutMutexCaught)
{
    Trace t;
    t.append(mk(0, EventKind::WaitBegin, 7, 5));
    auto problems = validateTrace(t);
    ASSERT_GE(problems.size(), 1u);
    EXPECT_NE(problems[0].find("without holding"),
              std::string::npos);
}

TEST(Validate, ResumeAuxMustReferenceASignal)
{
    Trace t;
    t.append(mk(0, EventKind::Lock, 5));
    t.append(mk(0, EventKind::WaitBegin, 7, 5));
    t.append(mk(1, EventKind::Write, 9)); // not a signal
    t.append(mk(0, EventKind::WaitResume, 7, 5, 2));
    auto problems = validateTrace(t);
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("does not reference a signal"),
              std::string::npos);
}

TEST(Validate, EventAfterThreadEndCaught)
{
    Trace t;
    t.append(mk(0, EventKind::ThreadBegin, kNoObject, kNoObject,
                kSpuriousWakeup));
    t.append(mk(0, EventKind::ThreadEnd));
    t.append(mk(0, EventKind::Write, 9));
    auto problems = validateTrace(t);
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("after the thread ended"),
              std::string::npos);
}

// -----------------------------------------------------------------
// Executor oracle: every trace the simulator produces is valid.
// -----------------------------------------------------------------

struct SweepParam
{
    const bugs::BugKernel *kernel;
    bugs::Variant variant;
};

class ExecutorOracleTest : public ::testing::TestWithParam<SweepParam>
{
};

std::string
sweepName(const ::testing::TestParamInfo<SweepParam> &info)
{
    std::string name = info.param.kernel->info().id;
    name += std::string("_") +
            bugs::variantName(info.param.variant);
    for (char &c : name) {
        if (c == '-')
            c = '_';
    }
    return name;
}

TEST_P(ExecutorOracleTest, AllProducedTracesAreWellFormed)
{
    const auto &[kernel, variant] = GetParam();
    sim::RandomPolicy random;
    sim::RoundRobinPolicy rr;
    sim::PctPolicy pct(3, 64);
    sim::SchedulePolicy *policies[] = {&random, &rr, &pct};
    for (auto *policy : policies) {
        for (std::uint64_t seed = 0; seed < 8; ++seed) {
            sim::ExecOptions opt;
            opt.seed = seed;
            opt.maxDecisions = 20000;
            auto exec = sim::runProgram(kernel->factory(variant),
                                        *policy, opt);
            auto problems = validateTrace(exec.trace);
            EXPECT_TRUE(problems.empty())
                << kernel->info().id << "/"
                << bugs::variantName(variant) << " under "
                << policy->name() << " seed " << seed << ":\n  "
                << (problems.empty() ? "" : problems.front());
        }
    }
}

std::vector<SweepParam>
sweep()
{
    std::vector<SweepParam> out;
    for (const auto *k : bugs::allKernels()) {
        out.push_back({k, bugs::Variant::Buggy});
        out.push_back({k, bugs::Variant::Fixed});
        if (k->info().hasTmVariant)
            out.push_back({k, bugs::Variant::TmFixed});
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(KernelsTimesVariants, ExecutorOracleTest,
                         ::testing::ValuesIn(sweep()), sweepName);

} // namespace
