/**
 * @file
 * Property-based suites over randomly generated concurrent programs
 * (parameterized gtest sweeps): executor determinism and replay,
 * happens-before relation laws, detector soundness on disciplined
 * programs, and cross-detector containment.
 */

#include <gtest/gtest.h>

#include "detect/atomicity.hh"
#include "detect/deadlock.hh"
#include "detect/lockset.hh"
#include "detect/race_hb.hh"
#include "explore/randprog.hh"
#include "sim/policy.hh"
#include "trace/hb.hh"

namespace
{

using namespace lfm;
using explore::RandProgConfig;

/** Sweep parameter: the generator seed. */
class RandomProgramTest : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    std::uint64_t seed() const { return GetParam(); }

    sim::Execution
    runOnce(const RandProgConfig &config, std::uint64_t execSeed)
    {
        sim::RandomPolicy policy;
        sim::ExecOptions opt;
        opt.seed = execSeed;
        return sim::runProgram(
            explore::randomProgramFactory(config, seed()), policy,
            opt);
    }
};

TEST_P(RandomProgramTest, ExecutorIsDeterministicPerSeed)
{
    RandProgConfig config;
    auto a = runOnce(config, 7);
    auto b = runOnce(config, 7);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace.ev(i).thread, b.trace.ev(i).thread);
        EXPECT_EQ(a.trace.ev(i).kind, b.trace.ev(i).kind);
        EXPECT_EQ(a.trace.ev(i).obj, b.trace.ev(i).obj);
    }
}

TEST_P(RandomProgramTest, ReplayReproducesTheTrace)
{
    RandProgConfig config;
    auto original = runOnce(config, 11);
    std::vector<std::size_t> prefix;
    for (const auto &d : original.decisions)
        prefix.push_back(d.chosen);
    sim::FixedSchedulePolicy replay(prefix);
    auto again = sim::runProgram(
        explore::randomProgramFactory(config, seed()), replay);
    EXPECT_FALSE(replay.diverged());
    ASSERT_EQ(original.trace.size(), again.trace.size());
    for (std::size_t i = 0; i < original.trace.size(); ++i) {
        EXPECT_EQ(original.trace.ev(i).thread,
                  again.trace.ev(i).thread);
        EXPECT_EQ(original.trace.ev(i).kind, again.trace.ev(i).kind);
    }
}

TEST_P(RandomProgramTest, HappensBeforeIsAPartialOrder)
{
    RandProgConfig config;
    auto exec = runOnce(config, 3);
    trace::HbRelation hb(exec.trace);
    const std::size_t n = exec.trace.size();

    for (std::size_t a = 0; a < n; ++a) {
        // Irreflexive.
        EXPECT_FALSE(hb.happensBefore(a, a));
        for (std::size_t b = a + 1; b < n; ++b) {
            // Antisymmetric; consistent with the linearization.
            EXPECT_FALSE(hb.happensBefore(b, a))
                << "hb against trace order: " << b << " -> " << a;
            // Program order is contained in hb.
            if (exec.trace.ev(a).thread == exec.trace.ev(b).thread)
                EXPECT_TRUE(hb.happensBefore(a, b));
        }
    }

    // Transitive (sampled pairs to keep it O(n^2)).
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
            if (!hb.happensBefore(a, b))
                continue;
            for (std::size_t c = b + 1; c < n; c += 3) {
                if (hb.happensBefore(b, c))
                    EXPECT_TRUE(hb.happensBefore(a, c));
            }
        }
    }
}

TEST_P(RandomProgramTest, FullyLockedProgramsNeverRace)
{
    RandProgConfig config;
    config.alwaysLock = true;
    config.consistentLocking = true;
    for (std::uint64_t run = 0; run < 5; ++run) {
        auto exec = runOnce(config, run);
        EXPECT_FALSE(exec.deadlocked);
        detect::HbRaceDetector race;
        detect::LocksetDetector lockset;
        detect::AtomicityDetector atomicity;
        EXPECT_TRUE(race.analyze(exec.trace).empty())
            << "hb race in locked program, seed " << seed();
        EXPECT_TRUE(lockset.analyze(exec.trace).empty())
            << "lockset report in locked program, seed " << seed();
        // Single accesses under a lock form no unserializable
        // triples either.
        EXPECT_TRUE(atomicity.analyze(exec.trace).empty())
            << "atomicity report in locked program, seed " << seed();
    }
}

TEST_P(RandomProgramTest, HbWriteRaceImpliesLocksetReport)
{
    // Lockset is more conservative than happens-before — with one
    // caveat its state machine imposes: Eraser only reports once a
    // variable is shared *and modified*. So the containment property
    // is: every HB race whose later access is a write must also be
    // reported by Eraser (a write-then-read race can legitimately
    // die in the Shared state).
    RandProgConfig config;
    config.lockedFraction = 0.4;
    config.consistentLocking = false; // invite discipline violations
    for (std::uint64_t run = 0; run < 5; ++run) {
        auto exec = runOnce(config, run);
        detect::HbRaceDetector race;
        race.setFirstOnly(false);
        detect::LocksetDetector lockset;
        std::set<trace::ObjectId> raced;
        for (const auto &f : race.analyze(exec.trace)) {
            const auto &later = exec.trace.ev(f.events.back());
            if (later.isWrite())
                raced.insert(f.primaryObj);
        }
        std::set<trace::ObjectId> flagged;
        for (const auto &f : lockset.analyze(exec.trace))
            flagged.insert(f.primaryObj);
        for (auto var : raced) {
            EXPECT_TRUE(flagged.count(var))
                << "HB write-race on var " << var
                << " missed by lockset, gen seed " << seed()
                << " run " << run;
        }
    }
}

TEST_P(RandomProgramTest, ConsistentLockingNeverDeadlocks)
{
    // The generator acquires at most one mutex at a time, so no
    // hold-and-wait: the lock-order graph must be cycle-free and the
    // execution must terminate.
    RandProgConfig config;
    config.alwaysLock = true;
    auto exec = runOnce(config, 1);
    EXPECT_FALSE(exec.deadlocked);
    EXPECT_FALSE(exec.stepLimitHit);
    detect::DeadlockDetector d;
    EXPECT_TRUE(d.analyze(exec.trace).empty());
}

TEST_P(RandomProgramTest, TraceShapeInvariants)
{
    RandProgConfig config;
    auto exec = runOnce(config, 5);
    const auto &events = exec.trace.events();

    std::map<trace::ThreadId, int> begins, ends;
    std::map<trace::ThreadId, std::set<trace::ObjectId>> held;
    for (const auto &event : events) {
        switch (event.kind) {
          case trace::EventKind::ThreadBegin:
            ++begins[event.thread];
            break;
          case trace::EventKind::ThreadEnd:
            ++ends[event.thread];
            break;
          case trace::EventKind::Lock:
            // No double acquisition without release.
            EXPECT_TRUE(
                held[event.thread].insert(event.obj).second);
            // Mutual exclusion: no other thread holds it.
            for (const auto &[tid, locks] : held) {
                if (tid != event.thread)
                    EXPECT_FALSE(locks.count(event.obj));
            }
            break;
          case trace::EventKind::Unlock:
            EXPECT_EQ(held[event.thread].erase(event.obj), 1u);
            break;
          default:
            break;
        }
    }
    for (const auto &[tid, n] : begins) {
        EXPECT_EQ(n, 1) << "thread " << tid;
        EXPECT_EQ(ends[tid], 1) << "thread " << tid;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range<std::uint64_t>(0, 12));

} // namespace
