/**
 * @file
 * DPOR tests: equivalence with exhaustive DFS on failure detection,
 * genuine state-space reduction, dependency-relation unit cases, and
 * plan replay.
 */

#include <gtest/gtest.h>

#include <memory>

#include "bugs/registry.hh"
#include "explore/dfs.hh"
#include "explore/dpor.hh"
#include "sim/shared.hh"
#include "sim/sync.hh"

namespace
{

using namespace lfm;
using explore::dependentOps;

sim::ChoiceRecord
op(sim::ThreadId tid, sim::OpKind kind, trace::ObjectId obj)
{
    sim::ChoiceRecord c;
    c.tid = tid;
    c.kind = kind;
    c.obj = obj;
    return c;
}

TEST(DporDependency, DataConflicts)
{
    using sim::OpKind;
    EXPECT_TRUE(dependentOps(op(0, OpKind::Write, 9),
                             op(1, OpKind::Read, 9)));
    EXPECT_TRUE(dependentOps(op(0, OpKind::Write, 9),
                             op(1, OpKind::Write, 9)));
    EXPECT_TRUE(dependentOps(op(0, OpKind::Free, 9),
                             op(1, OpKind::Read, 9)));
    EXPECT_FALSE(dependentOps(op(0, OpKind::Read, 9),
                              op(1, OpKind::Read, 9)));
    EXPECT_FALSE(dependentOps(op(0, OpKind::Write, 9),
                              op(1, OpKind::Write, 8)));
}

TEST(DporDependency, SyncAndSameThread)
{
    using sim::OpKind;
    EXPECT_TRUE(dependentOps(op(0, OpKind::MutexLock, 5),
                             op(1, OpKind::MutexLock, 5)));
    EXPECT_TRUE(dependentOps(op(0, OpKind::SignalOne, 7),
                             op(1, OpKind::WaitBegin, 7)));
    EXPECT_FALSE(dependentOps(op(0, OpKind::MutexLock, 5),
                              op(1, OpKind::MutexLock, 6)));
    // Same thread is always dependent (program order).
    EXPECT_TRUE(dependentOps(op(0, OpKind::Read, 9),
                             op(0, OpKind::Read, 9)));
    // No-object ops are independent across threads.
    EXPECT_FALSE(dependentOps(op(0, OpKind::Yield, 0),
                              op(1, OpKind::Yield, 0)));
}

/** Two threads, each: one locked increment on a shared counter. */
sim::ProgramFactory
racyFactory()
{
    return [] {
        auto v =
            std::make_shared<std::unique_ptr<sim::SharedVar<int>>>();
        *v = std::make_unique<sim::SharedVar<int>>("c", 0);
        sim::Program p;
        auto body = [v] { (*v)->add(1); };
        p.threads.push_back({"a", body});
        p.threads.push_back({"b", body});
        p.oracle = [v]() -> std::optional<std::string> {
            if ((*v)->peek() != 2)
                return "lost update";
            return std::nullopt;
        };
        return p;
    };
}

/** Threads touching disjoint variables: everything independent. */
sim::ProgramFactory
independentFactory(int threads)
{
    return [threads] {
        auto vars = std::make_shared<
            std::vector<std::unique_ptr<sim::SharedVar<int>>>>();
        for (int i = 0; i < threads; ++i) {
            vars->push_back(std::make_unique<sim::SharedVar<int>>(
                "v" + std::to_string(i), 0));
        }
        sim::Program p;
        for (int i = 0; i < threads; ++i) {
            p.threads.push_back({"t" + std::to_string(i), [vars, i] {
                                     (*vars)[static_cast<std::size_t>(
                                                 i)]
                                         ->add(1);
                                     (*vars)[static_cast<std::size_t>(
                                                 i)]
                                         ->add(1);
                                 }});
        }
        return p;
    };
}

TEST(Dpor, FindsTheLostUpdateAndExhausts)
{
    auto result = explore::exploreDpor(racyFactory());
    EXPECT_TRUE(result.exhausted);
    EXPECT_GT(result.manifestations, 0u);
}

TEST(Dpor, MatchesDfsVerdictWithFewerExecutions)
{
    auto dfs = explore::exploreDfs(racyFactory());
    auto dpor = explore::exploreDpor(racyFactory());
    ASSERT_TRUE(dfs.exhausted);
    ASSERT_TRUE(dpor.exhausted);
    EXPECT_EQ(dpor.manifestations > 0, dfs.manifestations > 0);
    EXPECT_LT(dpor.executions, dfs.executions);
}

TEST(Dpor, IndependentThreadsCollapseToNearOneSchedule)
{
    // With fully independent threads every interleaving is
    // equivalent; DPOR should need a tiny number of executions while
    // DFS's tree is exponential.
    auto dpor = explore::exploreDpor(independentFactory(3));
    EXPECT_TRUE(dpor.exhausted);
    EXPECT_LE(dpor.executions, 4u);

    explore::DfsOptions opt;
    opt.maxExecutions = 200;
    auto dfs = explore::exploreDfs(independentFactory(3), opt);
    EXPECT_GT(dfs.executions, dpor.executions * 10);
}

TEST(Dpor, PlanReplayReproducesManifestation)
{
    explore::DporOptions opt;
    opt.stopAtFirst = true;
    auto result = explore::exploreDpor(racyFactory(), opt);
    ASSERT_TRUE(result.firstManifestPlan.has_value());
    explore::ThreadPlanPolicy policy(*result.firstManifestPlan);
    auto exec = sim::runProgram(racyFactory(), policy);
    EXPECT_FALSE(policy.diverged());
    EXPECT_TRUE(exec.failed());
}

class DporKernelTest
    : public ::testing::TestWithParam<const bugs::BugKernel *>
{
};

std::string
dporName(const ::testing::TestParamInfo<const bugs::BugKernel *> &i)
{
    std::string name = i.param->info().id;
    for (char &c : name) {
        if (c == '-')
            c = '_';
    }
    return name;
}

TEST_P(DporKernelTest, FindsEveryKernelBugDfsFinds)
{
    const auto &kernel = *GetParam();
    explore::DporOptions opt;
    opt.maxExecutions = 3000;
    opt.stopAtFirst = true;
    auto result =
        explore::exploreDpor(kernel.factory(bugs::Variant::Buggy),
                             opt);
    EXPECT_GT(result.manifestations, 0u)
        << kernel.info().id << " after " << result.executions
        << " executions";
}

/** Kernels with bounded schedule trees (no unbounded retry loops). */
std::vector<const bugs::BugKernel *>
boundedKernels()
{
    std::vector<const bugs::BugKernel *> out;
    for (const auto *k : bugs::allKernels()) {
        const auto &info = k->info();
        if (info.patterns.count(study::Pattern::Other))
            continue; // retry loops blow up any systematic search
        out.push_back(k);
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(Kernels, DporKernelTest,
                         ::testing::ValuesIn(boundedKernels()),
                         dporName);

} // namespace
