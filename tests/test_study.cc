/**
 * @file
 * Database and analysis tests: every published aggregate must be
 * reproduced exactly by the 105 records, every anchored record must
 * agree with its kernel's metadata, and every headline finding must
 * match its published value.
 */

#include <gtest/gtest.h>

#include "bugs/registry.hh"
#include "study/analysis.hh"
#include "study/database.hh"
#include "study/findings.hh"

namespace
{

using namespace lfm;
using namespace lfm::study;

const Database &db = database();
const Analysis analysis(db);

TEST(Database, TotalsMatchThePaper)
{
    EXPECT_EQ(db.size(), 105u);
    EXPECT_EQ(analysis.totalNonDeadlock(), 74);
    EXPECT_EQ(analysis.totalDeadlock(), 31);
}

TEST(Database, PerApplicationCounts)
{
    auto rows = analysis.appTable();
    ASSERT_EQ(rows.size(), 4u);
    std::map<App, AppRow> byApp;
    for (const auto &row : rows)
        byApp[row.app] = row;

    EXPECT_EQ(byApp[App::Mozilla].total(), 41);
    EXPECT_EQ(byApp[App::MySQL].total(), 28);
    EXPECT_EQ(byApp[App::Apache].total(), 25);
    EXPECT_EQ(byApp[App::OpenOffice].total(), 11);

    EXPECT_EQ(byApp[App::Mozilla].nonDeadlock, 29);
    EXPECT_EQ(byApp[App::Mozilla].deadlock, 12);
    EXPECT_EQ(byApp[App::MySQL].nonDeadlock, 19);
    EXPECT_EQ(byApp[App::MySQL].deadlock, 9);
    EXPECT_EQ(byApp[App::Apache].nonDeadlock, 21);
    EXPECT_EQ(byApp[App::Apache].deadlock, 4);
    EXPECT_EQ(byApp[App::OpenOffice].nonDeadlock, 5);
    EXPECT_EQ(byApp[App::OpenOffice].deadlock, 6);
}

TEST(Database, PatternDistribution)
{
    EXPECT_EQ(analysis.withPattern(Pattern::Atomicity), 51);
    EXPECT_EQ(analysis.withPattern(Pattern::Order), 24);
    EXPECT_EQ(analysis.withPattern(Pattern::Other), 2);
    EXPECT_EQ(analysis.atomicityOrOrder(), 72);

    int totalFromRows = 0;
    for (const auto &row : analysis.patternTable())
        totalFromRows += row.total();
    EXPECT_EQ(totalFromRows, 74);
}

TEST(Database, ThreadInvolvement)
{
    EXPECT_EQ(analysis.atMostTwoThreads(), 101);
    EXPECT_EQ(analysis.threadsHistogram().total(), 105u);
    EXPECT_EQ(analysis.threadsHistogram().above(2), 4u);
}

TEST(Database, VariableInvolvement)
{
    EXPECT_EQ(analysis.singleVariable(), 49);
    EXPECT_EQ(analysis.variablesHistogram().total(), 74u);
    EXPECT_EQ(analysis.variablesHistogram().above(1), 25u);
}

TEST(Database, AccessInvolvement)
{
    EXPECT_EQ(analysis.atMostFourAccesses(), 97);
    EXPECT_EQ(analysis.accessesHistogram().total(), 105u);
    EXPECT_EQ(analysis.accessesHistogram().above(4), 8u);
}

TEST(Database, DeadlockResources)
{
    EXPECT_EQ(analysis.atMostTwoResources(), 30);
    EXPECT_EQ(analysis.resourcesHistogram().at(1), 7u);
    EXPECT_EQ(analysis.resourcesHistogram().at(2), 23u);
    EXPECT_EQ(analysis.resourcesHistogram().above(2), 1u);
}

TEST(Database, NonDeadlockFixStrategies)
{
    EXPECT_EQ(analysis.fixedBy(NonDeadlockFix::CondCheck), 19);
    EXPECT_EQ(analysis.fixedBy(NonDeadlockFix::CodeSwitch), 10);
    EXPECT_EQ(analysis.fixedBy(NonDeadlockFix::DesignChange), 22);
    EXPECT_EQ(analysis.fixedBy(NonDeadlockFix::AddLock), 20);
    EXPECT_EQ(analysis.fixedBy(NonDeadlockFix::Other), 3);

    int total = 0;
    for (const auto &row : analysis.ndFixTable())
        total += row.total;
    EXPECT_EQ(total, 74);
}

TEST(Database, DeadlockFixStrategies)
{
    auto table = analysis.dlFixTable();
    EXPECT_EQ(table[DeadlockFix::GiveUpResource], 19);
    EXPECT_EQ(table[DeadlockFix::ChangeAcqOrder], 6);
    EXPECT_EQ(table[DeadlockFix::SplitResource], 2);
    EXPECT_EQ(table[DeadlockFix::Other], 4);
}

TEST(Database, BuggyPatchesAndTm)
{
    EXPECT_EQ(analysis.buggyPatches(), 17);
    auto tm = analysis.tmTable();
    EXPECT_EQ(tm[TmHelp::Yes], 41);
    EXPECT_EQ(tm[TmHelp::Maybe], 20);
    EXPECT_EQ(tm[TmHelp::No], 44);
}

TEST(Database, RecordInvariants)
{
    std::set<std::string> ids;
    for (const auto &r : db.records()) {
        EXPECT_TRUE(ids.insert(r.id).second)
            << "duplicate id " << r.id;
        EXPECT_FALSE(r.description.empty()) << r.id;
        EXPECT_GE(r.threads, 1) << r.id;
        EXPECT_GE(r.accesses, 2) << r.id;
        EXPECT_GE(r.patchAttempts, 1) << r.id;
        if (r.isDeadlock()) {
            EXPECT_TRUE(r.patterns.empty()) << r.id;
            EXPECT_GE(r.resources, 1) << r.id;
            EXPECT_EQ(r.variables, 0) << r.id;
        } else {
            EXPECT_FALSE(r.patterns.empty()) << r.id;
            EXPECT_GE(r.variables, 1) << r.id;
            EXPECT_EQ(r.resources, 0) << r.id;
        }
    }
}

TEST(Database, LookupWorks)
{
    const BugRecord *r = db.find("apache-25520");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->app, App::Apache);
    EXPECT_EQ(db.find("nonexistent"), nullptr);
    EXPECT_EQ(db.byApp(App::Mozilla).size(), 41u);
    EXPECT_EQ(db.byType(BugType::Deadlock).size(), 31u);
}

TEST(Database, AnchoredRecordsAgreeWithKernels)
{
    auto anchored = db.anchored();
    EXPECT_EQ(anchored.size(), bugs::allKernels().size());
    for (const auto *r : anchored) {
        const bugs::BugKernel *k = bugs::findKernel(r->kernelId);
        ASSERT_NE(k, nullptr) << r->id << " names unknown kernel "
                              << r->kernelId;
        const auto &info = k->info();
        EXPECT_EQ(r->app, info.app) << r->id;
        EXPECT_EQ(r->type, info.type) << r->id;
        EXPECT_EQ(r->patterns, info.patterns) << r->id;
        EXPECT_EQ(r->threads, info.threads) << r->id;
        if (r->isDeadlock())
            EXPECT_EQ(r->resources, info.resources) << r->id;
        else
            EXPECT_EQ(r->variables, info.variables) << r->id;
        // The record's access count must match the kernel's
        // manifestation certificate when one exists.
        if (!info.manifestation.empty()) {
            EXPECT_EQ(static_cast<std::size_t>(r->accesses),
                      info.manifestationLabels().size())
                << r->id;
        }
        if (r->isDeadlock())
            EXPECT_EQ(r->dlFix, info.dlFix) << r->id;
        else
            EXPECT_EQ(r->ndFix, info.ndFix) << r->id;
        EXPECT_EQ(r->tm, info.tm) << r->id;
    }
}

TEST(Findings, AllHeadlineFindingsMatch)
{
    auto findings = headlineFindings(analysis);
    ASSERT_EQ(findings.size(), 9u);
    for (const auto &f : findings) {
        EXPECT_TRUE(f.matches())
            << f.id << ": paper " << f.paperNumer << "/"
            << f.paperDenom << " vs computed " << f.computedNumer
            << "/" << f.computedDenom;
    }
}

TEST(Taxonomy, Names)
{
    EXPECT_STREQ(appName(App::MySQL), "MySQL");
    EXPECT_STREQ(bugTypeName(BugType::Deadlock), "deadlock");
    EXPECT_STREQ(patternName(Pattern::Atomicity), "atomicity");
    EXPECT_STREQ(nonDeadlockFixName(NonDeadlockFix::CondCheck),
                 "COND");
    EXPECT_STREQ(deadlockFixName(DeadlockFix::GiveUpResource),
                 "GiveUp");
    EXPECT_STREQ(tmHelpName(TmHelp::Maybe), "maybe");
    EXPECT_EQ(patternSetName({Pattern::Atomicity, Pattern::Order}),
              "atomicity+order");
    EXPECT_EQ(patternSetName({}), "-");
}

} // namespace
