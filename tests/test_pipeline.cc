/**
 * @file
 * Equivalence suite for the fused detection pipeline: over a corpus
 * of random programs and every registered kernel, the shared-context
 * Pipeline must reproduce the per-detector analyze() output exactly;
 * BatchRunner and DetectionStream must return the same reports at
 * every worker count; and the epoch race pass must agree with the
 * exhaustive pairwise enumeration on which pairs race.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bugs/registry.hh"
#include "detect/batch.hh"
#include "detect/context.hh"
#include "detect/pipeline.hh"
#include "detect/race_hb.hh"
#include "explore/parallel.hh"
#include "explore/randprog.hh"
#include "explore/runner.hh"
#include "sim/faults.hh"
#include "sim/policy.hh"
#include "support/metrics.hh"

namespace
{

using namespace lfm;
using trace::Trace;

/** Randprog shape varied with the seed (mirrors the fuzz sweep). */
explore::RandProgConfig
configFor(std::uint64_t seed)
{
    explore::RandProgConfig config;
    config.threads = 2 + static_cast<int>(seed % 3);
    config.variables = 1 + static_cast<int>(seed % 4);
    config.mutexes = 1 + static_cast<int>(seed % 2);
    config.opsPerThread = 3 + static_cast<int>(seed % 7);
    config.lockedFraction = (seed % 5) * 0.25;
    config.writeFraction = 0.3 + (seed % 3) * 0.2;
    config.consistentLocking = seed % 2 == 0;
    return config;
}

/** Fuzz traces plus one trace per registered kernel (a benign run
 * is fine — equivalence must hold on any trace). */
std::vector<Trace>
corpus()
{
    std::vector<Trace> traces;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        auto factory =
            explore::randomProgramFactory(configFor(seed), seed);
        sim::RandomPolicy policy;
        sim::ExecOptions opt;
        opt.seed = seed * 31 + 7;
        opt.maxDecisions = 5000;
        traces.push_back(
            sim::runProgram(factory, policy, opt).trace);
    }
    for (const auto *kernel : bugs::allKernels()) {
        sim::RandomPolicy policy;
        sim::ExecOptions opt;
        opt.seed = 1;
        opt.maxDecisions = 20000;
        traces.push_back(
            sim::runProgram(kernel->factory(bugs::Variant::Buggy),
                            policy, opt)
                .trace);
    }
    return traces;
}

void
expectSameFindings(const std::vector<detect::Finding> &a,
                   const std::vector<detect::Finding> &b,
                   const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].detector, b[i].detector) << what << " #" << i;
        EXPECT_EQ(a[i].category, b[i].category) << what << " #" << i;
        EXPECT_EQ(a[i].primaryObj, b[i].primaryObj)
            << what << " #" << i;
        EXPECT_EQ(a[i].events, b[i].events) << what << " #" << i;
        EXPECT_EQ(a[i].message, b[i].message) << what << " #" << i;
    }
}

TEST(Pipeline, MatchesPerDetectorAnalyze)
{
    detect::Pipeline pipeline;
    std::size_t index = 0;
    for (const auto &trace : corpus()) {
        const auto fused = pipeline.run(trace);
        std::vector<detect::Finding> separate;
        for (const auto &d : detect::allDetectors()) {
            auto part = d->analyze(trace);
            separate.insert(separate.end(),
                            std::make_move_iterator(part.begin()),
                            std::make_move_iterator(part.end()));
        }
        expectSameFindings(fused, separate,
                           "trace " + std::to_string(index));
        ++index;
    }
}

TEST(Pipeline, RunOnContextMatchesRunOnTrace)
{
    detect::Pipeline pipeline;
    for (const auto &trace : corpus()) {
        detect::AnalysisContext eager(trace, true);
        detect::AnalysisContext lazy(trace, false);
        const auto fromTrace = pipeline.run(trace);
        expectSameFindings(pipeline.run(eager), fromTrace, "eager");
        expectSameFindings(pipeline.run(lazy), fromTrace, "lazy");
    }
}

TEST(Pipeline, EpochPassAgreesWithPairwiseEnumeration)
{
    for (const auto &trace : corpus()) {
        detect::HbRaceDetector firstOnly;
        detect::HbRaceDetector full;
        full.setFirstOnly(false);

        // The epoch pass may pick different witness accesses, but
        // it must report exactly one finding per racing
        // {variable, thread pair} of the full enumeration.
        auto pairsOf =
            [&trace](const std::vector<detect::Finding> &findings) {
                std::set<std::string> pairs;
                for (const auto &f : findings) {
                    auto key =
                        std::minmax(trace.ev(f.events[0]).thread,
                                    trace.ev(f.events[1]).thread);
                    pairs.insert(std::to_string(f.primaryObj) + ":" +
                                 std::to_string(key.first) + ":" +
                                 std::to_string(key.second));
                }
                return pairs;
            };
        const auto epochFindings = firstOnly.analyze(trace);
        const auto epochPairs = pairsOf(epochFindings);
        EXPECT_EQ(epochPairs, pairsOf(full.analyze(trace)));
        EXPECT_EQ(epochFindings.size(), epochPairs.size());
        for (const auto &f : epochFindings) {
            const auto &a = trace.ev(f.events[0]);
            const auto &b = trace.ev(f.events[1]);
            detect::AnalysisContext ctx(trace);
            EXPECT_TRUE(ctx.hb().concurrent(a.seq, b.seq));
            EXPECT_TRUE(a.isWrite() || b.isWrite());
        }
    }
}

TEST(Context, SoaBuildMatchesReferenceBuild)
{
    // The arena/SoA sweep against the retained ordered-map build:
    // identical index contents (variables, per-variable access lists,
    // lock ops, release boundaries) and identical findings.
    detect::Pipeline pipeline;
    std::size_t index = 0;
    for (const auto &trace : corpus()) {
        detect::AnalysisContext soa(trace, pipeline.wantsHb());
        detect::AnalysisContext ref(
            trace, pipeline.wantsHb(), nullptr,
            detect::AnalysisContext::BuildMode::Reference);
        const std::string what = "trace " + std::to_string(index);

        ASSERT_EQ(soa.variables(), ref.variables()) << what;
        for (std::size_t vi = 0; vi < soa.variables().size(); ++vi) {
            const auto a = soa.accessesAt(vi);
            const auto b = ref.accessesAt(vi);
            ASSERT_EQ(a.size(), b.size()) << what << " var " << vi;
            EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()))
                << what << " var " << vi;
        }
        EXPECT_EQ(soa.lockOps(), ref.lockOps()) << what;
        for (const auto &event : trace.events()) {
            EXPECT_EQ(soa.releaseBetween(event.thread, event.seq,
                                         event.seq + 8),
                      ref.releaseBetween(event.thread, event.seq,
                                         event.seq + 8))
                << what << " seq " << event.seq;
        }

        expectSameFindings(pipeline.run(soa), pipeline.run(ref),
                           what + " soa vs reference");
        ++index;
    }
}

TEST(Context, ScratchReuseMatchesFreshContexts)
{
    // One scratch across the whole corpus, twice: the second pass
    // runs entirely on recycled allocations and must still be
    // finding-identical to fresh per-trace contexts.
    detect::Pipeline pipeline;
    detect::ContextScratch scratch;
    const auto traces = corpus();
    for (int pass = 0; pass < 2; ++pass) {
        std::size_t index = 0;
        for (const auto &trace : traces) {
            expectSameFindings(pipeline.run(trace, scratch),
                               pipeline.run(trace),
                               "pass " + std::to_string(pass) +
                                   " trace " + std::to_string(index));
            ++index;
        }
    }
}

TEST(Context, LazyHbOnScratchMatchesPrecomputed)
{
    detect::ContextScratch scratch;
    for (const auto &trace : corpus()) {
        if (trace.empty())
            continue;
        detect::AnalysisContext eager(trace, true);
        detect::AnalysisContext lazy(trace, false, &scratch);
        const auto &events = trace.events();
        for (std::size_t i = 0; i < events.size(); i += 5) {
            for (std::size_t j = i + 1; j < events.size(); j += 7) {
                EXPECT_EQ(eager.hb().concurrent(events[i].seq,
                                                events[j].seq),
                          lazy.hb().concurrent(events[i].seq,
                                               events[j].seq))
                    << events[i].seq << " vs " << events[j].seq;
            }
        }
    }
}

TEST(Batch, ReportsAreWorkerCountInvariant)
{
    detect::Pipeline pipeline;
    const auto traces = corpus();

    const detect::BatchRunner one(1);
    const auto reference = one.run(pipeline, traces);
    ASSERT_EQ(reference.size(), traces.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(reference[i].key, i);
        expectSameFindings(reference[i].findings,
                           pipeline.run(traces[i]),
                           "batch trace " + std::to_string(i));
    }

    for (unsigned workers : {2u, 4u}) {
        const auto reports =
            detect::BatchRunner(workers).run(pipeline, traces);
        ASSERT_EQ(reports.size(), reference.size()) << workers;
        for (std::size_t i = 0; i < reports.size(); ++i) {
            EXPECT_EQ(reports[i].key, reference[i].key);
            expectSameFindings(reports[i].findings,
                               reference[i].findings,
                               std::to_string(workers) + " workers, " +
                                   "trace " + std::to_string(i));
        }
    }
}

TEST(Batch, WorkerCountsMatchReferencePathUnderFaultInjection)
{
    // The batch path (SoA contexts on per-worker scratches) against
    // the retained reference build, at every worker count, over a
    // plain kernel corpus and over one produced under deterministic
    // fault injection (spurious wakes, tryLock failures, scheduler
    // perturbation) — hostile schedules make hostile traces.
    detect::Pipeline pipeline;
    for (const bool faulted : {false, true}) {
        std::vector<Trace> traces;
        const auto plan = sim::FaultPlan::fromSeed(11);
        for (const auto *kernel : bugs::allKernels()) {
            sim::RandomPolicy inner;
            sim::FaultInjectingPolicy policy(plan, inner);
            sim::ExecOptions opt;
            opt.seed = 2;
            opt.maxDecisions = 20000;
            if (faulted)
                opt.faults = &plan;
            traces.push_back(
                sim::runProgram(
                    kernel->factory(bugs::Variant::Buggy),
                    faulted ? static_cast<sim::SchedulePolicy &>(policy)
                            : static_cast<sim::SchedulePolicy &>(inner),
                    opt)
                    .trace);
        }

        std::vector<std::vector<detect::Finding>> reference;
        for (const auto &trace : traces) {
            detect::AnalysisContext ref(
                trace, pipeline.wantsHb(), nullptr,
                detect::AnalysisContext::BuildMode::Reference);
            reference.push_back(pipeline.run(ref));
        }

        for (unsigned workers : {1u, 2u, 4u}) {
            const auto reports =
                detect::BatchRunner(workers).run(pipeline, traces);
            ASSERT_EQ(reports.size(), traces.size());
            for (std::size_t i = 0; i < reports.size(); ++i) {
                EXPECT_EQ(reports[i].key, i);
                expectSameFindings(
                    reports[i].findings, reference[i],
                    std::string(faulted ? "faulted" : "plain") + " @" +
                        std::to_string(workers) + " workers, trace " +
                        std::to_string(i));
            }
        }
    }
}

TEST(Batch, StreamMatchesBatchUnderOutOfOrderSubmission)
{
    detect::Pipeline pipeline;
    const auto traces = corpus();
    const auto reference =
        detect::BatchRunner(1).run(pipeline, traces);

    for (unsigned workers : {1u, 3u}) {
        detect::DetectionStream stream(pipeline, workers);
        // Submit back to front: finish() must still return reports
        // in key order, identical to the batch result.
        for (std::size_t i = traces.size(); i-- > 0;)
            stream.submit(i, traces[i]);
        const auto reports = stream.finish();
        ASSERT_EQ(reports.size(), reference.size()) << workers;
        for (std::size_t i = 0; i < reports.size(); ++i) {
            EXPECT_EQ(reports[i].key, reference[i].key);
            expectSameFindings(reports[i].findings,
                               reference[i].findings,
                               "stream " + std::to_string(workers) +
                                   " workers, trace " +
                                   std::to_string(i));
        }
    }
}

TEST(Batch, StressCampaignStreamsIntoDetection)
{
    // The intended end-to-end shape: a stress campaign feeds every
    // execution's trace into a DetectionStream as it completes, and
    // the merged report equals re-running detection per seed.
    auto factory = explore::randomProgramFactory(configFor(3), 3);
    detect::Pipeline pipeline;

    explore::StressOptions opt;
    opt.runs = 12;
    opt.exec.maxDecisions = 5000;

    detect::DetectionStream stream(pipeline, 2);
    std::atomic<std::size_t> delivered{0};
    opt.onExecution = [&](std::size_t index,
                          const sim::Execution &exec) {
        delivered.fetch_add(1);
        stream.submit(index, exec.trace);
    };
    explore::ParallelRunner(2).stress(
        factory, explore::makePolicy<sim::RandomPolicy>(), opt);
    const auto reports = stream.finish();

    EXPECT_EQ(delivered.load(), opt.runs);
    ASSERT_EQ(reports.size(), opt.runs);
    for (std::size_t i = 0; i < reports.size(); ++i) {
        EXPECT_EQ(reports[i].key, i);
        sim::RandomPolicy policy;
        sim::ExecOptions exec = opt.exec;
        exec.seed = opt.firstSeed + i;
        const auto rerun = sim::runProgram(factory, policy, exec);
        expectSameFindings(reports[i].findings,
                           pipeline.run(rerun.trace),
                           "seed " + std::to_string(i));
    }
}

TEST(Batch, ConcurrentSubmitRacingFinishLosesNoAcceptedTrace)
{
    // Producers hammer submit() while the consumer calls finish()
    // with no hand-off protocol at all: the race is the point. The
    // contract under test is exactly the one the serve layer leans
    // on — every submit() that returned true yields a report, every
    // submit() that returned false is counted as rejected, and the
    // two sets partition the attempts.
    detect::Pipeline pipeline;
    const auto traces = corpus();

    support::metrics::setEnabled(true);
    auto &rejected =
        support::metrics::counter("detect.stream.rejected");

    constexpr unsigned kProducers = 4;
    constexpr std::uint64_t kPerProducer = 40;
    for (int round = 0; round < 8; ++round) {
        const std::uint64_t before = rejected.value();
        detect::DetectionStream stream(pipeline, 2);

        std::vector<std::vector<std::uint64_t>> accepted(kProducers);
        std::vector<std::thread> producers;
        producers.reserve(kProducers);
        for (unsigned p = 0; p < kProducers; ++p) {
            producers.emplace_back([&, p] {
                for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                    const std::uint64_t key = p * kPerProducer + i;
                    if (stream.submit(key,
                                      traces[key % traces.size()]))
                        accepted[p].push_back(key);
                }
            });
        }
        // finish() races the producers: some submissions land before
        // the queue closes, the rest must be rejected — never lost.
        const auto reports = stream.finish();
        for (auto &producer : producers)
            producer.join();

        std::vector<std::uint64_t> acceptedKeys;
        for (const auto &keys : accepted)
            acceptedKeys.insert(acceptedKeys.end(), keys.begin(),
                                keys.end());
        std::sort(acceptedKeys.begin(), acceptedKeys.end());

        ASSERT_EQ(reports.size(), acceptedKeys.size()) << round;
        for (std::size_t i = 0; i < reports.size(); ++i)
            EXPECT_EQ(reports[i].key, acceptedKeys[i]) << round;

        const std::uint64_t attempts = kProducers * kPerProducer;
        EXPECT_EQ(rejected.value() - before,
                  attempts - acceptedKeys.size())
            << round;
    }
    support::metrics::setEnabled(false);
}

TEST(Batch, SubmitAfterFinishIsRejectedAndCounted)
{
    detect::Pipeline pipeline;
    const auto traces = corpus();

    support::metrics::setEnabled(true);
    auto &rejected =
        support::metrics::counter("detect.stream.rejected");
    const std::uint64_t before = rejected.value();

    detect::DetectionStream stream(pipeline, 1);
    EXPECT_TRUE(stream.submit(7, traces[0]));
    const auto reports = stream.finish();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].key, 7u);

    // The queue is closed for good: every later submit is refused
    // and counted, and a second finish() stays empty rather than
    // resurrecting the stream.
    EXPECT_FALSE(stream.submit(8, traces[1 % traces.size()]));
    EXPECT_FALSE(stream.submit(9, traces[2 % traces.size()]));
    EXPECT_EQ(rejected.value() - before, 2u);
    EXPECT_TRUE(stream.finish().empty());

    support::metrics::setEnabled(false);
}

} // namespace
