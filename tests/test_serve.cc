/**
 * @file
 * End-to-end gates for the lfm-serve daemon layer, driven over real
 * sockets through the blocking client in serve/http.hh:
 *
 *  (a) overload: past the per-tenant admission budget the service
 *      answers 503 with a Retry-After that follows the seeded
 *      backoff policy, while every *accepted* upload still runs to
 *      a complete (or explicitly truncated) report;
 *  (b) crash containment: a deliberately segfaulting detector under
 *      SandboxPolicy::Fork yields a 500 carrying a crash report for
 *      the poisoned trace, while a concurrent benign request — and
 *      the daemon itself — finish unharmed;
 *  (c) crash-resume: a service process SIGKILL'd in the middle of an
 *      accepted campaign is restarted over the same state directory
 *      and serves findings byte-identical to an uninterrupted run;
 *  (d) byte-identity: the HTTP findings document (streamed chunked
 *      or buffered) equals `lfm_served --batch`'s generator, which
 *      itself equals detect::reportsJson on the same corpus.
 *
 * The SIGKILL test forks a real child process, so this suite stays
 * out of the TSan battery (ci.sh runs it in the plain build only);
 * the blocking/crashing test detectors are keyed to marker thread
 * names and emit no findings, so their presence in a pipeline never
 * changes a findings document.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "detect/batch.hh"
#include "detect/context.hh"
#include "detect/detector.hh"
#include "detect/pipeline.hh"
#include "serve/http.hh"
#include "serve/service.hh"
#include "support/sandbox.hh"
#include "trace/corpus.hh"
#include "trace/serialize.hh"

namespace
{

using namespace lfm;

// ------------------------------------------------------------------
// Fixture traces: two benign examples plus marker traces that flip
// the test detectors below. Marker traces are ordinary valid traces;
// only the registered name of thread 1 differs.
// ------------------------------------------------------------------

const char *const kRacyCounter = "# lfm-trace v1\n"
                                 "object 1 var 0 counter\n"
                                 "object 2 mutex 0 m\n"
                                 "thread 1 worker-a\n"
                                 "thread 2 worker-b\n"
                                 "event 1 thread_begin 0 0 0 %\n"
                                 "event 2 thread_begin 0 0 0 %\n"
                                 "event 1 read 1 0 0 %\n"
                                 "event 2 write 1 0 0 %\n"
                                 "event 1 write 1 0 0 %\n"
                                 "event 1 lock 2 0 0 %\n"
                                 "event 1 unlock 2 0 0 %\n"
                                 "event 1 thread_end 0 0 0 %\n"
                                 "event 2 thread_end 0 0 0 %\n";

const char *const kAbbaDeadlock = "# lfm-trace v1\n"
                                  "object 1 mutex 0 lock-a\n"
                                  "object 2 mutex 0 lock-b\n"
                                  "thread 1 acquirer-ab\n"
                                  "thread 2 acquirer-ba\n"
                                  "event 1 thread_begin 0 0 0 %\n"
                                  "event 2 thread_begin 0 0 0 %\n"
                                  "event 1 lock 1 0 0 %\n"
                                  "event 1 lock 2 0 0 %\n"
                                  "event 1 unlock 2 0 0 %\n"
                                  "event 1 unlock 1 0 0 %\n"
                                  "event 2 lock 2 0 0 %\n"
                                  "event 2 lock 1 0 0 %\n"
                                  "event 2 unlock 1 0 0 %\n"
                                  "event 2 unlock 2 0 0 %\n"
                                  "event 1 thread_end 0 0 0 %\n"
                                  "event 2 thread_end 0 0 0 %\n";

trace::Trace
markerTrace(const std::string &threadOneName)
{
    std::string text = kRacyCounter;
    const std::string from = "thread 1 worker-a";
    text.replace(text.find(from), from.size(),
                 "thread 1 " + threadOneName);
    std::string error;
    auto parsed = trace::traceFromString(text, &error);
    EXPECT_TRUE(parsed.has_value()) << error;
    return *parsed;
}

trace::Trace
parseTrace(const char *text)
{
    std::string error;
    auto parsed = trace::traceFromString(text, &error);
    EXPECT_TRUE(parsed.has_value()) << error;
    return *parsed;
}

std::vector<trace::Trace>
benignTraces()
{
    std::vector<trace::Trace> traces;
    traces.push_back(parseTrace(kRacyCounter));
    traces.push_back(parseTrace(kAbbaDeadlock));
    traces.push_back(parseTrace(kRacyCounter));
    return traces;
}

/** The document every byte-equality gate compares against: the
 * pipeline's batch reports rendered by detect::reportsJson, plus the
 * trailing newline every serialized document carries. */
std::string
referenceDoc(const detect::Pipeline &pipeline,
             const std::vector<trace::Trace> &traces)
{
    const auto reports = detect::BatchRunner(1).run(pipeline, traces);
    return detect::reportsJson(traces, reports).str() + "\n";
}

// ------------------------------------------------------------------
// Test detectors. Both are keyed to marker thread names and emit no
// findings, so adding them to a pipeline never changes a document.
// ------------------------------------------------------------------

/** Parks inside the pipeline while the gate is closed, so a test can
 * hold a tenant's admission slot at a deterministic point. The wait
 * is bounded so a broken test fails instead of wedging ctest. */
class GateDetector : public detect::Detector
{
  public:
    std::vector<detect::Finding>
    fromContext(const detect::AnalysisContext &ctx) const override
    {
        if (ctx.source().threadName(1) != "gate-me")
            return {};
        entered().fetch_add(1);
        if (notifyFd().load() != -1) {
            const char byte = 'g';
            (void)!write(notifyFd().load(), &byte, 1);
            // Resume-test child: park until SIGKILL arrives.
            for (;;)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
        }
        for (int i = 0; i < 20000 && !opened().load(); ++i)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        return {};
    }

    const char *name() const override { return "test-gate"; }

    static std::atomic<int> &
    entered()
    {
        static std::atomic<int> count{0};
        return count;
    }

    static std::atomic<bool> &
    opened()
    {
        static std::atomic<bool> open{false};
        return open;
    }

    /** When set, fromContext writes one byte here and parks forever
     * (the resume test's "kill me now" signal). */
    static std::atomic<int> &
    notifyFd()
    {
        static std::atomic<int> fd{-1};
        return fd;
    }
};

/** Segfaults on the marker trace — only ever run under
 * SandboxPolicy::Fork, where the forked child absorbs the signal. */
class CrashDetector : public detect::Detector
{
  public:
    std::vector<detect::Finding>
    fromContext(const detect::AnalysisContext &ctx) const override
    {
        if (ctx.source().threadName(1) == "crash-me") {
            volatile int *null = nullptr;
            *null = 1;
        }
        return {};
    }

    const char *name() const override { return "test-crash"; }
};

detect::Pipeline
pipelineWith(std::unique_ptr<detect::Detector> extra)
{
    auto detectors = detect::allDetectors();
    detectors.push_back(std::move(extra));
    return detect::Pipeline(std::move(detectors));
}

/** Service + HTTP server on an ephemeral loopback port. */
struct TestServer
{
    explicit TestServer(const detect::Pipeline &pipeline,
                        serve::ServiceOptions options = {})
        : service(pipeline, std::move(options)),
          server(service.handler())
    {
        std::string error;
        started = server.start(&error);
        EXPECT_TRUE(started) << error;
    }

    serve::ClientResponse
    request(const std::string &method, const std::string &target,
            const std::string &body = {},
            const std::vector<std::pair<std::string, std::string>>
                &headers = {})
    {
        return serve::httpRequest(server.port(), method, target,
                                  body, headers);
    }

    serve::DetectionService service;
    serve::HttpServer server;
    bool started = false;
};

// ------------------------------------------------------------------
// Gate (d): HTTP == --batch generator == reportsJson, byte for byte.
// ------------------------------------------------------------------

TEST(Serve, HttpFindingsMatchBatchCliAndReportsJson)
{
    const auto traces = benignTraces();
    const std::string corpusBytes = trace::encodeCorpus(traces);
    detect::Pipeline pipeline;
    const std::string expected = referenceDoc(pipeline, traces);

    // The --batch CLI generator agrees with reportsJson itself.
    std::vector<std::uint8_t> aligned(corpusBytes.begin(),
                                      corpusBytes.end());
    std::string error;
    auto reader = trace::CorpusReader::fromBuffer(
        aligned.data(), aligned.size(), &error);
    ASSERT_TRUE(reader.has_value()) << error;
    EXPECT_EQ(serve::detectDocumentForCorpus(pipeline, *reader),
              expected);

    TestServer ts(pipeline);
    ASSERT_TRUE(ts.started);

    // Streamed (chunked) one-shot upload. The outcome rides in a
    // chunked trailer (the status line is long gone by the time the
    // outcome is known).
    auto streamed =
        ts.request("POST", "/detect?campaign=gate-d", corpusBytes);
    ASSERT_TRUE(streamed.ok) << streamed.error;
    EXPECT_EQ(streamed.status, 200);
    EXPECT_EQ(streamed.body, expected);
    const std::string *streamOutcome =
        streamed.header("x-lfm-outcome");
    ASSERT_NE(streamOutcome, nullptr);
    EXPECT_EQ(*streamOutcome, "completed");
    const std::string *streamCrashed =
        streamed.header("x-lfm-crashed");
    ASSERT_NE(streamCrashed, nullptr);
    EXPECT_EQ(*streamCrashed, "0");

    // Buffered one-shot upload.
    auto buffered = ts.request(
        "POST", "/detect?campaign=gate-d2&stream=0", corpusBytes);
    ASSERT_TRUE(buffered.ok) << buffered.error;
    EXPECT_EQ(buffered.status, 200);
    EXPECT_EQ(buffered.body, expected);
    const std::string *outcome = buffered.header("x-lfm-outcome");
    ASSERT_NE(outcome, nullptr);
    EXPECT_EQ(*outcome, "completed");

    // The stored findings endpoint serves the same bytes again.
    auto stored =
        ts.request("GET", "/campaigns/gate-d/findings");
    ASSERT_TRUE(stored.ok) << stored.error;
    EXPECT_EQ(stored.status, 200);
    EXPECT_EQ(stored.body, expected);

    // A streaming campaign session built trace by trace converges on
    // the identical document too.
    EXPECT_EQ(ts.request("POST", "/campaigns/session").status, 200);
    for (const auto &t : traces) {
        auto put = ts.request("POST", "/campaigns/session/traces",
                              trace::traceToString(t));
        EXPECT_EQ(put.status, 200) << put.body;
    }
    auto finished =
        ts.request("POST", "/campaigns/session/finish");
    ASSERT_TRUE(finished.ok) << finished.error;
    EXPECT_EQ(finished.status, 200);
    EXPECT_EQ(finished.body, expected);
}

// ------------------------------------------------------------------
// Gate (a): overload is refused with backoff; accepted work always
// completes (or is explicitly truncated, below).
// ------------------------------------------------------------------

TEST(Serve, OverloadIsRefusedWithRetryAfterWhileAcceptedWorkCompletes)
{
    GateDetector::opened().store(false);
    GateDetector::entered().store(0);

    auto pipeline = pipelineWith(std::make_unique<GateDetector>());
    serve::ServiceOptions options;
    options.maxConcurrent = 1;  // one slot per tenant
    TestServer ts(pipeline, options);
    ASSERT_TRUE(ts.started);

    const std::vector<trace::Trace> gated{markerTrace("gate-me")};
    const std::string gatedBytes = trace::encodeCorpus(gated);
    const auto benign = benignTraces();
    const std::string benignBytes = trace::encodeCorpus(benign);

    // Occupy the default tenant's only slot with a request parked
    // inside the pipeline.
    serve::ClientResponse slowResponse;
    std::thread slow([&] {
        slowResponse = serve::httpRequest(
            ts.server.port(), "POST", "/detect?campaign=slow",
            gatedBytes);
    });
    for (int i = 0; i < 20000 && GateDetector::entered().load() == 0;
         ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_GT(GateDetector::entered().load(), 0);

    // The next upload from the same tenant is refused, not queued.
    auto rejected =
        ts.request("POST", "/detect?campaign=refused", benignBytes);
    ASSERT_TRUE(rejected.ok) << rejected.error;
    EXPECT_EQ(rejected.status, 503);
    const std::string *retryAfter = rejected.header("retry-after");
    ASSERT_NE(retryAfter, nullptr);
    const unsigned firstDelay =
        static_cast<unsigned>(std::stoul(*retryAfter));
    EXPECT_GE(firstDelay, 1u);
    EXPECT_NE(rejected.body.find("retry_after_s"),
              std::string::npos);

    // Hammering the overloaded daemon earns exponentially longer
    // waits (the seeded policy is deterministic, so by the sixth
    // rejection the delay is strictly past the first one).
    unsigned lastDelay = firstDelay;
    for (int i = 0; i < 5; ++i) {
        auto again = ts.request("POST", "/detect?campaign=refused",
                                benignBytes);
        EXPECT_EQ(again.status, 503);
        const std::string *header = again.header("retry-after");
        ASSERT_NE(header, nullptr);
        lastDelay = static_cast<unsigned>(std::stoul(*header));
    }
    EXPECT_GT(lastDelay, firstDelay);

    // Admission is per tenant: another tenant sails through while
    // the first one is saturated.
    auto other = ts.request("POST", "/detect?campaign=other-tenant",
                            benignBytes,
                            {{"X-LFM-Tenant", "tenant-b"}});
    ASSERT_TRUE(other.ok) << other.error;
    EXPECT_EQ(other.status, 200);
    EXPECT_EQ(other.body, referenceDoc(pipeline, benign));

    // Open the gate: the accepted slow upload completes normally —
    // admission refused the excess, it never dropped accepted work.
    GateDetector::opened().store(true);
    slow.join();
    ASSERT_TRUE(slowResponse.ok) << slowResponse.error;
    EXPECT_EQ(slowResponse.status, 200);
    EXPECT_EQ(slowResponse.body, referenceDoc(pipeline, gated));

    // With the slot free again the refused tenant gets in (poll a
    // little: the slot is released just after the response flushes).
    serve::ClientResponse retried;
    for (int i = 0; i < 100; ++i) {
        retried = ts.request("POST", "/detect?campaign=retried",
                             benignBytes);
        if (retried.status == 200)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(retried.status, 200);
    EXPECT_EQ(retried.body, referenceDoc(pipeline, benign));
}

/** A too-slow analysis is reeled in by the request watchdog and the
 * response says so: deadline outcome, untouched traces explicitly
 * "skipped" — a truncated report, never a hung connection. */
TEST(Serve, DeadlineTruncatesWithExplicitSkippedTail)
{
    GateDetector::opened().store(false);
    GateDetector::entered().store(0);

    auto pipeline = pipelineWith(std::make_unique<GateDetector>());
    TestServer ts(pipeline);
    ASSERT_TRUE(ts.started);

    // Trace 0 parks in the gate well past the 50ms deadline; traces
    // 1..2 must come back skipped once the watchdog fires. The gate
    // is opened by a helper as soon as the request is inside it, so
    // the analysis of trace 0 itself still completes.
    std::vector<trace::Trace> traces{markerTrace("gate-me")};
    for (auto &t : benignTraces())
        traces.push_back(std::move(t));
    std::thread opener([&] {
        for (int i = 0;
             i < 20000 && GateDetector::entered().load() == 0; ++i)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        // Hold the gate shut past the deadline, then release.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(200));
        GateDetector::opened().store(true);
    });
    auto resp = ts.request(
        "POST", "/detect?campaign=late&deadline_ms=50&stream=0",
        trace::encodeCorpus(traces));
    opener.join();
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(resp.status, 200);
    const std::string *outcome = resp.header("x-lfm-outcome");
    ASSERT_NE(outcome, nullptr);
    EXPECT_EQ(*outcome, "deadline");
    EXPECT_NE(resp.body.find("\"status\": \"skipped\""),
              std::string::npos)
        << resp.body;
}

// ------------------------------------------------------------------
// Gate (b): a segfaulting detector is contained by the fork sandbox.
// ------------------------------------------------------------------

TEST(Serve, DetectorCrashIsContainedWhileConcurrentRequestsComplete)
{
    auto pipeline = pipelineWith(std::make_unique<CrashDetector>());
    serve::ServiceOptions options;
    options.sandbox.policy = support::SandboxPolicy::Fork;
    TestServer ts(pipeline, options);
    ASSERT_TRUE(ts.started);

    std::vector<trace::Trace> poisoned{parseTrace(kRacyCounter),
                                       markerTrace("crash-me")};
    const auto benign = benignTraces();

    // A benign request races the crashing one end to end.
    serve::ClientResponse benignResponse;
    std::thread concurrent([&] {
        benignResponse = serve::httpRequest(
            ts.server.port(), "POST", "/detect?campaign=benign",
            trace::encodeCorpus(benign));
    });

    auto crashed = ts.request(
        "POST", "/detect?campaign=boom&stream=0",
        trace::encodeCorpus(poisoned));
    ASSERT_TRUE(crashed.ok) << crashed.error;
    EXPECT_EQ(crashed.status, 500);
    EXPECT_NE(crashed.body.find("\"status\": \"crashed\""),
              std::string::npos)
        << crashed.body;
    EXPECT_NE(crashed.body.find("detection worker crashed: SIGSEGV"),
              std::string::npos)
        << crashed.body;
    // The clean trace in the same upload was still analyzed.
    EXPECT_NE(crashed.body.find("\"status\": \"analyzed\""),
              std::string::npos)
        << crashed.body;

    concurrent.join();
    ASSERT_TRUE(benignResponse.ok) << benignResponse.error;
    EXPECT_EQ(benignResponse.status, 200);
    EXPECT_EQ(benignResponse.body, referenceDoc(pipeline, benign));

    // Streamed multi-trace upload whose FIRST trace crashes: the
    // status line is deferred until the first result, so the crash
    // still picks a 500, and the trailer confirms it.
    std::vector<trace::Trace> crashFirst{markerTrace("crash-me"),
                                         parseTrace(kRacyCounter)};
    auto streamedCrash =
        ts.request("POST", "/detect?campaign=boom-first",
                   trace::encodeCorpus(crashFirst));
    ASSERT_TRUE(streamedCrash.ok) << streamedCrash.error;
    EXPECT_EQ(streamedCrash.status, 500);
    const std::string *crashTrailer =
        streamedCrash.header("x-lfm-crashed");
    ASSERT_NE(crashTrailer, nullptr);
    EXPECT_EQ(*crashTrailer, "1");

    // A crash AFTER the streamed 200 is committed cannot rewrite the
    // status line — the trailer is the honest channel for it.
    std::vector<trace::Trace> crashLater{parseTrace(kRacyCounter),
                                         markerTrace("crash-me")};
    auto lateCrash =
        ts.request("POST", "/detect?campaign=boom-late",
                   trace::encodeCorpus(crashLater));
    ASSERT_TRUE(lateCrash.ok) << lateCrash.error;
    EXPECT_EQ(lateCrash.status, 200);
    const std::string *lateTrailer =
        lateCrash.header("x-lfm-crashed");
    ASSERT_NE(lateTrailer, nullptr);
    EXPECT_EQ(*lateTrailer, "1");
    EXPECT_NE(lateCrash.body.find("\"status\": \"crashed\""),
              std::string::npos)
        << lateCrash.body;

    // The daemon itself is unharmed.
    auto health = ts.request("GET", "/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_NE(health.body.find("\"status\": \"ok\""),
              std::string::npos);
}

// ------------------------------------------------------------------
// Gate (c): SIGKILL mid-campaign, restart, byte-identical findings.
// ------------------------------------------------------------------

TEST(Serve, SigkillMidCampaignThenRestartServesIdenticalFindings)
{
    namespace fs = std::filesystem;
    const fs::path state =
        fs::temp_directory_path() / "lfm_serve_sigkill_resume";
    fs::remove_all(state);

    // Trace 1 carries the gate marker: the child journals all three
    // images, finishes (and journals) trace 0, then parks inside
    // trace 1 and tells us so — the moment we SIGKILL it.
    std::vector<trace::Trace> traces{parseTrace(kRacyCounter),
                                     markerTrace("gate-me"),
                                     parseTrace(kAbbaDeadlock)};
    const std::string corpusBytes = trace::encodeCorpus(traces);

    int pipefd[2];
    ASSERT_EQ(pipe(pipefd), 0);
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child: accept the campaign and never return from it.
        close(pipefd[0]);
        GateDetector::notifyFd().store(pipefd[1]);
        auto pipeline =
            pipelineWith(std::make_unique<GateDetector>());
        serve::ServiceOptions options;
        options.stateDir = state.string();
        // SIGKILL kills the process, not the page cache: skipping
        // fsync keeps the test fast without weakening the gate.
        options.journalFsync = false;
        serve::DetectionService service(pipeline, options);
        service.recover();
        serve::HttpServer server(service.handler());
        if (!server.start())
            _exit(2);
        (void)serve::httpRequest(server.port(), "POST",
                                 "/detect?campaign=victim&stream=0",
                                 corpusBytes);
        _exit(3);  // unreachable: the request parks until SIGKILL
    }
    close(pipefd[1]);
    char byte = 0;
    ASSERT_EQ(read(pipefd[0], &byte, 1), 1);
    close(pipefd[0]);
    ASSERT_EQ(kill(child, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // Restart over the same state directory with the plain pipeline
    // (the gate detector emits no findings, so an uninterrupted run
    // with either pipeline produces the same bytes).
    detect::Pipeline pipeline;
    serve::ServiceOptions options;
    options.stateDir = state.string();
    serve::DetectionService service(pipeline, options);
    EXPECT_EQ(service.recover(), 1u);
    serve::HttpServer server(service.handler());
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    auto resumed = serve::httpRequest(
        server.port(), "GET", "/campaigns/victim/findings");
    ASSERT_TRUE(resumed.ok) << resumed.error;
    EXPECT_EQ(resumed.status, 200);
    EXPECT_EQ(resumed.body, referenceDoc(pipeline, traces));

    fs::remove_all(state);
}

// ------------------------------------------------------------------
// A peer that stops reading must not pin a handler thread: the send
// timeout breaks the connection and drain() still terminates.
// ------------------------------------------------------------------

TEST(Serve, StalledReaderIsBoundedBySendTimeout)
{
    serve::HttpServerOptions options;
    options.sendTimeoutSec = 1;
    std::atomic<bool> handlerDone{false};
    serve::HttpServer server(
        [&](const serve::HttpRequest &, serve::ResponseWriter &w) {
            // Stream far more than any socket buffer holds; once the
            // peer's window is full the send times out, the writer
            // turns sticky-broken, and the rest is discarded fast.
            w.beginChunked(200, "text/plain");
            const std::string blob(1 << 20, 'x');
            for (int i = 0; i < 64; ++i)
                w.chunk(blob);
            w.endChunked();
            handlerDone.store(true);
        },
        options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // A raw client that sends its request and then never reads.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const std::string req =
        "GET /stall HTTP/1.1\r\nHost: x\r\n\r\n";
    ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
              static_cast<ssize_t>(req.size()));

    // The handler must come back on its own — well before the 20s a
    // wedged send would take to fail this assert.
    for (int i = 0; i < 20000 && !handlerDone.load(); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_TRUE(handlerDone.load());
    ::close(fd);

    // And drain terminates instead of waiting on the stalled writer.
    server.drain();
    EXPECT_EQ(server.activeConnections(), 0u);
}

// ------------------------------------------------------------------
// Bounded memory: completed campaigns are evicted past the cap and
// the tenant admission table only holds tenants with work in flight.
// ------------------------------------------------------------------

TEST(Serve, CompletedCampaignsEvictAndTenantTableStaysBounded)
{
    detect::Pipeline pipeline;
    serve::ServiceOptions options;
    options.maxCompletedCampaigns = 2;
    TestServer ts(pipeline, options);
    ASSERT_TRUE(ts.started);

    const std::string body = trace::encodeCorpus(benignTraces());
    for (const char *name : {"ev-1", "ev-2", "ev-3"}) {
        auto resp = ts.request(
            "POST",
            std::string("/detect?campaign=") + name + "&stream=0",
            body, {{"X-LFM-Tenant", std::string("tenant-") + name}});
        ASSERT_TRUE(resp.ok) << resp.error;
        EXPECT_EQ(resp.status, 200);
    }

    // Oldest-finished campaign is gone from memory; the newer two
    // are still served.
    EXPECT_EQ(ts.request("GET", "/campaigns/ev-1/findings").status,
              404);
    EXPECT_EQ(ts.request("GET", "/campaigns/ev-2/findings").status,
              200);
    EXPECT_EQ(ts.request("GET", "/campaigns/ev-3/findings").status,
              200);

    // The evicted name stays reserved: reusing it would fork a
    // second history onto its journal records.
    EXPECT_EQ(
        ts.request("POST", "/detect?campaign=ev-1&stream=0", body)
            .status,
        409);
    EXPECT_EQ(ts.request("POST", "/campaigns/ev-1").status, 409);

    // Every upload above used a distinct tenant; once their requests
    // released, no admission state is retained (release runs just
    // after the response flushes, so poll briefly).
    serve::ServiceStats stats;
    for (int i = 0; i < 500; ++i) {
        stats = ts.service.stats();
        if (stats.tenants == 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(stats.tenants, 0u);
    EXPECT_EQ(stats.campaigns, 2u);
}

// ------------------------------------------------------------------
// Daemon surface: health, metrics, raw-log ingest, drain, errors.
// ------------------------------------------------------------------

TEST(Serve, HealthzMetricsRawLogsAndDrainSemantics)
{
    detect::Pipeline pipeline;
    TestServer ts(pipeline);
    ASSERT_TRUE(ts.started);

    auto health = ts.request("GET", "/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_NE(health.body.find("\"status\": \"ok\""),
              std::string::npos);
    EXPECT_NE(health.body.find("\"admitted\""), std::string::npos);

    auto metrics = ts.request("GET", "/metrics");
    EXPECT_EQ(metrics.status, 200);

    // A raw pthread-style log is sniffed, imported (PR 8 grammar),
    // and analyzed; the import accounting rides back in headers.
    const std::string rawLog = "10 1 thread_start\n"
                               "20 1 lock 0x10\n"
                               "30 1 write 0x100 4\n"
                               "40 1 unlock 0x10\n"
                               "50 2 thread_start\n"
                               "60 2 write 0x100 4\n"
                               "70 1 thread_exit\n"
                               "80 2 thread_exit\n";
    auto imported =
        ts.request("POST", "/detect?campaign=rawlog", rawLog);
    ASSERT_TRUE(imported.ok) << imported.error;
    EXPECT_EQ(imported.status, 200);
    const std::string *records =
        imported.header("x-lfm-import-records");
    ASSERT_NE(records, nullptr);
    EXPECT_EQ(*records, "8");
    const std::string *quarantined =
        imported.header("x-lfm-import-quarantined");
    ASSERT_NE(quarantined, nullptr);
    EXPECT_EQ(*quarantined, "0");

    // Defensive surface.
    EXPECT_EQ(ts.request("GET", "/nope").status, 404);
    EXPECT_EQ(ts.request("GET", "/detect").status, 405);
    EXPECT_EQ(ts.request("POST", "/detect?campaign=bad//name",
                         rawLog)
                  .status,
              400);
    EXPECT_EQ(ts.request("POST", "/detect?campaign=rawlog",
                         rawLog)
                  .status,
              409);
    auto garbage = ts.request("POST", "/detect?campaign=garbage",
                              "LFMC\x01\x02 this is not a corpus");
    EXPECT_EQ(garbage.status, 422);

    // Draining: new work is refused with Retry-After, read-only
    // endpoints keep answering and report the drain.
    ts.service.beginDrain();
    auto refused = ts.request("POST", "/detect?campaign=late-work",
                              rawLog);
    EXPECT_EQ(refused.status, 503);
    EXPECT_NE(refused.header("retry-after"), nullptr);
    auto draining = ts.request("GET", "/healthz");
    EXPECT_EQ(draining.status, 200);
    EXPECT_NE(draining.body.find("\"status\": \"draining\""),
              std::string::npos);
    auto stillThere =
        ts.request("GET", "/campaigns/rawlog/findings");
    EXPECT_EQ(stillThere.status, 200);
}

} // namespace
