/**
 * @file
 * External trace-replay frontend tests: grammar coverage, per-line
 * quarantine diagnostics, object inference, happens-before link
 * synthesis in the merge, stall handling, a corruption sweep, and the
 * committed example logs end to end (planted findings, text-path ==
 * corpus-path equality, byte-identical determinism).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "detect/batch.hh"
#include "detect/pipeline.hh"
#include "support/random.hh"
#include "trace/corpus.hh"
#include "trace/replay.hh"
#include "trace/serialize.hh"
#include "trace/validate.hh"

namespace
{

using namespace lfm;
using namespace lfm::trace;
using replay::ImportResult;

std::size_t
countKind(const Trace &trace, EventKind kind)
{
    std::size_t n = 0;
    for (const auto &event : trace.events())
        n += event.kind == kind;
    return n;
}

bool
hasDiagnostic(const ImportResult &result, std::size_t line,
              const std::string &needle)
{
    for (const auto &diag : result.diagnostics) {
        if (diag.line == line &&
            diag.message.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

bool
hasFindingKind(const std::vector<detect::Finding> &findings,
               detect::FindingKind kind)
{
    return std::any_of(findings.begin(), findings.end(),
                       [kind](const detect::Finding &f) {
                           return f.kind == kind;
                       });
}

TEST(Replay, GrammarCoversEveryOp)
{
    const std::string log = R"(# every op in the vocabulary
10 1 thread_start
15 1 alloc 0x100 8
20 1 write 0x100 8
25 1 sem_init 0x60 1
30 1 barrier_init 0x50 1
35 1 barrier_wait 0x50
40 1 lock 0x10
45 1 unlock 0x10
50 1 trylock 0x10 1
55 1 unlock 0x10
60 1 trylock 0x10 0
65 1 spin_lock 0x11
70 1 spin_unlock 0x11
75 1 rdlock 0x70
80 1 rwunlock 0x70
85 1 wrlock 0x70
90 1 rwunlock 0x70
95 1 sem_wait 0x60
100 1 sem_post 0x60
105 1 read 0x100 8
110 1 free 0x100
115 1 create 2
120 2 thread_start
125 2 lock 0x10
130 2 cond_wait 0x30 0x10
135 1 lock 0x10
140 1 signal 0x30
141 1 broadcast 0x30
145 1 unlock 0x10
150 2 unlock 0x10
155 2 thread_exit
160 1 join 2
165 1 thread_exit
)";
    const ImportResult result = replay::importLogText(log);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.stats.quarantined, 0u);
    EXPECT_EQ(result.stats.stalled, 0u);
    EXPECT_EQ(result.stats.records, result.stats.lines);
    EXPECT_EQ(result.stats.threads, 2u);

    const Trace &t = result.trace;
    for (EventKind kind :
         {EventKind::ThreadBegin, EventKind::ThreadEnd,
          EventKind::Spawn, EventKind::Join, EventKind::Read,
          EventKind::Write, EventKind::Alloc, EventKind::Free,
          EventKind::Lock, EventKind::Unlock, EventKind::RdLock,
          EventKind::RdUnlock, EventKind::WaitBegin,
          EventKind::WaitResume, EventKind::SignalOne,
          EventKind::SignalAll, EventKind::SemWait,
          EventKind::SemPost, EventKind::BarrierCross,
          EventKind::Yield})
        EXPECT_GE(countKind(t, kind), 1u) << eventKindName(kind);

    const auto problems = validateTrace(t);
    EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(Replay, QuarantineDiagnosticsCarryLineNumbers)
{
    const std::string log = R"(# line 1 is this comment
10 1 bogus_op 1 2
banana 1 lock 0x10
20 -3 lock 0x10
4611686018427387905 1 lock 0x10
30 1 lock
40 1 trylock 0x10 2
50 1 read 0xzz 4
60 1 lock 0x10
70 1 unlock 0x10
80 1
)";
    const ImportResult result = replay::importLogText(log);
    ASSERT_TRUE(result.ok) << "good lines must still import";
    EXPECT_EQ(result.stats.lines, 10u);
    EXPECT_EQ(result.stats.records, 2u);
    EXPECT_EQ(result.stats.quarantined, 8u);
    EXPECT_TRUE(hasDiagnostic(result, 2, "unknown op 'bogus_op'"));
    EXPECT_TRUE(hasDiagnostic(result, 3, "bad timestamp"));
    EXPECT_TRUE(hasDiagnostic(result, 4, "negative thread id"));
    EXPECT_TRUE(hasDiagnostic(result, 5, "timestamp out of range"));
    EXPECT_TRUE(hasDiagnostic(result, 6, "lock needs 1 operand"));
    EXPECT_TRUE(hasDiagnostic(result, 7, "trylock outcome"));
    EXPECT_TRUE(hasDiagnostic(result, 8, "bad operand"));
    EXPECT_TRUE(hasDiagnostic(result, 11, "truncated record"));
    // The two clean records made a lock/unlock pair.
    EXPECT_EQ(countKind(result.trace, EventKind::Lock), 1u);
    EXPECT_EQ(countKind(result.trace, EventKind::Unlock), 1u);
}

TEST(Replay, ObjectInferenceClassifiesAndFoldsAddresses)
{
    const std::string log = R"(10 1 lock 0x10
20 1 unlock 0x10
30 1 signal 0x10
40 1 alloc 0x1000 16
50 1 write 0x1008 16
60 1 read 0x1014 4
70 1 free 0x2000
80 1 free 0x1000
)";
    const ImportResult result = replay::importLogText(log);
    ASSERT_TRUE(result.ok);
    // Line 3 reuses the mutex address as a condvar; line 7 frees an
    // address no access ever touched.
    EXPECT_EQ(result.stats.quarantined, 2u);
    EXPECT_TRUE(hasDiagnostic(result, 3, "already classified"));
    EXPECT_TRUE(hasDiagnostic(result, 7, "free of unknown address"));

    // One thread object, one mutex, one folded variable covering
    // [0x1000, 0x1018) — the overlapping alloc/write/read ranges.
    const Trace &t = result.trace;
    EXPECT_EQ(t.objects().size(), 3u);
    bool sawMutex = false, sawVar = false;
    for (const auto &[id, info] : t.objects()) {
        if (info.kind == ObjectKind::Mutex) {
            sawMutex = true;
            EXPECT_EQ(info.name, "mutex@0x10");
        }
        if (info.kind == ObjectKind::Variable) {
            sawVar = true;
            EXPECT_EQ(info.name, "var@0x1000+24");
            EXPECT_EQ(info.flags & kStartsUninit, kStartsUninit)
                << "alloc'd variables start uninitialized";
        }
    }
    EXPECT_TRUE(sawMutex);
    EXPECT_TRUE(sawVar);
    // All three data accesses landed on the same folded variable,
    // and the surviving free resolved into it.
    EXPECT_EQ(countKind(t, EventKind::Free), 1u);
}

TEST(Replay, MergeSynthesizesHappensBeforeLinks)
{
    const std::string log = R"(10 1 thread_start
20 1 create 2
30 2 thread_start
40 2 lock 0x10
50 2 cond_wait 0x20 0x10
60 1 lock 0x10
70 1 write 0x100 4
80 1 signal 0x20
90 1 unlock 0x10
100 2 unlock 0x10
110 2 thread_exit
120 1 join 2
130 1 thread_exit
)";
    const ImportResult result = replay::importLogText(log);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.stats.quarantined, 0u);
    EXPECT_EQ(result.stats.stalled, 0u);

    const Trace &t = result.trace;
    // Find the synthesized links.
    SeqNo spawnSeq = 0, signalSeq = 0, childEnd = 0;
    const Event *childBegin = nullptr;
    const Event *resume = nullptr;
    const Event *join = nullptr;
    for (const auto &event : t.events()) {
        if (event.kind == EventKind::Spawn)
            spawnSeq = event.seq;
        if (event.kind == EventKind::SignalOne)
            signalSeq = event.seq;
        if (event.kind == EventKind::ThreadBegin &&
            event.thread == 1)
            childBegin = &event;
        if (event.kind == EventKind::WaitResume)
            resume = &event;
        if (event.kind == EventKind::ThreadEnd &&
            event.thread == 1)
            childEnd = event.seq;
        if (event.kind == EventKind::Join)
            join = &event;
    }
    ASSERT_NE(childBegin, nullptr);
    ASSERT_NE(resume, nullptr);
    ASSERT_NE(join, nullptr);
    EXPECT_EQ(childBegin->aux, spawnSeq)
        << "ThreadBegin.aux must reference the spawn";
    EXPECT_EQ(resume->aux, signalSeq)
        << "WaitResume.aux must reference the waking signal";
    EXPECT_NE(resume->obj2, kNoObject)
        << "WaitResume.obj2 must carry the reacquired mutex";
    EXPECT_EQ(join->aux, childEnd)
        << "Join.aux must reference the child's ThreadEnd";

    const auto problems = validateTrace(t);
    EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(Replay, BarrierGenerationsAreConsecutiveRuns)
{
    const std::string log = R"(10 1 thread_start
15 1 barrier_init 0x50 2
20 1 create 2
30 2 thread_start
40 2 barrier_wait 0x50
50 1 barrier_wait 0x50
60 2 barrier_wait 0x50
70 1 barrier_wait 0x50
80 2 thread_exit
90 1 join 2
95 1 thread_exit
)";
    const ImportResult result = replay::importLogText(log);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.stats.stalled, 0u);

    // Each generation's BarrierCross events must form one
    // consecutive run (the happens-before builder's requirement),
    // with aux = generation index.
    std::vector<std::pair<SeqNo, std::uint64_t>> crosses;
    for (const auto &event : result.trace.events()) {
        if (event.kind == EventKind::BarrierCross)
            crosses.push_back({event.seq, event.aux});
    }
    ASSERT_EQ(crosses.size(), 4u);
    EXPECT_EQ(crosses[0].second, 0u);
    EXPECT_EQ(crosses[1].second, 0u);
    EXPECT_EQ(crosses[2].second, 1u);
    EXPECT_EQ(crosses[3].second, 1u);
    EXPECT_EQ(crosses[1].first, crosses[0].first + 1);
    EXPECT_EQ(crosses[3].first, crosses[2].first + 1);

    const auto problems = validateTrace(result.trace);
    EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(Replay, DeadlockedRecordingStallsWithDiagnostics)
{
    // An AB-BA deadlock: neither thread can ever proceed past its
    // second lock. The import must return the partial trace with
    // Blocked events, count the dropped records, and diagnose —
    // never hang, never abort.
    const std::string log = R"(10 1 thread_start
20 2 thread_start
30 1 lock 0xA
40 2 lock 0xB
50 1 lock 0xB
60 2 lock 0xA
70 1 unlock 0xB
80 1 unlock 0xA
90 1 thread_exit
100 2 unlock 0xA
110 2 unlock 0xB
120 2 thread_exit
)";
    const ImportResult result = replay::importLogText(log);
    ASSERT_TRUE(result.ok);
    EXPECT_GT(result.stats.stalled, 0u);
    EXPECT_EQ(countKind(result.trace, EventKind::Blocked), 2u);
    bool sawStall = false;
    for (const auto &diag : result.diagnostics)
        sawStall |= diag.message.find("replay stalled") !=
                    std::string::npos;
    EXPECT_TRUE(sawStall);
    // Both Blocked events must name the lock and its holder.
    for (const auto &event : result.trace.events()) {
        if (event.kind != EventKind::Blocked)
            continue;
        EXPECT_NE(event.obj, kNoObject);
        EXPECT_NE(event.aux, ~std::uint64_t{0});
    }
}

TEST(Replay, CorruptionSweepNeverCrashesOrSilentlyDrops)
{
    const std::string good = R"(10 1 thread_start
20 1 lock 0x10
30 1 write 0x100 8
40 1 unlock 0x10
50 1 thread_exit
)";
    // Truncations at every byte: parse must stay total, and every
    // non-comment line must be accounted for as record-or-quarantine.
    for (std::size_t cut = 0; cut <= good.size(); ++cut) {
        const ImportResult result =
            replay::importLogText(good.substr(0, cut));
        EXPECT_LE(result.stats.records, result.stats.lines);
        EXPECT_GE(result.stats.records + result.stats.quarantined,
                  result.stats.lines);
        if (result.stats.quarantined > 0)
            EXPECT_FALSE(result.diagnostics.empty());
    }

    // Random garbage: arbitrary tokens, arbitrary bytes. Never a
    // crash, never a drop that is not counted in the stats.
    support::Rng rng(0xEC0'1065);
    for (int round = 0; round < 50; ++round) {
        std::string text;
        const std::size_t lines = rng.index(20);
        for (std::size_t i = 0; i < lines; ++i) {
            const std::size_t len = rng.index(40);
            for (std::size_t k = 0; k < len; ++k)
                text += static_cast<char>(rng.index(256));
            text += '\n';
        }
        const ImportResult result = replay::importLogText(text);
        EXPECT_LE(result.stats.records, result.stats.lines);
        EXPECT_GE(result.stats.records + result.stats.quarantined,
                  result.stats.lines);
    }

    // The documented corruption trio, one diagnostic each.
    const ImportResult unknown =
        replay::importLogText("10 1 warp_core 0x1\n");
    EXPECT_EQ(unknown.stats.quarantined, 1u);
    EXPECT_TRUE(hasDiagnostic(unknown, 1, "unknown op"));
    const ImportResult badTs = replay::importLogText(
        "99999999999999999999999 1 lock 0x10\n");
    EXPECT_EQ(badTs.stats.quarantined, 1u);
    const ImportResult truncated =
        replay::importLogText("10 1 lock 0x10\n20 1\n");
    EXPECT_EQ(truncated.stats.quarantined, 1u);
    EXPECT_TRUE(hasDiagnostic(truncated, 2, "truncated record"));
}

TEST(Replay, UnreadableInputsFailWithFileDiagnostic)
{
    const ImportResult missing =
        replay::importPath("/nonexistent/path/to.log");
    EXPECT_FALSE(missing.ok);
    ASSERT_FALSE(missing.diagnostics.empty());
    EXPECT_EQ(missing.diagnostics[0].line, 0u);
    const ImportResult empty = replay::importLogText("");
    EXPECT_FALSE(empty.ok) << "zero events is not a usable import";
}

// ---------------------------------------------------------------
// The committed example logs, end to end.
// ---------------------------------------------------------------

const std::string kLogsDir = LFM_EXTERN_LOGS_DIR;

TEST(ExternLogs, DirectoryImportMergesPerThreadLogs)
{
    const ImportResult result =
        replay::importPath(kLogsDir + "/racy_counter");
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.stats.files, 3u);
    EXPECT_EQ(result.stats.threads, 3u);
    EXPECT_EQ(result.stats.quarantined, 0u);
    EXPECT_EQ(result.stats.stalled, 0u);
    const auto problems = validateTrace(result.trace);
    EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(ExternLogs, PlantedBugsAreDetected)
{
    const detect::Pipeline pipeline;

    // racy_counter: worker 3 skips the lock — a data race.
    const ImportResult racy =
        replay::importPath(kLogsDir + "/racy_counter");
    ASSERT_TRUE(racy.ok);
    EXPECT_TRUE(hasFindingKind(pipeline.run(racy.trace),
                               detect::FindingKind::DataRace));

    // uaf_teardown: free before the logger's last write — an order
    // violation (use-after-free).
    const ImportResult uaf =
        replay::importPath(kLogsDir + "/uaf_teardown.log");
    ASSERT_TRUE(uaf.ok);
    EXPECT_TRUE(
        hasFindingKind(pipeline.run(uaf.trace),
                       detect::FindingKind::OrderViolation));

    // missed_notify: the signal fires before the wait begins — the
    // consumer never resumes (stuck wait), and the replay reports
    // the stall.
    const ImportResult missed =
        replay::importPath(kLogsDir + "/missed_notify.log");
    ASSERT_TRUE(missed.ok);
    EXPECT_EQ(missed.stats.stalled, 1u);
    EXPECT_TRUE(hasFindingKind(pipeline.run(missed.trace),
                               detect::FindingKind::StuckWait));

    // barrier_pipeline: correctly synchronized — the precise
    // happens-before detectors must stay silent.
    const ImportResult clean =
        replay::importPath(kLogsDir + "/barrier_pipeline.log");
    ASSERT_TRUE(clean.ok);
    EXPECT_EQ(clean.stats.quarantined, 0u);
    EXPECT_EQ(clean.stats.stalled, 0u);
    const auto findings = pipeline.run(clean.trace);
    EXPECT_TRUE(detect::findingsFrom(findings, "hb-race").empty());
    EXPECT_TRUE(detect::findingsFrom(findings, "order").empty());
    const auto problems = validateTrace(clean.trace);
    EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(ExternLogs, TextPathEqualsCorpusPathFindings)
{
    // Import all four examples, then analyze them two ways: heap
    // traces that went through the *text* format round trip, and
    // zero-copy views over the packed LFMC corpus. The two batch
    // reports must be byte-identical JSON.
    std::vector<Trace> viaText;
    CorpusWriter writer;
    for (const std::string &name :
         {std::string("racy_counter"),
          std::string("uaf_teardown.log"),
          std::string("missed_notify.log"),
          std::string("barrier_pipeline.log")}) {
        ImportResult result =
            replay::importPath(kLogsDir + "/" + name);
        ASSERT_TRUE(result.ok) << name;
        writer.add(result.trace);
        std::string error;
        auto rt = traceFromString(traceToString(result.trace),
                                  &error);
        ASSERT_TRUE(rt.has_value()) << name << ": " << error;
        viaText.push_back(std::move(*rt));
    }

    const std::string image = writer.encode();
    std::vector<std::uint64_t> aligned((image.size() + 7) / 8, 0);
    std::memcpy(aligned.data(), image.data(), image.size());
    std::string error;
    auto corpus = CorpusReader::fromBuffer(aligned.data(),
                                           image.size(), &error);
    ASSERT_TRUE(corpus.has_value()) << error;

    const detect::Pipeline pipeline;
    const detect::BatchRunner runner(2);
    const auto heapReports = runner.run(pipeline, viaText);
    const auto viewReports =
        runner.run(pipeline, *corpus, detect::BatchOptions{});
    ASSERT_EQ(heapReports.size(), viewReports.size());
    EXPECT_EQ(detect::reportsJson(viaText, heapReports).str(),
              detect::reportsJson(*corpus, viewReports).str())
        << "text path and mmap corpus path disagree";
}

TEST(ExternLogs, ImportIsByteIdenticallyDeterministic)
{
    // Two independent imports of the same inputs must produce
    // byte-identical LFMC corpora — the property ci.sh asserts with
    // two lfm_import runs and cmp.
    const std::vector<std::string> inputs = {
        kLogsDir + "/racy_counter",
        kLogsDir + "/uaf_teardown.log",
        kLogsDir + "/missed_notify.log",
        kLogsDir + "/barrier_pipeline.log",
    };
    std::string first, second;
    for (std::string *out : {&first, &second}) {
        CorpusWriter writer;
        for (const std::string &input : inputs) {
            ImportResult result = replay::importPath(input);
            ASSERT_TRUE(result.ok) << input;
            writer.add(result.trace);
        }
        *out = writer.encode();
    }
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

} // namespace
