/**
 * @file
 * Report-module tests: table rendering in all three formats, cell
 * helpers, and the paper-vs-reproduced comparison blocks.
 */

#include <gtest/gtest.h>

#include "report/compare.hh"
#include "report/table.hh"
#include "study/analysis.hh"
#include "study/database.hh"
#include "study/findings.hh"

namespace
{

using namespace lfm;
using report::Align;
using report::Table;

Table
sampleTable()
{
    Table t("Sample");
    t.setColumns({"name", "count"});
    t.addRow({"alpha", "1"});
    t.addSeparator();
    t.addRow({"beta, the 2nd", "22"});
    return t;
}

TEST(Table, AsciiLayout)
{
    auto text = sampleTable().ascii();
    EXPECT_NE(text.find("Sample"), std::string::npos);
    EXPECT_NE(text.find("| name"), std::string::npos);
    EXPECT_NE(text.find("| alpha"), std::string::npos);
    // Right-aligned numeric column.
    EXPECT_NE(text.find("    1 |"), std::string::npos);
    // Every line of the box has the same width.
    std::size_t width = 0;
    std::size_t start = text.find('\n') + 1; // skip title
    for (std::size_t i = start; i < text.size();) {
        std::size_t end = text.find('\n', i);
        if (end == std::string::npos)
            break;
        if (width == 0)
            width = end - i;
        else
            EXPECT_EQ(end - i, width);
        i = end + 1;
    }
}

TEST(Table, MarkdownLayout)
{
    auto md = sampleTable().markdown();
    EXPECT_NE(md.find("### Sample"), std::string::npos);
    EXPECT_NE(md.find("| name | count |"), std::string::npos);
    EXPECT_NE(md.find("| :--- | ---: |"), std::string::npos);
    // Separators are ASCII-only decoration.
    EXPECT_EQ(md.find("---\n---"), std::string::npos);
}

TEST(Table, CsvQuoting)
{
    auto csv = sampleTable().csv();
    EXPECT_NE(csv.find("name,count"), std::string::npos);
    // The comma-containing cell must be quoted.
    EXPECT_NE(csv.find("\"beta, the 2nd\",22"), std::string::npos);
}

TEST(Table, CellHelpers)
{
    EXPECT_EQ(Table::cell(42), "42");
    EXPECT_EQ(Table::cell(std::size_t{7}), "7");
    EXPECT_EQ(Table::cell(std::int64_t{-3}), "-3");
    EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
    EXPECT_EQ(Table::cell(0.5), "0.5");
}

TEST(Table, ExplicitAlignment)
{
    Table t("Aligned");
    t.setColumns({"a", "b"}, {Align::Right, Align::Left});
    t.addRow({"1", "x"});
    auto text = t.ascii();
    EXPECT_NE(text.find("| 1 | x |"), std::string::npos);
}

TEST(Table, RowCountIgnoresSeparators)
{
    EXPECT_EQ(sampleTable().rowCount(), 2u);
}

TEST(Compare, FindingRowRendering)
{
    study::Finding f;
    f.id = "F-test";
    f.statement = "a statement";
    f.paperNumer = 72;
    f.paperDenom = 74;
    f.computedNumer = 72;
    f.computedDenom = 74;
    auto row = report::fromFinding(f);
    EXPECT_TRUE(row.match);
    EXPECT_EQ(row.paper, "72/74 (97%)");

    auto text = report::renderComparison({row});
    EXPECT_NE(text.find("[OK]"), std::string::npos);
    EXPECT_NE(text.find("F-test"), std::string::npos);
}

TEST(Compare, MismatchIsMarked)
{
    study::Finding f;
    f.id = "F-miss";
    f.statement = "s";
    f.paperNumer = 10;
    f.paperDenom = 20;
    f.computedNumer = 11;
    f.computedDenom = 20;
    f.approximate = true;
    auto text = report::renderComparison({report::fromFinding(f)});
    EXPECT_NE(text.find("[!!]"), std::string::npos);
    EXPECT_NE(text.find("(approx.)"), std::string::npos);
}

TEST(Compare, AllHeadlineFindingsRender)
{
    study::Analysis analysis(study::database());
    auto text =
        report::renderFindings(study::headlineFindings(analysis));
    EXPECT_NE(text.find("F1-patterns"), std::string::npos);
    EXPECT_NE(text.find("F9-tm"), std::string::npos);
    EXPECT_EQ(text.find("[!!]"), std::string::npos)
        << "some finding does not reproduce:\n"
        << text;
}

} // namespace
