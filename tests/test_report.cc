/**
 * @file
 * Report-module tests: table rendering in all three formats, cell
 * helpers, the paper-vs-reproduced comparison blocks, and the
 * machine-readable finding emitters (lfm-native JSON and SARIF
 * 2.1.0 schema shape).
 */

#include <gtest/gtest.h>

#include <string>

#include "detect/finding.hh"
#include "detect/pipeline.hh"
#include "report/compare.hh"
#include "report/table.hh"
#include "study/analysis.hh"
#include "study/database.hh"
#include "study/findings.hh"
#include "trace/trace.hh"

namespace
{

using namespace lfm;
using report::Align;
using report::Table;

Table
sampleTable()
{
    Table t("Sample");
    t.setColumns({"name", "count"});
    t.addRow({"alpha", "1"});
    t.addSeparator();
    t.addRow({"beta, the 2nd", "22"});
    return t;
}

TEST(Table, AsciiLayout)
{
    auto text = sampleTable().ascii();
    EXPECT_NE(text.find("Sample"), std::string::npos);
    EXPECT_NE(text.find("| name"), std::string::npos);
    EXPECT_NE(text.find("| alpha"), std::string::npos);
    // Right-aligned numeric column.
    EXPECT_NE(text.find("    1 |"), std::string::npos);
    // Every line of the box has the same width.
    std::size_t width = 0;
    std::size_t start = text.find('\n') + 1; // skip title
    for (std::size_t i = start; i < text.size();) {
        std::size_t end = text.find('\n', i);
        if (end == std::string::npos)
            break;
        if (width == 0)
            width = end - i;
        else
            EXPECT_EQ(end - i, width);
        i = end + 1;
    }
}

TEST(Table, MarkdownLayout)
{
    auto md = sampleTable().markdown();
    EXPECT_NE(md.find("### Sample"), std::string::npos);
    EXPECT_NE(md.find("| name | count |"), std::string::npos);
    EXPECT_NE(md.find("| :--- | ---: |"), std::string::npos);
    // Separators are ASCII-only decoration.
    EXPECT_EQ(md.find("---\n---"), std::string::npos);
}

TEST(Table, CsvQuoting)
{
    auto csv = sampleTable().csv();
    EXPECT_NE(csv.find("name,count"), std::string::npos);
    // The comma-containing cell must be quoted.
    EXPECT_NE(csv.find("\"beta, the 2nd\",22"), std::string::npos);
}

TEST(Table, CellHelpers)
{
    EXPECT_EQ(Table::cell(42), "42");
    EXPECT_EQ(Table::cell(std::size_t{7}), "7");
    EXPECT_EQ(Table::cell(std::int64_t{-3}), "-3");
    EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
    EXPECT_EQ(Table::cell(0.5), "0.5");
}

TEST(Table, ExplicitAlignment)
{
    Table t("Aligned");
    t.setColumns({"a", "b"}, {Align::Right, Align::Left});
    t.addRow({"1", "x"});
    auto text = t.ascii();
    EXPECT_NE(text.find("| 1 | x |"), std::string::npos);
}

TEST(Table, RowCountIgnoresSeparators)
{
    EXPECT_EQ(sampleTable().rowCount(), 2u);
}

TEST(Compare, FindingRowRendering)
{
    study::Finding f;
    f.id = "F-test";
    f.statement = "a statement";
    f.paperNumer = 72;
    f.paperDenom = 74;
    f.computedNumer = 72;
    f.computedDenom = 74;
    auto row = report::fromFinding(f);
    EXPECT_TRUE(row.match);
    EXPECT_EQ(row.paper, "72/74 (97%)");

    auto text = report::renderComparison({row});
    EXPECT_NE(text.find("[OK]"), std::string::npos);
    EXPECT_NE(text.find("F-test"), std::string::npos);
}

TEST(Compare, MismatchIsMarked)
{
    study::Finding f;
    f.id = "F-miss";
    f.statement = "s";
    f.paperNumer = 10;
    f.paperDenom = 20;
    f.computedNumer = 11;
    f.computedDenom = 20;
    f.approximate = true;
    auto text = report::renderComparison({report::fromFinding(f)});
    EXPECT_NE(text.find("[!!]"), std::string::npos);
    EXPECT_NE(text.find("(approx.)"), std::string::npos);
}

TEST(Compare, AllHeadlineFindingsRender)
{
    study::Analysis analysis(study::database());
    auto text =
        report::renderFindings(study::headlineFindings(analysis));
    EXPECT_NE(text.find("F1-patterns"), std::string::npos);
    EXPECT_NE(text.find("F9-tm"), std::string::npos);
    EXPECT_EQ(text.find("[!!]"), std::string::npos)
        << "some finding does not reproduce:\n"
        << text;
}

// ----------------------------------------------------------------
// Finding emitters (lfm-native JSON + SARIF 2.1.0)
// ----------------------------------------------------------------

/** Two threads write one variable with no synchronization: every
 * race-family detector fires, giving the emitters real input. */
trace::Trace
racyTrace()
{
    trace::Trace t;
    for (int i = 0; i < 2; ++i) {
        trace::Event e;
        e.thread = i;
        e.kind = trace::EventKind::ThreadBegin;
        t.append(e);
    }
    for (int round = 0; round < 2; ++round) {
        for (int i = 0; i < 2; ++i) {
            trace::Event e;
            e.thread = i;
            e.kind = trace::EventKind::Write;
            e.obj = 1;
            t.append(e);
        }
    }
    return t;
}

TEST(Findings, KindAndCategoryRoundTrip)
{
    using detect::FindingKind;
    for (auto kind :
         {FindingKind::DataRace, FindingKind::AtomicityViolation,
          FindingKind::MultiVarAtomicityViolation,
          FindingKind::OrderViolation, FindingKind::DeadlockCycle,
          FindingKind::StuckWait, FindingKind::Other}) {
        EXPECT_EQ(detect::findingKindFromCategory(
                      detect::findingKindName(kind)),
                  kind);
    }
    const auto f =
        detect::makeFinding("hb-race", FindingKind::DataRace);
    EXPECT_EQ(f.detector, "hb-race");
    EXPECT_EQ(f.category, "data-race");
    EXPECT_EQ(f.category, detect::findingKindName(f.kind));
}

TEST(Findings, JsonDocumentCarriesTheWholeStruct)
{
    const auto trace = racyTrace();
    detect::Pipeline pipeline;
    const auto findings = pipeline.run(trace);
    ASSERT_FALSE(findings.empty());

    const std::string text =
        detect::findingsJson(trace, findings, 7).str();
    for (const char *key :
         {"\"tool\"", "\"trace\"", "\"key\": 7", "\"findings\"",
          "\"detector\"", "\"kind\"", "\"category\"",
          "\"primary_obj\"", "\"events\"", "\"threads\"",
          "\"message\""})
        EXPECT_NE(text.find(key), std::string::npos) << key;
    // The typed kind and the category string must both be present
    // and agree (the category derives from the kind).
    EXPECT_NE(text.find("\"category\": \"data-race\""),
              std::string::npos);
}

TEST(Sarif, DocumentHasRequiredTopLevelShape)
{
    const auto trace = racyTrace();
    detect::Pipeline pipeline;
    const auto findings = pipeline.run(trace);
    ASSERT_FALSE(findings.empty());

    const std::string text =
        detect::sarifDocument(trace, findings).str();
    for (const char *key :
         {"\"$schema\"", "\"version\": \"2.1.0\"", "\"runs\"",
          "\"tool\"", "\"driver\"", "\"rules\"", "\"results\"",
          "\"ruleId\"", "\"ruleIndex\"", "\"level\"", "\"message\"",
          "\"locations\"", "\"artifactLocation\"",
          "\"logicalLocations\"", "\"properties\"", "\"trace://0\""})
        EXPECT_NE(text.find(key), std::string::npos) << key;
}

TEST(Sarif, RulesAreDedupedAcrossTraces)
{
    const auto trace = racyTrace();
    detect::Pipeline pipeline;
    const auto findings = pipeline.run(trace);
    ASSERT_FALSE(findings.empty());

    detect::SarifBuilder builder("lfm-test");
    builder.addTrace(trace, 0, findings);
    builder.addTrace(trace, 1, findings);
    EXPECT_EQ(builder.results(), findings.size() * 2);

    // Same findings twice: every rule id must appear exactly once in
    // the driver's rule table (results reference rules by index).
    const std::string text = builder.document().str();
    const std::string ruleId = "\"id\": \"" + findings[0].detector +
                               "/" + findings[0].category + "\"";
    const auto first = text.find(ruleId);
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(text.find(ruleId, first + 1), std::string::npos);
    // Both traces' artifacts are referenced.
    EXPECT_NE(text.find("\"trace://0\""), std::string::npos);
    EXPECT_NE(text.find("\"trace://1\""), std::string::npos);
}

TEST(Sarif, PredictiveFindingsAreWarningsOthersErrors)
{
    const auto trace = racyTrace();

    auto predictive = detect::makeFinding(
        "predictive-atom", detect::FindingKind::AtomicityViolation);
    predictive.primaryObj = 1;
    predictive.events = {2, 3, 4};
    predictive.threads = {0, 1};
    predictive.message = "predicted";

    auto race =
        detect::makeFinding("hb-race", detect::FindingKind::DataRace);
    race.primaryObj = 1;
    race.events = {2, 3};
    race.threads = {0, 1};
    race.message = "raced";

    const std::string predText =
        detect::sarifDocument(trace, {predictive}).str();
    EXPECT_NE(predText.find("\"level\": \"warning\""),
              std::string::npos);
    EXPECT_EQ(predText.find("\"level\": \"error\""),
              std::string::npos);

    const std::string raceText =
        detect::sarifDocument(trace, {race}).str();
    EXPECT_NE(raceText.find("\"level\": \"error\""),
              std::string::npos);
}

} // namespace
