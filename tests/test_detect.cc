/**
 * @file
 * Detector unit tests over hand-built traces plus simulator
 * integration checks: each detector family flags exactly the bug
 * shapes it is supposed to see.
 */

#include <gtest/gtest.h>

#include <memory>

#include "detect/atomicity.hh"
#include "detect/deadlock.hh"
#include "detect/detector.hh"
#include "detect/lockset.hh"
#include "detect/multivar.hh"
#include "detect/order.hh"
#include "detect/race_hb.hh"
#include "sim/policy.hh"
#include "sim/program.hh"
#include "sim/shared.hh"
#include "sim/sync.hh"

namespace
{

using namespace lfm;
using namespace lfm::detect;
using namespace lfm::trace;

Event
mk(ThreadId tid, EventKind kind, ObjectId obj = kNoObject,
   ObjectId obj2 = kNoObject, std::uint64_t aux = 0)
{
    Event e;
    e.thread = tid;
    e.kind = kind;
    e.obj = obj;
    e.obj2 = obj2;
    e.aux = aux;
    return e;
}

void
begin(Trace &t, ThreadId tid)
{
    t.append(mk(tid, EventKind::ThreadBegin, kNoObject, kNoObject,
                kSpuriousWakeup));
}

// ---------------------------------------------------------------
// HB race detector
// ---------------------------------------------------------------

TEST(HbRace, FlagsUnorderedWriteWrite)
{
    Trace t;
    begin(t, 0);
    begin(t, 1);
    t.append(mk(0, EventKind::Write, 9));
    t.append(mk(1, EventKind::Write, 9));
    HbRaceDetector d;
    auto fs = d.analyze(t);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].category, "data-race");
    EXPECT_EQ(fs[0].primaryObj, 9u);
}

TEST(HbRace, IgnoresReadReadAndLockOrdered)
{
    Trace t;
    begin(t, 0);
    begin(t, 1);
    // read-read is never a race
    t.append(mk(0, EventKind::Read, 9));
    t.append(mk(1, EventKind::Read, 9));
    // lock-ordered write-write is not a race
    t.append(mk(0, EventKind::Lock, 5));
    t.append(mk(0, EventKind::Write, 8));
    t.append(mk(0, EventKind::Unlock, 5));
    t.append(mk(1, EventKind::Lock, 5));
    t.append(mk(1, EventKind::Write, 8));
    t.append(mk(1, EventKind::Unlock, 5));
    HbRaceDetector d;
    EXPECT_TRUE(d.analyze(t).empty());
}

TEST(HbRace, FirstOnlyCollapsesDuplicates)
{
    Trace t;
    begin(t, 0);
    begin(t, 1);
    for (int i = 0; i < 4; ++i) {
        t.append(mk(0, EventKind::Write, 9));
        t.append(mk(1, EventKind::Write, 9));
    }
    HbRaceDetector d;
    EXPECT_EQ(d.analyze(t).size(), 1u);
    d.setFirstOnly(false);
    EXPECT_GT(d.analyze(t).size(), 1u);
}

// ---------------------------------------------------------------
// Lockset detector
// ---------------------------------------------------------------

TEST(Lockset, EmptyInterectionFlagged)
{
    Trace t;
    begin(t, 0);
    begin(t, 1);
    t.append(mk(0, EventKind::Lock, 5));
    t.append(mk(0, EventKind::Write, 9));
    t.append(mk(0, EventKind::Unlock, 5));
    t.append(mk(1, EventKind::Lock, 6)); // different lock!
    t.append(mk(1, EventKind::Write, 9));
    t.append(mk(1, EventKind::Unlock, 6));
    LocksetDetector d;
    auto fs = d.analyze(t);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].primaryObj, 9u);
}

TEST(Lockset, ConsistentLockingClean)
{
    Trace t;
    begin(t, 0);
    begin(t, 1);
    for (ThreadId tid : {0, 1}) {
        t.append(mk(tid, EventKind::Lock, 5));
        t.append(mk(tid, EventKind::Write, 9));
        t.append(mk(tid, EventKind::Unlock, 5));
    }
    LocksetDetector d;
    EXPECT_TRUE(d.analyze(t).empty());
}

TEST(Lockset, FlagsForkJoinFalsePositive)
{
    // Accesses ordered by spawn/join race under lockset discipline:
    // the classic Eraser false positive the study discusses.
    Trace t;
    begin(t, 0);
    t.append(mk(0, EventKind::Write, 9));          // 1
    t.append(mk(0, EventKind::Spawn, 100));        // 2
    t.append(mk(1, EventKind::ThreadBegin, kNoObject, kNoObject, 2));
    t.append(mk(1, EventKind::Write, 9));          // 4
    LocksetDetector lockset;
    HbRaceDetector hbrace;
    EXPECT_EQ(lockset.analyze(t).size(), 1u); // false positive
    EXPECT_TRUE(hbrace.analyze(t).empty());  // HB knows better
}

TEST(Lockset, ReadLockProtectsReads)
{
    Trace t;
    begin(t, 0);
    begin(t, 1);
    t.append(mk(0, EventKind::Lock, 5)); // writer takes write lock
    t.append(mk(0, EventKind::Write, 9));
    t.append(mk(0, EventKind::Unlock, 5));
    t.append(mk(1, EventKind::RdLock, 5));
    t.append(mk(1, EventKind::Read, 9));
    t.append(mk(1, EventKind::RdUnlock, 5));
    LocksetDetector d;
    EXPECT_TRUE(d.analyze(t).empty());
}

// ---------------------------------------------------------------
// Atomicity detector
// ---------------------------------------------------------------

TEST(Atomicity, TripleTable)
{
    // The four unserializable interleavings...
    EXPECT_TRUE(unserializableTriple(false, true, false));  // RWR
    EXPECT_TRUE(unserializableTriple(true, true, false));   // WWR
    EXPECT_TRUE(unserializableTriple(false, true, true));   // RWW
    EXPECT_TRUE(unserializableTriple(true, false, true));   // WRW
    // ...and the four serializable ones.
    EXPECT_FALSE(unserializableTriple(false, false, false)); // RRR
    EXPECT_FALSE(unserializableTriple(true, false, false));  // WRR
    EXPECT_FALSE(unserializableTriple(false, false, true));  // RRW
    EXPECT_FALSE(unserializableTriple(true, true, true));    // WWW
}

TEST(Atomicity, FlagsInterleavedWriteBetweenReadAndWrite)
{
    // The lost-update shape: T0 reads, T1 writes, T0 writes.
    Trace t;
    begin(t, 0);
    begin(t, 1);
    t.append(mk(0, EventKind::Read, 9));
    t.append(mk(1, EventKind::Write, 9));
    t.append(mk(0, EventKind::Write, 9));
    AtomicityDetector d;
    auto fs = d.analyze(t);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].category, "atomicity-violation");
    EXPECT_NE(fs[0].message.find("RWW"), std::string::npos);
}

TEST(Atomicity, SerializableInterleavingClean)
{
    // T1 only reads between T0's two reads: serializable.
    Trace t;
    begin(t, 0);
    begin(t, 1);
    t.append(mk(0, EventKind::Read, 9));
    t.append(mk(1, EventKind::Read, 9));
    t.append(mk(0, EventKind::Read, 9));
    AtomicityDetector d;
    EXPECT_TRUE(d.analyze(t).empty());
}

TEST(Atomicity, NoRemoteInterleavingClean)
{
    Trace t;
    begin(t, 0);
    begin(t, 1);
    t.append(mk(0, EventKind::Read, 9));
    t.append(mk(0, EventKind::Write, 9));
    t.append(mk(1, EventKind::Write, 9));
    AtomicityDetector d;
    EXPECT_TRUE(d.analyze(t).empty());
}

TEST(Atomicity, WindowLimitsRegionSize)
{
    Trace t;
    begin(t, 0);
    begin(t, 1);
    t.append(mk(0, EventKind::Read, 9));
    t.append(mk(1, EventKind::Write, 9));
    for (int i = 0; i < 10; ++i)
        t.append(mk(0, EventKind::Yield));
    t.append(mk(0, EventKind::Write, 9));
    AtomicityDetector d;
    d.setWindow(4);
    EXPECT_TRUE(d.analyze(t).empty());
    d.setWindow(64);
    EXPECT_EQ(d.analyze(t).size(), 1u);
}

// ---------------------------------------------------------------
// Multi-variable detector
// ---------------------------------------------------------------

Trace
correlatedPairTrace(bool interleaved)
{
    // T0 twice accesses the pair (8, 9) together (training the
    // correlation); on the last pass T1 writes 9 in the middle.
    Trace t;
    t.registerObject({8, ObjectKind::Variable, "len", 0});
    t.registerObject({9, ObjectKind::Variable, "buf", 0});
    begin(t, 0);
    begin(t, 1);
    for (int round = 0; round < 2; ++round) {
        t.append(mk(0, EventKind::Write, 8));
        t.append(mk(0, EventKind::Write, 9));
    }
    t.append(mk(0, EventKind::Read, 8));
    if (interleaved)
        t.append(mk(1, EventKind::Write, 9));
    t.append(mk(0, EventKind::Read, 9));
    return t;
}

TEST(MultiVar, InfersCorrelationAndFlagsInterleaving)
{
    Trace t = correlatedPairTrace(true);
    MultiVarDetector d;
    auto pairs = d.inferCorrelations(t);
    ASSERT_EQ(pairs.size(), 1u);
    EXPECT_EQ(pairs[0].first, 8u);
    EXPECT_EQ(pairs[0].second, 9u);
    auto fs = d.analyze(t);
    ASSERT_GE(fs.size(), 1u);
    EXPECT_EQ(fs[0].category, "multivar-atomicity-violation");
}

TEST(MultiVar, CleanWithoutInterleaving)
{
    Trace t = correlatedPairTrace(false);
    MultiVarDetector d;
    EXPECT_TRUE(d.analyze(t).empty());
}

TEST(MultiVar, NoCorrelationNoFinding)
{
    Trace t;
    begin(t, 0);
    begin(t, 1);
    t.append(mk(0, EventKind::Write, 8));
    t.append(mk(1, EventKind::Write, 9));
    MultiVarDetector d;
    EXPECT_TRUE(d.inferCorrelations(t).empty());
    EXPECT_TRUE(d.analyze(t).empty());
}

// ---------------------------------------------------------------
// Order detector
// ---------------------------------------------------------------

TEST(Order, ReadBeforeInit)
{
    Trace t;
    begin(t, 0);
    Event e = mk(0, EventKind::Read, 9);
    e.aux = 1; // executor's uninitialized-read marker
    t.append(e);
    OrderDetector d;
    auto fs = d.analyze(t);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_NE(fs[0].message.find("read-before-init"),
              std::string::npos);
}

TEST(Order, UseAfterFreeAndReallocReset)
{
    Trace t;
    begin(t, 0);
    begin(t, 1);
    t.append(mk(0, EventKind::Free, 9));
    t.append(mk(1, EventKind::Write, 9)); // UAF
    OrderDetector d;
    auto fs = d.analyze(t);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].category, "order-violation");

    // After re-allocation the access is clean again.
    Trace t2;
    begin(t2, 0);
    t2.append(mk(0, EventKind::Free, 9));
    t2.append(mk(0, EventKind::Alloc, 9));
    t2.append(mk(0, EventKind::Write, 9));
    EXPECT_TRUE(d.analyze(t2).empty());
}

TEST(Order, StuckWaitReported)
{
    Trace t;
    begin(t, 0);
    t.append(mk(0, EventKind::Lock, 5));
    t.append(mk(0, EventKind::WaitBegin, 7, 5));
    // no WaitResume: missed notification
    OrderDetector d;
    auto fs = d.analyze(t);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].category, "stuck-wait");
}

TEST(Order, ResumedWaitClean)
{
    Trace t;
    begin(t, 0);
    begin(t, 1);
    t.append(mk(0, EventKind::Lock, 5));
    t.append(mk(0, EventKind::WaitBegin, 7, 5));
    t.append(mk(1, EventKind::SignalOne, 7));
    t.append(mk(0, EventKind::WaitResume, 7, 5, 4));
    OrderDetector d;
    EXPECT_TRUE(d.analyze(t).empty());
}

// ---------------------------------------------------------------
// Deadlock detector
// ---------------------------------------------------------------

TEST(Deadlock, AbbaCycle)
{
    Trace t;
    begin(t, 0);
    begin(t, 1);
    t.append(mk(0, EventKind::Lock, 5));
    t.append(mk(0, EventKind::Lock, 6));
    t.append(mk(0, EventKind::Unlock, 6));
    t.append(mk(0, EventKind::Unlock, 5));
    t.append(mk(1, EventKind::Lock, 6));
    t.append(mk(1, EventKind::Lock, 5));
    t.append(mk(1, EventKind::Unlock, 5));
    t.append(mk(1, EventKind::Unlock, 6));
    DeadlockDetector d;
    auto fs = d.analyze(t);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].category, "deadlock-cycle");
    EXPECT_NE(fs[0].message.find("2 resources"), std::string::npos);
}

TEST(Deadlock, ConsistentOrderClean)
{
    Trace t;
    begin(t, 0);
    begin(t, 1);
    for (ThreadId tid : {0, 1}) {
        t.append(mk(tid, EventKind::Lock, 5));
        t.append(mk(tid, EventKind::Lock, 6));
        t.append(mk(tid, EventKind::Unlock, 6));
        t.append(mk(tid, EventKind::Unlock, 5));
    }
    DeadlockDetector d;
    EXPECT_TRUE(d.analyze(t).empty());
}

TEST(Deadlock, SelfRelockViaBlockedEvent)
{
    Trace t;
    begin(t, 0);
    t.append(mk(0, EventKind::Lock, 5));
    t.append(mk(0, EventKind::Blocked, 5, kNoObject, 0));
    DeadlockDetector d;
    auto fs = d.analyze(t);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_NE(fs[0].message.find("1 resource"), std::string::npos);
}

TEST(Deadlock, ThreeLockCycle)
{
    Trace t;
    begin(t, 0);
    begin(t, 1);
    begin(t, 2);
    auto holdPair = [&](ThreadId tid, ObjectId a, ObjectId b) {
        t.append(mk(tid, EventKind::Lock, a));
        t.append(mk(tid, EventKind::Lock, b));
        t.append(mk(tid, EventKind::Unlock, b));
        t.append(mk(tid, EventKind::Unlock, a));
    };
    holdPair(0, 5, 6);
    holdPair(1, 6, 7);
    holdPair(2, 7, 5);
    DeadlockDetector d;
    auto fs = d.analyze(t);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_NE(fs[0].message.find("3 resources"), std::string::npos);
}

TEST(Deadlock, GraphEdgesExposed)
{
    Trace t;
    begin(t, 0);
    t.append(mk(0, EventKind::Lock, 5));
    t.append(mk(0, EventKind::Lock, 6));
    LockOrderGraph g(t);
    ASSERT_EQ(g.edges().size(), 1u);
    EXPECT_TRUE(g.edges().at(5).count(6));
}

// ---------------------------------------------------------------
// Simulator integration: run buggy programs, detect on the trace
// ---------------------------------------------------------------

TEST(Integration, RacyIncrementCaughtByRaceAndAtomicity)
{
    auto factory = [] {
        auto v = std::make_shared<std::unique_ptr<sim::SharedVar<int>>>();
        *v = std::make_unique<sim::SharedVar<int>>("counter", 0);
        sim::Program p;
        auto body = [v] { (*v)->add(1); };
        p.threads.push_back({"a", body});
        p.threads.push_back({"b", body});
        return p;
    };
    sim::RandomPolicy policy;
    // Find a seed where the interleaving actually happened.
    bool atomicitySeen = false;
    bool raceSeen = false;
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        sim::ExecOptions opt;
        opt.seed = seed;
        auto exec = sim::runProgram(factory, policy, opt);
        HbRaceDetector race;
        AtomicityDetector atom;
        raceSeen |= !race.analyze(exec.trace).empty();
        atomicitySeen |= !atom.analyze(exec.trace).empty();
    }
    EXPECT_TRUE(raceSeen);
    EXPECT_TRUE(atomicitySeen);
}

TEST(Integration, DeadlockedExecutionYieldsCycle)
{
    auto factory = [] {
        struct State
        {
            std::unique_ptr<sim::SimMutex> a, b;
        };
        auto s = std::make_shared<State>();
        s->a = std::make_unique<sim::SimMutex>("A");
        s->b = std::make_unique<sim::SimMutex>("B");
        sim::Program p;
        p.threads.push_back({"t1", [s] {
                                 s->a->lock();
                                 s->b->lock();
                                 s->b->unlock();
                                 s->a->unlock();
                             }});
        p.threads.push_back({"t2", [s] {
                                 s->b->lock();
                                 s->a->lock();
                                 s->a->unlock();
                                 s->b->unlock();
                             }});
        return p;
    };
    sim::RandomPolicy policy;
    bool cycleSeen = false;
    for (std::uint64_t seed = 0; seed < 64 && !cycleSeen; ++seed) {
        sim::ExecOptions opt;
        opt.seed = seed;
        auto exec = sim::runProgram(factory, policy, opt);
        DeadlockDetector d;
        if (!d.analyze(exec.trace).empty())
            cycleSeen = true;
        // A cycle must be found at the latest when it deadlocked.
        if (exec.deadlocked)
            EXPECT_FALSE(d.analyze(exec.trace).empty());
    }
    EXPECT_TRUE(cycleSeen);
}

TEST(Integration, AllDetectorsRunCleanOnCleanProgram)
{
    auto factory = [] {
        struct State
        {
            std::unique_ptr<sim::SimMutex> m;
            std::unique_ptr<sim::SharedVar<int>> v;
        };
        auto s = std::make_shared<State>();
        s->m = std::make_unique<sim::SimMutex>("m");
        s->v = std::make_unique<sim::SharedVar<int>>("v", 0);
        sim::Program p;
        auto body = [s] {
            sim::SimLock guard(*s->m);
            s->v->add(1);
        };
        p.threads.push_back({"a", body});
        p.threads.push_back({"b", body});
        return p;
    };
    sim::RandomPolicy policy;
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        sim::ExecOptions opt;
        opt.seed = seed;
        auto exec = sim::runProgram(factory, policy, opt);
        for (auto &d : allDetectors()) {
            EXPECT_TRUE(d->analyze(exec.trace).empty())
                << d->name() << " false positive, seed " << seed;
        }
    }
}

} // namespace
