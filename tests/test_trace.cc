/**
 * @file
 * Unit tests for traces, vector clocks, and the happens-before
 * relation, using hand-built event sequences.
 */

#include <gtest/gtest.h>

#include "trace/hb.hh"
#include "trace/trace.hh"
#include "trace/vector_clock.hh"

namespace
{

using namespace lfm::trace;

Event
mk(ThreadId tid, EventKind kind, ObjectId obj = kNoObject,
   ObjectId obj2 = kNoObject, std::uint64_t aux = 0)
{
    Event e;
    e.thread = tid;
    e.kind = kind;
    e.obj = obj;
    e.obj2 = obj2;
    e.aux = aux;
    return e;
}

TEST(VectorClock, BasicOrdering)
{
    VectorClock a, b;
    a.tick(0);
    b = a;
    b.tick(1);
    EXPECT_TRUE(a.lessEq(b));
    EXPECT_TRUE(a.lessThan(b));
    EXPECT_FALSE(b.lessEq(a));
    EXPECT_FALSE(a.concurrentWith(b));
}

TEST(VectorClock, Concurrency)
{
    VectorClock a, b;
    a.tick(0);
    b.tick(1);
    EXPECT_TRUE(a.concurrentWith(b));
    a.join(b);
    EXPECT_TRUE(b.lessEq(a));
    EXPECT_EQ(a.get(0), 1u);
    EXPECT_EQ(a.get(1), 1u);
}

TEST(VectorClock, JoinGrowsAndEquality)
{
    VectorClock a;
    VectorClock b;
    b.set(5, 3);
    a.join(b);
    EXPECT_EQ(a.get(5), 3u);
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.toString(), "[0,0,0,0,0,3]");
}

TEST(Trace, NamesAndIndices)
{
    Trace t;
    t.registerObject({1, ObjectKind::Variable, "buf", 0});
    t.registerObject({2, ObjectKind::Mutex, "lock", 0});
    t.registerThread(0, "main");
    t.append(mk(0, EventKind::ThreadBegin));
    t.append(mk(0, EventKind::Write, 1));
    t.append(mk(0, EventKind::Lock, 2));
    t.append(mk(0, EventKind::Read, 1));
    t.append(mk(0, EventKind::Unlock, 2));

    EXPECT_EQ(t.objectName(1), "buf");
    EXPECT_EQ(t.objectName(99), "obj#99");
    EXPECT_EQ(t.objectKind(2), ObjectKind::Mutex);
    EXPECT_EQ(t.threadName(0), "main");
    EXPECT_EQ(t.threadName(3), "T3");
    EXPECT_EQ(t.threadCount(), 1u);
    EXPECT_EQ(t.accessesTo(1).size(), 2u);
    EXPECT_EQ(t.accessedVariables(), std::vector<ObjectId>{1});
    EXPECT_EQ(t.lockedObjects(), std::vector<ObjectId>{2});
    EXPECT_TRUE(t.failures().empty());
    EXPECT_FALSE(t.render(t.ev(1)).empty());
}

TEST(Trace, MemoizedIndexReflectsAppendsAfterFirstQuery)
{
    // The access/failure index is built lazily and memoized; appends
    // made after the first query must still be visible on the next
    // one (the index refreshes incrementally, not once).
    Trace t;
    t.registerObject({1, ObjectKind::Variable, "x", 0});
    t.registerObject({2, ObjectKind::Variable, "y", 0});
    t.append(mk(0, EventKind::Write, 1));

    EXPECT_EQ(t.accessesTo(1).size(), 1u);
    EXPECT_TRUE(t.accessesTo(2).empty());
    EXPECT_TRUE(t.failures().empty());

    // Grow the trace after the index exists.
    t.append(mk(1, EventKind::Read, 1));
    t.append(mk(1, EventKind::Write, 2));
    t.append(mk(1, EventKind::FailureMark, 2));

    EXPECT_EQ(t.accessesTo(1).size(), 2u);
    EXPECT_EQ(t.accessesTo(2).size(), 1u);
    ASSERT_EQ(t.failures().size(), 1u);
    EXPECT_EQ(t.failures()[0], t.size() - 1);
    EXPECT_EQ(t.accessedVariables().size(), 2u);

    // Repeated queries are stable (memoized, not re-appended).
    const auto &first = t.accessesTo(1);
    const auto &second = t.accessesTo(1);
    EXPECT_EQ(&first, &second); // same vector: no per-call rebuild
    EXPECT_EQ(first.size(), 2u);
}

TEST(Hb, ProgramOrder)
{
    Trace t;
    t.append(mk(0, EventKind::ThreadBegin, kNoObject, kNoObject,
                kSpuriousWakeup));
    t.append(mk(0, EventKind::Write, 1));
    t.append(mk(0, EventKind::Read, 1));
    HbRelation hb(t);
    EXPECT_TRUE(hb.happensBefore(1, 2));
    EXPECT_FALSE(hb.happensBefore(2, 1));
    EXPECT_FALSE(hb.happensBefore(1, 1));
}

TEST(Hb, UnsyncedAccessesAreConcurrent)
{
    Trace t;
    t.append(mk(0, EventKind::ThreadBegin, kNoObject, kNoObject,
                kSpuriousWakeup));
    t.append(mk(1, EventKind::ThreadBegin, kNoObject, kNoObject,
                kSpuriousWakeup));
    t.append(mk(0, EventKind::Write, 9));
    t.append(mk(1, EventKind::Write, 9));
    HbRelation hb(t);
    EXPECT_TRUE(hb.concurrent(2, 3));
}

TEST(Hb, LockReleaseAcquireOrders)
{
    Trace t;
    t.append(mk(0, EventKind::ThreadBegin, kNoObject, kNoObject,
                kSpuriousWakeup));                       // 0
    t.append(mk(1, EventKind::ThreadBegin, kNoObject, kNoObject,
                kSpuriousWakeup));                       // 1
    t.append(mk(0, EventKind::Lock, 5));                 // 2
    t.append(mk(0, EventKind::Write, 9));                // 3
    t.append(mk(0, EventKind::Unlock, 5));               // 4
    t.append(mk(1, EventKind::Lock, 5));                 // 5
    t.append(mk(1, EventKind::Read, 9));                 // 6
    t.append(mk(1, EventKind::Unlock, 5));               // 7
    HbRelation hb(t);
    EXPECT_TRUE(hb.happensBefore(3, 6));
    EXPECT_TRUE(hb.happensBefore(4, 5));
    EXPECT_FALSE(hb.concurrent(3, 6));
}

TEST(Hb, SpawnAndJoinEdges)
{
    Trace t;
    t.append(mk(0, EventKind::ThreadBegin, kNoObject, kNoObject,
                kSpuriousWakeup));                       // 0
    t.append(mk(0, EventKind::Write, 9));                // 1
    t.append(mk(0, EventKind::Spawn, 100));              // 2
    t.append(mk(1, EventKind::ThreadBegin, kNoObject, kNoObject,
                2));                                     // 3: aux=spawn
    t.append(mk(1, EventKind::Read, 9));                 // 4
    t.append(mk(1, EventKind::ThreadEnd, 100));          // 5
    t.append(mk(0, EventKind::Join, 100, kNoObject, 5)); // 6
    t.append(mk(0, EventKind::Read, 9));                 // 7
    HbRelation hb(t);
    EXPECT_TRUE(hb.happensBefore(1, 4)); // write before child's read
    EXPECT_TRUE(hb.happensBefore(4, 7)); // child's read before join'd
    EXPECT_FALSE(hb.happensBefore(4, 2));
}

TEST(Hb, SignalWaitEdge)
{
    Trace t;
    // waiter: lock, wait_begin (releases), resumes after signal.
    t.append(mk(0, EventKind::ThreadBegin, kNoObject, kNoObject,
                kSpuriousWakeup));                       // 0
    t.append(mk(1, EventKind::ThreadBegin, kNoObject, kNoObject,
                kSpuriousWakeup));                       // 1
    t.append(mk(0, EventKind::Lock, 5));                 // 2
    t.append(mk(0, EventKind::WaitBegin, 7, 5));         // 3
    t.append(mk(1, EventKind::Lock, 5));                 // 4
    t.append(mk(1, EventKind::Write, 9));                // 5
    t.append(mk(1, EventKind::SignalOne, 7));            // 6
    t.append(mk(1, EventKind::Unlock, 5));               // 7
    t.append(mk(0, EventKind::WaitResume, 7, 5, 6));     // 8
    t.append(mk(0, EventKind::Read, 9));                 // 9
    HbRelation hb(t);
    EXPECT_TRUE(hb.happensBefore(5, 9));
    EXPECT_TRUE(hb.happensBefore(6, 8));
}

TEST(Hb, SemaphorePostWaitEdge)
{
    Trace t;
    t.append(mk(0, EventKind::ThreadBegin, kNoObject, kNoObject,
                kSpuriousWakeup));                       // 0
    t.append(mk(1, EventKind::ThreadBegin, kNoObject, kNoObject,
                kSpuriousWakeup));                       // 1
    t.append(mk(0, EventKind::Write, 9));                // 2
    t.append(mk(0, EventKind::SemPost, 6));              // 3
    t.append(mk(1, EventKind::SemWait, 6, kNoObject, 3)); // 4
    t.append(mk(1, EventKind::Read, 9));                 // 5
    HbRelation hb(t);
    EXPECT_TRUE(hb.happensBefore(2, 5));
}

TEST(Hb, BarrierGenerationOrders)
{
    Trace t;
    t.append(mk(0, EventKind::ThreadBegin, kNoObject, kNoObject,
                kSpuriousWakeup));                       // 0
    t.append(mk(1, EventKind::ThreadBegin, kNoObject, kNoObject,
                kSpuriousWakeup));                       // 1
    t.append(mk(0, EventKind::Write, 8));                // 2
    t.append(mk(1, EventKind::Write, 9));                // 3
    t.append(mk(0, EventKind::BarrierCross, 4, kNoObject, 0)); // 4
    t.append(mk(1, EventKind::BarrierCross, 4, kNoObject, 0)); // 5
    t.append(mk(0, EventKind::Read, 9));                 // 6
    t.append(mk(1, EventKind::Read, 8));                 // 7
    HbRelation hb(t);
    EXPECT_TRUE(hb.happensBefore(3, 6)); // t1's write visible after bar
    EXPECT_TRUE(hb.happensBefore(2, 7)); // t0's write visible after bar
    EXPECT_TRUE(hb.concurrent(2, 3));
}

TEST(Hb, RWLockReadersConcurrentWritersOrdered)
{
    Trace t;
    t.append(mk(0, EventKind::ThreadBegin, kNoObject, kNoObject,
                kSpuriousWakeup));                       // 0
    t.append(mk(1, EventKind::ThreadBegin, kNoObject, kNoObject,
                kSpuriousWakeup));                       // 1
    t.append(mk(2, EventKind::ThreadBegin, kNoObject, kNoObject,
                kSpuriousWakeup));                       // 2
    t.append(mk(0, EventKind::Lock, 5));                 // 3 writer
    t.append(mk(0, EventKind::Write, 9));                // 4
    t.append(mk(0, EventKind::Unlock, 5));               // 5
    t.append(mk(1, EventKind::RdLock, 5));               // 6
    t.append(mk(2, EventKind::RdLock, 5));               // 7
    t.append(mk(1, EventKind::Read, 9));                 // 8
    t.append(mk(2, EventKind::Read, 9));                 // 9
    t.append(mk(1, EventKind::RdUnlock, 5));             // 10
    t.append(mk(2, EventKind::RdUnlock, 5));             // 11
    HbRelation hb(t);
    EXPECT_TRUE(hb.happensBefore(4, 8));
    EXPECT_TRUE(hb.happensBefore(4, 9));
    EXPECT_TRUE(hb.concurrent(8, 9)); // two readers unordered
}

} // namespace
