/**
 * @file
 * Active guided-testing suite: flipping observed orders of labeled
 * conflicting accesses must expose the kernel bugs in a bounded
 * number of runs, and must stay silent on fixed variants.
 */

#include <gtest/gtest.h>

#include "bugs/registry.hh"
#include "explore/active.hh"

namespace
{

using namespace lfm;
using explore::ActiveOptions;
using explore::activeTest;

TEST(ActiveTest, ExposesTheLogBufferBug)
{
    const auto *kernel = bugs::findKernel("apache-25520");
    ASSERT_NE(kernel, nullptr);
    auto result = activeTest(kernel->factory(bugs::Variant::Buggy));
    EXPECT_GT(result.candidates, 0u);
    EXPECT_GT(result.exposing(), 0u)
        << "no flip exposed the lost-update bug";
}

TEST(ActiveTest, StaysSilentOnTheFixedVariant)
{
    const auto *kernel = bugs::findKernel("apache-25520");
    ASSERT_NE(kernel, nullptr);
    auto result = activeTest(kernel->factory(bugs::Variant::Fixed));
    EXPECT_EQ(result.exposing(), 0u);
}

TEST(ActiveTest, StopAtFirstBoundsTheCampaign)
{
    const auto *kernel = bugs::findKernel("moz-jsclearscope");
    ASSERT_NE(kernel, nullptr);
    ActiveOptions opt;
    opt.stopAtFirst = true;
    auto result =
        activeTest(kernel->factory(bugs::Variant::Buggy), opt);
    ASSERT_GT(result.exposing(), 0u);
    // Campaign ended right after the first exposing flip.
    EXPECT_TRUE(result.attempts.back().exposedBug());
}

class ActiveKernelTest
    : public ::testing::TestWithParam<const bugs::BugKernel *>
{
};

std::string
activeName(const ::testing::TestParamInfo<const bugs::BugKernel *> &i)
{
    std::string name = i.param->info().id;
    for (char &c : name) {
        if (c == '-')
            c = '_';
    }
    return name;
}

TEST_P(ActiveKernelTest, FlippingObservedOrdersExposesTheBug)
{
    const auto &kernel = *GetParam();
    ActiveOptions opt;
    opt.runsPerCandidate = 16;
    auto result = activeTest(kernel.factory(bugs::Variant::Buggy),
                             opt);
    EXPECT_TRUE(result.foundBug())
        << kernel.info().id << ": " << result.candidates
        << " candidates, none exposed the bug";
}

/**
 * Kernels whose buggy behaviour is reachable by inverting the order
 * of one observed conflicting pair (data accesses, frees, or
 * signal/wait sync ops). Deadlock kernels block on lock acquisitions
 * and the "other"-pattern kernels need long adversarial schedules —
 * both out of scope for pairwise flipping, exactly as the study's
 * taxonomy predicts.
 */
std::vector<const bugs::BugKernel *>
flippableKernels()
{
    std::vector<const bugs::BugKernel *> out;
    for (const auto *k : bugs::allKernels()) {
        const auto &info = k->info();
        if (info.isDeadlock())
            continue;
        if (info.patterns.count(study::Pattern::Other))
            continue;
        out.push_back(k);
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(FlippableKernels, ActiveKernelTest,
                         ::testing::ValuesIn(flippableKernels()),
                         activeName);

} // namespace
