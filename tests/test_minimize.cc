/**
 * @file
 * Schedule minimization: failing schedules shrink to few
 * preemptions, still fail after shrinking, and the study's
 * prediction holds — kernels with a <=4-op certificate minimize to a
 * couple of forced switches.
 */

#include <gtest/gtest.h>

#include <memory>

#include "bugs/registry.hh"
#include "explore/dfs.hh"
#include "explore/minimize.hh"
#include "sim/policy.hh"
#include "sim/shared.hh"
#include "sim/sync.hh"

namespace
{

using namespace lfm;

sim::ProgramFactory
racyFactory()
{
    return [] {
        auto v =
            std::make_shared<std::unique_ptr<sim::SharedVar<int>>>();
        *v = std::make_unique<sim::SharedVar<int>>("c", 0);
        sim::Program p;
        auto body = [v] {
            for (int i = 0; i < 2; ++i)
                (*v)->add(1);
        };
        p.threads.push_back({"a", body});
        p.threads.push_back({"b", body});
        p.oracle = [v]() -> std::optional<std::string> {
            if ((*v)->peek() != 4)
                return "lost update";
            return std::nullopt;
        };
        return p;
    };
}

/** A failing path found by random stress (typically noisy). */
std::vector<std::size_t>
noisyFailingPath(const sim::ProgramFactory &factory)
{
    sim::RandomPolicy policy;
    for (std::uint64_t seed = 0;; ++seed) {
        sim::ExecOptions opt;
        opt.seed = seed;
        auto exec = sim::runProgram(factory, policy, opt);
        if (exec.failed()) {
            std::vector<std::size_t> path;
            for (const auto &d : exec.decisions)
                path.push_back(d.chosen);
            return path;
        }
        if (seed > 2000)
            return {};
    }
}

TEST(Minimize, ShrinksNoisyRandomSchedule)
{
    auto factory = racyFactory();
    auto path = noisyFailingPath(factory);
    ASSERT_FALSE(path.empty());

    auto result = explore::minimizeSchedule(factory, path);
    EXPECT_TRUE(result.stillFails);
    EXPECT_LE(result.preemptionsAfter, result.preemptionsBefore);
    // A lost update needs at most two forced switches.
    EXPECT_LE(result.preemptionsAfter, 2u);
}

TEST(Minimize, NonFailingPathIsReturnedUnchanged)
{
    auto factory = racyFactory();
    // Round-robin completes both threads serially: no failure.
    sim::RoundRobinPolicy rr;
    auto benign = sim::runProgram(factory, rr);
    ASSERT_FALSE(benign.failed());
    std::vector<std::size_t> path;
    for (const auto &d : benign.decisions)
        path.push_back(d.chosen);

    auto result = explore::minimizeSchedule(factory, path);
    EXPECT_FALSE(result.stillFails);
    EXPECT_EQ(result.schedule, path);
}

TEST(Minimize, PreemptionCountingMatchesManualTrace)
{
    auto factory = racyFactory();
    sim::RoundRobinPolicy rr;
    auto serial = sim::runProgram(factory, rr);
    // Round-robin never leaves a runnable thread: 0 preemptions.
    EXPECT_EQ(explore::countPreemptions(serial), 0u);
}

class MinimizeKernelTest
    : public ::testing::TestWithParam<const bugs::BugKernel *>
{
};

std::string
minName(const ::testing::TestParamInfo<const bugs::BugKernel *> &i)
{
    std::string name = i.param->info().id;
    for (char &c : name) {
        if (c == '-')
            c = '_';
    }
    return name;
}

TEST_P(MinimizeKernelTest, KernelSchedulesMinimizeToFewPreemptions)
{
    const auto &kernel = *GetParam();
    auto factory = kernel.factory(bugs::Variant::Buggy);

    explore::DfsOptions opt;
    opt.maxExecutions = 4000;
    opt.stopAtFirst = true;
    auto found = explore::exploreDfs(factory, opt);
    ASSERT_TRUE(found.firstManifestPath.has_value())
        << kernel.info().id;

    auto result =
        explore::minimizeSchedule(factory, *found.firstManifestPath);
    EXPECT_TRUE(result.stillFails) << kernel.info().id;
    // The study's finding: a handful of ordered operations — hence a
    // handful of forced preemptions — suffices.
    EXPECT_LE(result.preemptionsAfter, 4u) << kernel.info().id;
}

/** Certificate-carrying non-"other" kernels minimize predictably. */
std::vector<const bugs::BugKernel *>
minimizableKernels()
{
    std::vector<const bugs::BugKernel *> out;
    for (const auto *k : bugs::allKernels()) {
        if (k->info().patterns.count(study::Pattern::Other))
            continue;
        if (k->info().manifestation.empty() &&
            !k->info().isDeadlock())
            continue;
        out.push_back(k);
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(Kernels, MinimizeKernelTest,
                         ::testing::ValuesIn(minimizableKernels()),
                         minName);

} // namespace
