/**
 * @file
 * STM tests: isolation, atomicity, abort/retry accounting, and the
 * no-torn-commit guarantee under adversarial schedules.
 */

#include <gtest/gtest.h>

#include <memory>

#include "explore/dfs.hh"
#include "explore/runner.hh"
#include "sim/policy.hh"
#include "sim/sync.hh"
#include "stm/stm.hh"

namespace
{

using namespace lfm;

struct TwoVarState
{
    std::unique_ptr<stm::StmSpace> space;
    std::unique_ptr<stm::TVar> x;
    std::unique_ptr<stm::TVar> y;
};

std::shared_ptr<TwoVarState>
makeTwoVars(std::int64_t x0, std::int64_t y0)
{
    auto s = std::make_shared<TwoVarState>();
    s->space = std::make_unique<stm::StmSpace>();
    s->x = std::make_unique<stm::TVar>("x", x0);
    s->y = std::make_unique<stm::TVar>("y", y0);
    return s;
}

TEST(Stm, SingleThreadReadWriteCommit)
{
    sim::RandomPolicy policy;
    auto exec = sim::runProgram(
        [] {
            auto s = makeTwoVars(1, 2);
            sim::Program p;
            p.threads.push_back({"t", [s] {
                                     stm::atomically(
                                         *s->space, [&](stm::Txn &tx) {
                                             auto x = tx.read(*s->x);
                                             tx.write(*s->y, x + 10);
                                         });
                                 }});
            p.oracle = [s]() -> std::optional<std::string> {
                if (s->y->peek() != 11)
                    return "commit did not publish";
                return std::nullopt;
            };
            return p;
        },
        policy);
    EXPECT_FALSE(exec.failed());
}

TEST(Stm, ConcurrentIncrementsNeverLost)
{
    auto factory = [] {
        auto s = makeTwoVars(0, 0);
        sim::Program p;
        auto body = [s] {
            stm::atomically(*s->space, [&](stm::Txn &tx) {
                tx.add(*s->x, 1);
            });
        };
        p.threads.push_back({"a", body});
        p.threads.push_back({"b", body});
        p.oracle = [s]() -> std::optional<std::string> {
            if (s->x->peek() != 2)
                return "transactional increment lost";
            return std::nullopt;
        };
        return p;
    };
    // Systematic (bounded) search: no explored interleaving may lose
    // an update. The tree is truncated because an adversarial
    // scheduler can spin a conflicting transaction's retry loop
    // indefinitely against the commit token; those branches hit the
    // decision cap and end without a verdict.
    explore::DfsOptions opt;
    opt.maxExecutions = 600;
    opt.maxDecisions = 300;
    auto result = explore::exploreDfs(factory, opt);
    EXPECT_EQ(result.manifestations, 0u);
    EXPECT_GT(result.executions, 1u);

    // Plus randomized stress across many seeds.
    sim::RandomPolicy random;
    explore::StressOptions stress;
    stress.runs = 200;
    stress.exec.maxDecisions = 20000;
    auto sres = explore::stressProgram(factory, random, stress);
    EXPECT_EQ(sres.manifestations, 0u);
}

TEST(Stm, NoTornMultiVariableState)
{
    // Writer transactionally updates the invariant-linked pair;
    // reader transactionally reads both: never a mixed view.
    auto factory = [] {
        auto s = makeTwoVars(0, 0);
        sim::Program p;
        p.threads.push_back(
            {"writer", [s] {
                 stm::atomically(*s->space, [&](stm::Txn &tx) {
                     tx.write(*s->x, 1);
                     tx.write(*s->y, 1);
                 });
             }});
        p.threads.push_back(
            {"reader", [s] {
                 std::int64_t x = 0, y = 0;
                 stm::atomically(*s->space, [&](stm::Txn &tx) {
                     x = tx.read(*s->x);
                     y = tx.read(*s->y);
                 });
                 sim::simCheck(x == y, "torn transactional view");
             }});
        return p;
    };
    explore::DfsOptions opt;
    opt.maxExecutions = 600;
    opt.maxDecisions = 300;
    auto result = explore::exploreDfs(factory, opt);
    EXPECT_EQ(result.manifestations, 0u);

    sim::RandomPolicy random;
    explore::StressOptions stress;
    stress.runs = 200;
    stress.exec.maxDecisions = 20000;
    auto sres = explore::stressProgram(factory, random, stress);
    EXPECT_EQ(sres.manifestations, 0u);
}

/** Always switches threads when possible: maximal interleaving. */
class AlternatePolicy : public sim::SchedulePolicy
{
  public:
    std::size_t
    pick(const sim::SchedView &view) override
    {
        for (std::size_t i = 0; i < view.choices.size(); ++i) {
            if (view.choices[i].tid != view.lastRun &&
                !view.choices[i].spuriousWake)
                return i;
        }
        return 0;
    }
    const char *name() const override { return "alternate"; }
};

TEST(Stm, ConflictCountsAreTracked)
{
    AlternatePolicy policy;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    auto exec = sim::runProgram(
        [&commits, &aborts] {
            auto s = makeTwoVars(0, 0);
            sim::Program p;
            auto body = [s] {
                for (int i = 0; i < 3; ++i) {
                    stm::atomically(*s->space, [&](stm::Txn &tx) {
                        tx.add(*s->x, 1);
                    });
                }
            };
            p.threads.push_back({"a", body});
            p.threads.push_back({"b", body});
            p.oracle = [s, &commits,
                        &aborts]() -> std::optional<std::string> {
                commits = s->space->commits();
                aborts = s->space->aborts();
                if (s->x->peek() != 6)
                    return "increment lost";
                return std::nullopt;
            };
            return p;
        },
        policy);
    EXPECT_FALSE(exec.failed());
    EXPECT_EQ(commits, 6u);
    // Round-robin interleaves the transactions, so at least one
    // conflict abort must have occurred.
    EXPECT_GT(aborts, 0u);
}

TEST(Stm, ReadYourOwnWrites)
{
    sim::RandomPolicy policy;
    auto exec = sim::runProgram(
        [] {
            auto s = makeTwoVars(5, 0);
            sim::Program p;
            p.threads.push_back(
                {"t", [s] {
                     stm::atomically(*s->space, [&](stm::Txn &tx) {
                         tx.write(*s->x, 9);
                         sim::simCheck(tx.read(*s->x) == 9,
                                       "write-set read missed");
                     });
                 }});
            return p;
        },
        policy);
    EXPECT_FALSE(exec.failed());
}

TEST(Stm, PlainAccessStillRacesLikeTheBuggyCode)
{
    // TVar::readPlain/writePlain bypass the STM: the lost update is
    // still possible, which is exactly what the buggy kernels do.
    auto factory = [] {
        auto s = makeTwoVars(0, 0);
        sim::Program p;
        auto body = [s] {
            const auto v = s->x->readPlain("r");
            s->x->writePlain(v + 1, "w");
        };
        p.threads.push_back({"a", body});
        p.threads.push_back({"b", body});
        p.oracle = [s]() -> std::optional<std::string> {
            if (s->x->peek() != 2)
                return "lost update";
            return std::nullopt;
        };
        return p;
    };
    auto result = explore::exploreDfs(factory);
    EXPECT_GT(result.manifestations, 0u);
}

} // namespace
