/**
 * @file
 * Executor-concept and sharded-campaign robustness tests: backend
 * equivalence of the task face (inline == 1-worker pool), unit-face
 * contract checks, shard-count invariance of the merged study
 * numbers, and the chaos gates — SIGKILLed shards, stragglers,
 * benched shards, torn journal tails and resume all converge to the
 * uninterrupted reference result.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "bugs/registry.hh"
#include "explore/parallel.hh"
#include "explore/runner.hh"
#include "explore/sharded.hh"
#include "sim/policy.hh"
#include "sim/shared.hh"
#include "support/executor.hh"
#include "support/failsafe.hh"
#include "support/sandbox.hh"

namespace
{

using namespace lfm;

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

/** Shard children re-spawn simulator threads after fork(), which
 * TSan does not support after a multi-threaded fork; the fork-based
 * gates run under the plain and ASan ctest stages instead. */
#define SKIP_FORK_TESTS_UNDER_TSAN()                                   \
    do {                                                               \
        if (kTsan)                                                     \
            GTEST_SKIP()                                               \
                << "fork-based shard children not run under TSan";     \
    } while (0)

/** Two threads, each: one unlocked increment on a shared counter. */
sim::ProgramFactory
racyFactory()
{
    return [] {
        auto v =
            std::make_shared<std::unique_ptr<sim::SharedVar<int>>>();
        *v = std::make_unique<sim::SharedVar<int>>("c", 0);
        sim::Program p;
        auto body = [v] { (*v)->add(1); };
        p.threads.push_back({"a", body});
        p.threads.push_back({"b", body});
        p.oracle = [v]() -> std::optional<std::string> {
            if ((*v)->peek() != 2)
                return "lost update";
            return std::nullopt;
        };
        return p;
    };
}

/** Writer publishes a flag before its payload; reader dereferences
 * null when it observes the torn state — some seeds genuinely
 * SIGSEGV the executing process. */
sim::ProgramFactory
crashyFactory()
{
    return [] {
        struct State
        {
            std::unique_ptr<sim::SharedVar<int>> ready;
            std::unique_ptr<sim::SharedVar<int>> data;
        };
        auto s = std::make_shared<State>();
        s->ready = std::make_unique<sim::SharedVar<int>>("ready", 0);
        s->data = std::make_unique<sim::SharedVar<int>>("data", 0);
        sim::Program p;
        p.threads.push_back({"writer", [s] {
                                 s->ready->set(1);
                                 s->data->set(42);
                             }});
        p.threads.push_back({"reader", [s] {
                                 if (s->ready->get() == 1 &&
                                     s->data->get() != 42) {
                                     volatile int *null = nullptr;
                                     *null = 1;
                                 }
                             }});
        return p;
    };
}

/** A slice of the kernel suite for the shard-count invariance sweep. */
std::vector<const bugs::BugKernel *>
kernelSample(std::size_t count)
{
    const auto &all = bugs::allKernels();
    std::vector<const bugs::BugKernel *> sample;
    for (const auto *kernel : all) {
        sample.push_back(kernel);
        if (sample.size() == count)
            break;
    }
    return sample;
}

explore::StressOptions
baseOptions(std::size_t runs = 25)
{
    explore::StressOptions opt;
    opt.runs = runs;
    opt.exec.maxDecisions = 4000;
    return opt;
}

/** Classic single-worker reference campaign. */
explore::StressResult
classicStress(const sim::ProgramFactory &factory,
              const explore::StressOptions &opt)
{
    return explore::ParallelRunner(1).stress(
        factory, explore::makePolicy<sim::RandomPolicy>(), opt);
}

/** A fresh per-test state directory under the gtest temp root. */
std::string
freshStateDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "lfm_sharded_" + name +
                            "_" + std::to_string(::getpid());
    std::remove(dir.c_str());
    // shardedStress creates journals inside; the directory itself
    // must exist.
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

explore::StressResult
shardedStress(const sim::ProgramFactory &factory,
              const explore::StressOptions &opt,
              const explore::ShardedOptions &sharded,
              explore::ShardedStats *stats = nullptr)
{
    return explore::shardedStress(
        factory, explore::makePolicy<sim::RandomPolicy>(), opt,
        sharded, explore::defaultManifest, stats);
}

/** The canonical result fields every backend / failure history must
 * agree on (crash prefixes excluded: journals drop them by design). */
void
expectSameCampaign(const explore::StressResult &a,
                   const explore::StressResult &b)
{
    EXPECT_EQ(a.runs, b.runs);
    EXPECT_EQ(a.manifestations, b.manifestations);
    EXPECT_EQ(a.firstManifestSeed, b.firstManifestSeed);
    EXPECT_DOUBLE_EQ(a.avgDecisions, b.avgDecisions);
    EXPECT_EQ(a.truncatedRuns, b.truncatedRuns);
    EXPECT_EQ(a.manifestedSeeds, b.manifestedSeeds);
    EXPECT_EQ(a.crashedRuns, b.crashedRuns);
    ASSERT_EQ(a.crashes.size(), b.crashes.size());
    for (std::size_t i = 0; i < a.crashes.size(); ++i) {
        EXPECT_EQ(a.crashes[i].unit, b.crashes[i].unit);
        EXPECT_EQ(a.crashes[i].signal, b.crashes[i].signal);
    }
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// ---------------------------------------------------------------
// Task face: inline == pool, bulk coverage, cancellation, policy
// ---------------------------------------------------------------

TEST(ExecutorTaskFace, InlineMatchesOneWorkerPoolVisitOrder)
{
    const auto inlineExec =
        support::makeExecutor(support::ExecBackend::Inline);
    const auto poolExec =
        support::makeExecutor(support::ExecBackend::Pool, 1);

    auto record = [](support::Executor &exec) {
        std::vector<int> order;
        for (int i = 0; i < 6; ++i)
            exec.execute([&order, i](unsigned) { order.push_back(i); });
        exec.run();
        return order;
    };

    const auto a = record(*inlineExec);
    const auto b = record(*poolExec);
    EXPECT_EQ(a, b);
    // Both drain the private deque LIFO.
    EXPECT_EQ(a, (std::vector<int>{5, 4, 3, 2, 1, 0}));
    EXPECT_EQ(inlineExec->lastRunStats().executed, 6u);
    EXPECT_EQ(poolExec->lastRunStats().executed, 6u);
}

TEST(ExecutorTaskFace, NestedSubmissionDrainsInSameRun)
{
    support::InlineExecutor exec;
    std::vector<int> order;
    exec.execute([&](unsigned) {
        order.push_back(0);
        exec.execute([&](unsigned) { order.push_back(1); });
    });
    exec.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(exec.lastRunStats().executed, 2u);
}

TEST(ExecutorTaskFace, BulkExecuteCoversEveryIndexOnce)
{
    for (const unsigned workers : {1u, 4u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        const auto exec = support::makeExecutorFor(workers);
        std::vector<std::atomic<int>> hits(97);
        exec->bulkExecute(hits.size(),
                          [&](std::size_t i, unsigned worker) {
                              ASSERT_LT(worker, exec->concurrency());
                              hits[i].fetch_add(1);
                          });
        exec->run();
        for (std::size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
        EXPECT_EQ(exec->lastRunStats().executed, hits.size());
    }
}

TEST(ExecutorTaskFace, CancelledTokenDrainsTasksUnrun)
{
    support::CancellationToken token;
    token.requestCancel("test");
    for (const auto backend :
         {support::ExecBackend::Inline, support::ExecBackend::Pool}) {
        SCOPED_TRACE(backend == support::ExecBackend::Inline
                         ? "inline"
                         : "pool");
        const auto exec = support::makeExecutor(backend, 2);
        exec->setCancel(&token);
        std::atomic<int> ran{0};
        for (int i = 0; i < 10; ++i)
            exec->execute([&ran](unsigned) { ran.fetch_add(1); });
        exec->run();
        EXPECT_EQ(ran.load(), 0);
        EXPECT_EQ(exec->lastRunStats().executed, 0u);
        EXPECT_EQ(exec->lastRunStats().drained, 10u);
    }
}

TEST(ExecutorTaskFace, FirstExceptionRethrownAfterDrain)
{
    support::InlineExecutor exec;
    int ran = 0;
    // LIFO: task 2 runs first and throws; 1 and 0 drain unrun.
    for (int i = 0; i < 3; ++i) {
        exec.execute([&ran, i](unsigned) {
            ++ran;
            if (i == 2)
                throw std::runtime_error("boom");
        });
    }
    EXPECT_THROW(exec.run(), std::runtime_error);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(exec.lastRunStats().executed, 1u);
    EXPECT_EQ(exec.lastRunStats().drained, 2u);
    // The executor stays reusable after a throw.
    exec.execute([&ran](unsigned) { ++ran; });
    exec.run();
    EXPECT_EQ(ran, 2);
}

TEST(ExecutorTaskFace, FactoryRoutesSequentialWorkInline)
{
    EXPECT_STREQ(support::makeExecutorFor(1)->backendName(), "inline");
    EXPECT_STREQ(support::makeExecutorFor(2)->backendName(),
                 "workpool");
    EXPECT_STREQ(
        support::makeExecutor(support::ExecBackend::Inline)
            ->backendName(),
        "inline");
    EXPECT_EQ(support::makeExecutorFor(4)->concurrency(), 4u);
}

// ---------------------------------------------------------------
// Unit face
// ---------------------------------------------------------------

TEST(ExecutorUnitFace, InlineRunsUnitsAndHonorsSkip)
{
    support::UnitCampaign campaign;
    campaign.units = {0, 1, 2, 3, 4, 5};
    campaign.run = [](std::uint64_t unit) {
        return std::vector<std::uint8_t>{
            static_cast<std::uint8_t>(unit * 2)};
    };
    std::vector<std::uint64_t> done;
    campaign.onResult = [&done](std::uint64_t unit,
                                const std::vector<std::uint8_t> &p) {
        ASSERT_EQ(p.size(), 1u);
        EXPECT_EQ(p[0], unit * 2);
        done.push_back(unit);
    };
    campaign.skip = [](std::uint64_t unit) { return unit % 2 == 1; };

    support::InlineUnitExecutor exec;
    const auto stats = exec.runUnits(campaign);
    EXPECT_EQ(stats.completed, 3u);
    EXPECT_EQ(stats.crashed, 0u);
    EXPECT_EQ(done, (std::vector<std::uint64_t>{0, 2, 4}));
    EXPECT_EQ(stats.outcome, support::RunOutcome::Completed);
}

TEST(ExecutorUnitFace, InlineCancellationAbandonsRemainingUnits)
{
    support::CancellationToken token;
    support::UnitCampaign campaign;
    campaign.units = {0, 1, 2, 3};
    campaign.cancel = &token;
    std::size_t ran = 0;
    campaign.run = [&](std::uint64_t) {
        if (++ran == 2)
            token.requestCancel("enough");
        return std::vector<std::uint8_t>{};
    };
    support::InlineUnitExecutor exec;
    const auto stats = exec.runUnits(campaign);
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.abandoned, 2u);
    EXPECT_EQ(stats.outcome, support::RunOutcome::Cancelled);
}

TEST(ExecutorUnitFace, FactorySelectsBackendFromSandboxPolicy)
{
    support::SandboxOptions off;
    EXPECT_STREQ(support::makeUnitExecutor(off)->backendName(),
                 "inline");
    support::SandboxOptions fork;
    fork.policy = support::SandboxPolicy::Fork;
    EXPECT_STREQ(support::makeUnitExecutor(fork)->backendName(),
                 "fork-sandbox");
}

// ---------------------------------------------------------------
// Sharded backend: shard-count invariance of the study numbers
// ---------------------------------------------------------------

TEST(ShardedStress, ShardCountInvariantOnKernelSample)
{
    SKIP_FORK_TESTS_UNDER_TSAN();
    const auto sample = kernelSample(6);
    ASSERT_GE(sample.size(), 4u);
    const std::string dir = freshStateDir("invariance");
    for (const auto *kernel : sample) {
        auto factory = kernel->factory(bugs::Variant::Buggy);
        const auto opt = baseOptions();
        const auto base = classicStress(factory, opt);
        for (const unsigned shards : {1u, 2u, 4u}) {
            SCOPED_TRACE(kernel->info().id +
                         " shards=" + std::to_string(shards));
            explore::ShardedOptions so;
            so.shards = shards;
            so.stateDir = dir;
            so.campaignName = "inv_" + kernel->info().id + "_" +
                              std::to_string(shards);
            explore::ShardedStats stats;
            const auto result =
                shardedStress(factory, opt, so, &stats);
            expectSameCampaign(base, result);
            EXPECT_EQ(result.outcome, support::RunOutcome::Completed);
            EXPECT_EQ(stats.shards,
                      std::min<std::size_t>(shards, opt.runs));
            EXPECT_EQ(stats.shardRetries, 0u);
            EXPECT_EQ(stats.benchedShards, 0u);
            EXPECT_FALSE(stats.sawCorruptTail);
        }
    }
}

// ---------------------------------------------------------------
// Chaos gates
// ---------------------------------------------------------------

TEST(ShardedChaos, KilledShardIsHarvestedAndRetriedAtEveryShardCount)
{
    SKIP_FORK_TESTS_UNDER_TSAN();
    const std::string dir = freshStateDir("chaos_kill");
    const auto opt = baseOptions();
    const auto factory = racyFactory();
    const auto reference = classicStress(factory, opt);
    ASSERT_GT(reference.manifestations, 0u);

    for (const unsigned shards : {1u, 2u, 4u}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        explore::ShardedOptions so;
        so.shards = shards;
        so.stateDir = dir;
        so.campaignName = "kill_" + std::to_string(shards);
        // Shard 0 journals its second seed, then SIGKILLs itself
        // before reporting it: the record must be harvested from the
        // journal, the shard respawned, and the merged result must
        // not change.
        so.chaos.killShard = 0;
        so.chaos.killAfterSeeds = 1;
        explore::ShardedStats stats;
        const auto result = shardedStress(factory, opt, so, &stats);
        expectSameCampaign(reference, result);
        EXPECT_EQ(result.outcome, support::RunOutcome::Completed);
        EXPECT_GE(stats.shardRetries, 1u);
        EXPECT_GE(stats.harvestedRecords, 1u);
        EXPECT_GE(stats.spawns, shards + 1u);
        EXPECT_EQ(stats.abandonedSeeds, 0u);
    }
}

TEST(ShardedChaos, StalledShardIsCancelledAndRedispatched)
{
    SKIP_FORK_TESTS_UNDER_TSAN();
    const std::string dir = freshStateDir("chaos_stall");
    const auto opt = baseOptions();
    const auto factory = racyFactory();
    const auto reference = classicStress(factory, opt);

    explore::ShardedOptions so;
    so.shards = 2;
    so.stateDir = dir;
    so.campaignName = "stall";
    so.chaos.stallShard = 0;
    so.stragglerTimeoutMs = 200;
    explore::ShardedStats stats;
    const auto result = shardedStress(factory, opt, so, &stats);
    expectSameCampaign(reference, result);
    EXPECT_EQ(result.outcome, support::RunOutcome::Completed);
    EXPECT_GE(stats.stragglersCancelled, 1u);
    EXPECT_GE(stats.shardRetries, 1u);
}

TEST(ShardedChaos, RepeatedlyDyingShardIsBenchedAndSeedsReassigned)
{
    SKIP_FORK_TESTS_UNDER_TSAN();
    const std::string dir = freshStateDir("chaos_bench");
    const auto opt = baseOptions();
    const auto factory = racyFactory();
    const auto reference = classicStress(factory, opt);

    explore::ShardedOptions so;
    so.shards = 2;
    so.stateDir = dir;
    so.campaignName = "bench";
    so.chaos.exitShard = 1;  // dies at startup on every attempt
    so.maxShardFailures = 2;
    so.retry = support::RetryPolicy{8, 100'000, 1'000'000, 0};
    explore::ShardedStats stats;
    const auto result = shardedStress(factory, opt, so, &stats);
    expectSameCampaign(reference, result);
    EXPECT_EQ(result.outcome, support::RunOutcome::Completed);
    EXPECT_EQ(stats.benchedShards, 1u);
    EXPECT_GE(stats.shardRetries, 1u);
    EXPECT_EQ(stats.abandonedSeeds, 0u);
}

// ---------------------------------------------------------------
// Journal corruption + resume
// ---------------------------------------------------------------

TEST(ShardedResume, CorruptShardTailReplaysOnlyThatShardsLoss)
{
    SKIP_FORK_TESTS_UNDER_TSAN();
    const auto opt = baseOptions();
    const auto factory = racyFactory();
    const auto reference = classicStress(factory, opt);

    struct Variant
    {
        const char *name;
        void (*corrupt)(const std::string &path);
    };
    const Variant variants[] = {
        {"truncate",
         [](const std::string &path) {
             // Tear the last record: a partial suffix remains.
             std::string bytes = readFileBytes(path);
             ASSERT_GT(bytes.size(), 5u);
             ASSERT_EQ(0,
                       ::truncate(path.c_str(),
                                  static_cast<off_t>(bytes.size() - 5)));
         }},
        {"bitflip",
         [](const std::string &path) {
             // Flip a bit inside the last record's checksum.
             std::string bytes = readFileBytes(path);
             ASSERT_GT(bytes.size(), 2u);
             std::fstream f(path,
                            std::ios::binary | std::ios::in |
                                std::ios::out);
             f.seekp(static_cast<std::streamoff>(bytes.size() - 2));
             char byte = bytes[bytes.size() - 2];
             byte = static_cast<char>(byte ^ 0x40);
             f.write(&byte, 1);
         }},
    };

    for (const auto &variant : variants) {
        SCOPED_TRACE(variant.name);
        const std::string dir =
            freshStateDir(std::string("corrupt_") + variant.name);
        explore::ShardedOptions so;
        so.shards = 2;
        so.stateDir = dir;
        so.campaignName = std::string("corrupt_") + variant.name;

        // Complete the campaign cleanly first.
        const auto first = shardedStress(factory, opt, so);
        expectSameCampaign(reference, first);

        const std::string shard0 =
            explore::shardJournalPath(dir, so.campaignName, 0);
        const std::string shard1 =
            explore::shardJournalPath(dir, so.campaignName, 1);
        const std::string shard1Before = readFileBytes(shard1);
        ASSERT_FALSE(shard1Before.empty());

        variant.corrupt(shard0);

        // Resume: only the torn-off suffix of shard 0 re-runs; the
        // sibling journal is read but never rewritten.
        explore::ShardedOptions resume = so;
        resume.resume = true;
        explore::ShardedStats stats;
        const auto resumed =
            shardedStress(factory, opt, resume, &stats);
        expectSameCampaign(reference, resumed);
        EXPECT_TRUE(stats.sawCorruptTail);
        EXPECT_GT(stats.resumedSeeds, 0u);
        EXPECT_LT(stats.resumedSeeds, opt.runs);
        EXPECT_EQ(resumed.resumedRuns, stats.resumedSeeds);
        EXPECT_EQ(readFileBytes(shard1), shard1Before);
    }
}

TEST(ShardedResume, CompletedCampaignRestoresEverySeed)
{
    SKIP_FORK_TESTS_UNDER_TSAN();
    const std::string dir = freshStateDir("resume_full");
    const auto opt = baseOptions();
    const auto factory = racyFactory();

    explore::ShardedOptions so;
    so.shards = 2;
    so.stateDir = dir;
    so.campaignName = "resume_full";
    const auto first = shardedStress(factory, opt, so);

    explore::ShardedOptions resume = so;
    resume.resume = true;
    explore::ShardedStats stats;
    const auto resumed = shardedStress(factory, opt, resume, &stats);
    expectSameCampaign(first, resumed);
    EXPECT_EQ(stats.resumedSeeds, opt.runs);
    EXPECT_EQ(resumed.resumedRuns, opt.runs);
}

TEST(ShardedResume, FreshRunIgnoresStaleJournals)
{
    SKIP_FORK_TESTS_UNDER_TSAN();
    const std::string dir = freshStateDir("fresh");
    const auto opt = baseOptions();
    const auto factory = racyFactory();

    explore::ShardedOptions so;
    so.shards = 2;
    so.stateDir = dir;
    so.campaignName = "fresh";
    const auto first = shardedStress(factory, opt, so);

    // Same name, resume=false: stale journals are deleted, the full
    // campaign re-runs and nothing is "resumed".
    explore::ShardedStats stats;
    const auto again = shardedStress(factory, opt, so, &stats);
    expectSameCampaign(first, again);
    EXPECT_EQ(stats.resumedSeeds, 0u);
    EXPECT_EQ(again.resumedRuns, 0u);
}

// ---------------------------------------------------------------
// Genuinely crashing seeds
// ---------------------------------------------------------------

TEST(ShardedCrashes, SandboxedSeedsMatchForkSandboxReference)
{
    SKIP_FORK_TESTS_UNDER_TSAN();
    const std::string dir = freshStateDir("crash_sandboxed");
    explore::StressOptions opt = baseOptions(40);

    explore::StressOptions sandboxed = opt;
    sandboxed.sandbox.policy = support::SandboxPolicy::Fork;
    sandboxed.sandbox.workers = 2;
    const auto reference = explore::ParallelRunner(2).stress(
        crashyFactory(), explore::makePolicy<sim::RandomPolicy>(),
        sandboxed);
    ASSERT_GT(reference.crashedRuns, 0u);

    explore::ShardedOptions so;
    so.shards = 2;
    so.stateDir = dir;
    so.campaignName = "crash_sandboxed";
    so.sandboxSeeds = true;
    explore::ShardedStats stats;
    const auto result =
        shardedStress(crashyFactory(), opt, so, &stats);
    expectSameCampaign(reference, result);
    EXPECT_EQ(result.outcome, support::RunOutcome::Crashed);
    EXPECT_EQ(result.runs + result.crashedRuns, opt.runs);
    // Seed crashes cost one grandchild fork each, never a shard.
    EXPECT_EQ(stats.shardRetries, 0u);
    for (const auto &crash : result.crashes) {
        EXPECT_EQ(crash.signal, SIGSEGV);
        EXPECT_GT(crash.steps, 0u);
    }
}

TEST(ShardedCrashes, UnsandboxedCrashIsBlamedJournaledAndSkipped)
{
    SKIP_FORK_TESTS_UNDER_TSAN();
    const std::string dir = freshStateDir("crash_blame");
    explore::StressOptions opt = baseOptions(40);

    explore::StressOptions sandboxed = opt;
    sandboxed.sandbox.policy = support::SandboxPolicy::Fork;
    sandboxed.sandbox.workers = 2;
    const auto reference = explore::ParallelRunner(2).stress(
        crashyFactory(), explore::makePolicy<sim::RandomPolicy>(),
        sandboxed);
    ASSERT_GT(reference.crashedRuns, 0u);

    explore::ShardedOptions so;
    so.shards = 2;
    so.stateDir = dir;
    so.campaignName = "crash_blame";
    so.sandboxSeeds = false;
    // A crashing seed takes its shard down each time; give the
    // campaign enough respawn headroom to ride out every crash.
    so.maxShardFailures = 100;
    so.retry = support::RetryPolicy{200, 100'000, 1'000'000, 0};
    explore::ShardedStats stats;
    const auto result =
        shardedStress(crashyFactory(), opt, so, &stats);
    expectSameCampaign(reference, result);
    EXPECT_EQ(result.outcome, support::RunOutcome::Crashed);
    EXPECT_GE(stats.shardRetries, reference.crashedRuns);
    EXPECT_EQ(stats.abandonedSeeds, 0u);

    // Resume: the crashed seeds were journaled as kCrashed and must
    // restore as crashes without being re-executed.
    explore::ShardedOptions resume = so;
    resume.resume = true;
    explore::ShardedStats resumeStats;
    const auto resumed =
        shardedStress(crashyFactory(), opt, resume, &resumeStats);
    expectSameCampaign(reference, resumed);
    EXPECT_EQ(resumeStats.resumedSeeds, opt.runs);
    EXPECT_EQ(resumeStats.shardRetries, 0u);
    EXPECT_EQ(resumed.outcome, support::RunOutcome::Crashed);
}

} // namespace
