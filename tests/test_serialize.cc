/**
 * @file
 * Trace serialization: round-trips, escaping, kind-name parsing, and
 * malformed-input rejection — including a full simulator-produced
 * trace analyzed identically before and after the round trip.
 */

#include <gtest/gtest.h>

#include <memory>

#include "detect/detector.hh"
#include "sim/policy.hh"
#include "sim/shared.hh"
#include "sim/sync.hh"
#include "trace/serialize.hh"

namespace
{

using namespace lfm;
using namespace lfm::trace;

Trace
sampleTrace()
{
    Trace t;
    t.registerObject({1, ObjectKind::Variable, "my var %", 1});
    t.registerObject({2, ObjectKind::Mutex, "lock", 0});
    t.registerThread(0, "main thread");
    Event e;
    e.thread = 0;
    e.kind = EventKind::ThreadBegin;
    e.aux = kSpuriousWakeup;
    t.append(e);
    e.kind = EventKind::Write;
    e.obj = 1;
    e.aux = 0;
    e.label = "a label with spaces";
    t.append(e);
    e.kind = EventKind::Lock;
    e.obj = 2;
    e.label.clear();
    t.append(e);
    return t;
}

TEST(Serialize, RoundTripPreservesEverything)
{
    Trace original = sampleTrace();
    std::string text = traceToString(original);
    std::string error;
    auto loaded = traceFromString(text, &error);
    ASSERT_TRUE(loaded.has_value()) << error;

    ASSERT_EQ(loaded->size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        const auto &a = original.ev(i);
        const auto &b = loaded->ev(i);
        EXPECT_EQ(a.thread, b.thread);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.obj, b.obj);
        EXPECT_EQ(a.obj2, b.obj2);
        EXPECT_EQ(a.aux, b.aux);
        EXPECT_EQ(a.label, b.label);
    }
    EXPECT_EQ(loaded->objectName(1), "my var %");
    EXPECT_EQ(loaded->objectKind(2), ObjectKind::Mutex);
    const auto *info = loaded->objectInfo(1);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->flags, 1u);
    EXPECT_EQ(loaded->threadName(0), "main thread");
}

TEST(Serialize, TabAndControlCharLabelsRoundTrip)
{
    // Regression: escape() used to pass '\t' (and every other
    // control byte) through verbatim, so trim/split in loadTrace
    // mangled the line. All bytes < 0x21 and 0x7F must now escape.
    Trace t;
    t.registerObject(
        {1, ObjectKind::Variable, std::string("tab\there"), 0});
    t.registerObject(
        {2, ObjectKind::Mutex,
         std::string("ctl\x01\x1F\x7F\v\f" "end"), 0});
    t.registerThread(0, std::string("name\twith\ttabs"));
    Event e;
    e.thread = 0;
    e.kind = EventKind::ThreadBegin;
    e.aux = kSpuriousWakeup;
    t.append(e);
    e.kind = EventKind::Write;
    e.obj = 1;
    e.aux = 0;
    e.label = std::string("label\t\r\n\x02 with everything%\x7F");
    t.append(e);
    e.kind = EventKind::Read;
    e.label = std::string(1, '\0') + "nul embedded";
    t.append(e);

    const std::string text = traceToString(t);
    // The serialized artifact itself must stay line-structured:
    // nothing below 0x21 except the record-separating '\n' and the
    // field-separating ' ' may appear raw.
    for (unsigned char c : text) {
        if (c != '\n' && c != ' ')
            EXPECT_TRUE(c >= 0x21 && c != 0x7F)
                << "unescaped byte " << static_cast<int>(c);
    }

    std::string error;
    auto loaded = traceFromString(text, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_EQ(loaded->objectName(1), "tab\there");
    EXPECT_EQ(loaded->objectName(2),
              std::string("ctl\x01\x1F\x7F\v\f" "end"));
    EXPECT_EQ(loaded->threadName(0), "name\twith\ttabs");
    EXPECT_EQ(loaded->ev(1).label,
              std::string("label\t\r\n\x02 with everything%\x7F"));
    EXPECT_EQ(loaded->ev(2).label,
              std::string(1, '\0') + "nul embedded");
    // Byte-identical re-serialization: the canonical form is stable.
    EXPECT_EQ(traceToString(*loaded), text);
}

TEST(Serialize, NegativeThreadIdsAreRejected)
{
    // Regression: std::stoi happily parses "-1", so loadTrace used
    // to build traces no recorder could produce.
    std::string error;
    EXPECT_FALSE(
        traceFromString("# lfm-trace v1\nevent -1 read 1 0 0 %\n",
                        &error)
            .has_value());
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
    EXPECT_NE(error.find("negative thread id"), std::string::npos)
        << error;
    EXPECT_FALSE(
        traceFromString("# lfm-trace v1\nthread -7 worker\n", &error)
            .has_value());
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
    EXPECT_NE(error.find("negative thread id"), std::string::npos)
        << error;
}

TEST(Serialize, KindNamesRoundTrip)
{
    EXPECT_EQ(eventKindFromName("wait_begin"), EventKind::WaitBegin);
    EXPECT_EQ(eventKindFromName("FAILURE"), EventKind::FailureMark);
    EXPECT_FALSE(eventKindFromName("nonsense").has_value());
    EXPECT_EQ(objectKindFromName("rwlock"), ObjectKind::RWLock);
    EXPECT_FALSE(objectKindFromName("widget").has_value());
}

TEST(Serialize, MalformedInputsAreRejectedWithMessages)
{
    std::string error;
    EXPECT_FALSE(traceFromString("", &error).has_value());
    EXPECT_FALSE(
        traceFromString("event 0 read 1 0 0 %\n", &error).has_value())
        << "header must be required";
    EXPECT_FALSE(traceFromString("# lfm-trace v1\nevent 0 read 1\n",
                                 &error)
                     .has_value());
    EXPECT_NE(error.find("event needs"), std::string::npos);
    EXPECT_FALSE(
        traceFromString("# lfm-trace v1\nevent 0 warp 1 0 0 %\n",
                        &error)
            .has_value());
    EXPECT_NE(error.find("unknown event kind"), std::string::npos);
    EXPECT_FALSE(
        traceFromString("# lfm-trace v1\nevent x read 1 0 0 %\n",
                        &error)
            .has_value());
    EXPECT_FALSE(
        traceFromString("# lfm-trace v1\nbogus 1 2 3\n", &error)
            .has_value());
    EXPECT_FALSE(
        traceFromString("# lfm-trace v1\nevent 0 read 1 0 0 %zz\n",
                        &error)
            .has_value())
        << "bad escapes must be rejected";
}

TEST(Serialize, DetectorsAgreeAcrossRoundTrip)
{
    // Produce a real failing execution, round-trip its trace, and
    // check every detector reports identically on both copies.
    auto factory = [] {
        auto v =
            std::make_shared<std::unique_ptr<sim::SharedVar<int>>>();
        *v = std::make_unique<sim::SharedVar<int>>("counter", 0);
        sim::Program p;
        auto body = [v] { (*v)->add(1); };
        p.threads.push_back({"a", body});
        p.threads.push_back({"b", body});
        return p;
    };
    sim::RandomPolicy policy;
    sim::ExecOptions opt;
    opt.seed = 5;
    auto exec = sim::runProgram(factory, policy, opt);

    std::string error;
    auto loaded = traceFromString(traceToString(exec.trace), &error);
    ASSERT_TRUE(loaded.has_value()) << error;

    for (auto &detector : detect::allDetectors()) {
        auto a = detector->analyze(exec.trace);
        auto b = detector->analyze(*loaded);
        ASSERT_EQ(a.size(), b.size()) << detector->name();
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].category, b[i].category);
            EXPECT_EQ(a[i].message, b[i].message);
            EXPECT_EQ(a[i].events, b[i].events);
        }
    }
}

} // namespace
