/**
 * @file
 * Deeper primitive semantics: tryLock, broadcast vs signal, FIFO
 * wakeup order, semaphores as resource pools, nested spawn trees,
 * recursive mutex depth, and spurious-wakeup enabledness.
 */

#include <gtest/gtest.h>

#include <memory>

#include "explore/dfs.hh"
#include "sim/policy.hh"
#include "sim/shared.hh"
#include "sim/sync.hh"

namespace
{

using namespace lfm;
using namespace lfm::sim;

TEST(TryLock, SucceedsWhenFreeFailsWhenHeld)
{
    RandomPolicy policy;
    auto exec = runProgram(
        [] {
            struct State
            {
                std::unique_ptr<SimMutex> m;
                std::unique_ptr<SharedVar<int>> outcomes;
            };
            auto s = std::make_shared<State>();
            s->m = std::make_unique<SimMutex>("m");
            s->outcomes = std::make_unique<SharedVar<int>>("o", 0);
            Program p;
            p.threads.push_back({"t", [s] {
                                     simCheck(s->m->tryLock(),
                                              "trylock on free mutex "
                                              "failed");
                                     simCheck(!s->m->tryLock() ||
                                                  true,
                                              "unused");
                                     // Non-recursive: a second
                                     // tryLock by the owner fails in
                                     // pthread terms? Our model
                                     // treats it as recursive-fail:
                                     // holder != free and not
                                     // recursive -> failure.
                                     s->m->unlock();
                                 }});
            return p;
        },
        policy);
    EXPECT_FALSE(exec.failed());
}

TEST(TryLock, ContendedTryLockNeverBlocks)
{
    auto factory = [] {
        struct State
        {
            std::unique_ptr<SimMutex> m;
            std::unique_ptr<SharedVar<int>> acquired;
        };
        auto s = std::make_shared<State>();
        s->m = std::make_unique<SimMutex>("m");
        s->acquired = std::make_unique<SharedVar<int>>("acq", 0);
        Program p;
        p.threads.push_back({"holder", [s] {
                                 s->m->lock();
                                 yieldNow();
                                 yieldNow();
                                 s->m->unlock();
                             }});
        p.threads.push_back({"trier", [s] {
                                 if (s->m->tryLock()) {
                                     s->acquired->add(1);
                                     s->m->unlock();
                                 }
                             }});
        return p;
    };
    // Under every schedule the trier terminates (never deadlocks).
    auto result = explore::exploreDfs(factory);
    EXPECT_TRUE(result.exhausted);
    EXPECT_EQ(result.manifestations, 0u);
}

TEST(CondVar, BroadcastWakesAllSignalWakesOne)
{
    auto makeProgram = [](bool broadcast) {
        return [broadcast] {
            struct State
            {
                std::unique_ptr<SimMutex> m;
                std::unique_ptr<SimCondVar> cv;
                std::unique_ptr<SharedVar<int>> go;
                std::unique_ptr<SharedVar<int>> woke;
            };
            auto s = std::make_shared<State>();
            s->m = std::make_unique<SimMutex>("m");
            s->cv = std::make_unique<SimCondVar>("cv");
            s->go = std::make_unique<SharedVar<int>>("go", 0);
            s->woke = std::make_unique<SharedVar<int>>("woke", 0);
            Program p;
            for (int i = 0; i < 3; ++i) {
                p.threads.push_back(
                    {"waiter" + std::to_string(i), [s] {
                         s->m->lock();
                         while (s->go->get() == 0)
                             s->cv->wait(*s->m);
                         s->woke->add(1);
                         s->m->unlock();
                     }});
            }
            p.threads.push_back({"waker", [s, broadcast] {
                                     // Park until all three wait.
                                     for (int k = 0; k < 20; ++k)
                                         yieldNow();
                                     s->m->lock();
                                     s->go->set(1);
                                     if (broadcast)
                                         s->cv->broadcast();
                                     else
                                         s->cv->signal();
                                     s->m->unlock();
                                 }});
            return p;
        };
    };

    // Broadcast: every waiter gets out; no deadlock under many
    // seeds.
    RandomPolicy policy;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        ExecOptions opt;
        opt.seed = seed;
        auto exec = runProgram(makeProgram(true), policy, opt);
        EXPECT_FALSE(exec.deadlocked) << "broadcast seed " << seed;
    }

    // Single signal: with all three already waiting, exactly one
    // wakes and the rest stay parked (global block reported).
    RoundRobinPolicy rr;
    auto exec = runProgram(makeProgram(false), rr);
    EXPECT_TRUE(exec.deadlocked);
    EXPECT_EQ(exec.trace.failures().size(), 0u);
    int woke = 0;
    for (const auto &event : exec.trace.events()) {
        if (event.kind == trace::EventKind::WaitResume)
            ++woke;
    }
    EXPECT_EQ(woke, 1);
}

TEST(CondVar, SignalWakesWaitersInFifoOrder)
{
    struct State
    {
        std::unique_ptr<SimMutex> m;
        std::unique_ptr<SimCondVar> cv;
        std::unique_ptr<SharedVar<int>> order;
        std::unique_ptr<SharedVar<int>> firstWoken;
    };
    auto factory = [] {
        auto s = std::make_shared<State>();
        s->m = std::make_unique<SimMutex>("m");
        s->cv = std::make_unique<SimCondVar>("cv");
        s->order = std::make_unique<SharedVar<int>>("order", 0);
        s->firstWoken = std::make_unique<SharedVar<int>>("first", -1);
        Program p;
        // waiterA always parks before waiterB (forced by flag).
        p.threads.push_back({"waiterA", [s] {
                                 s->m->lock();
                                 s->order->set(1);
                                 s->cv->wait(*s->m);
                                 if (s->firstWoken->get() == -1)
                                     s->firstWoken->set(0);
                                 s->m->unlock();
                             }});
        p.threads.push_back({"waiterB", [s] {
                                 while (s->order->get() == 0)
                                     yieldNow();
                                 s->m->lock();
                                 s->cv->wait(*s->m);
                                 if (s->firstWoken->get() == -1)
                                     s->firstWoken->set(1);
                                 s->m->unlock();
                             }});
        p.threads.push_back({"waker", [s] {
                                 for (int k = 0; k < 25; ++k)
                                     yieldNow();
                                 s->m->lock();
                                 s->cv->signal();
                                 s->cv->signal();
                                 s->m->unlock();
                             }});
        p.oracle = [s]() -> std::optional<std::string> {
            if (s->firstWoken->peek() != 0)
                return "waiterA parked first but woke second";
            return std::nullopt;
        };
        return p;
    };
    RoundRobinPolicy rr;
    auto exec = runProgram(factory, rr);
    EXPECT_FALSE(exec.failed())
        << exec.oracleFailure.value_or("deadlock");
}

TEST(Semaphore, PoolLimitsConcurrency)
{
    auto factory = [] {
        struct State
        {
            std::unique_ptr<SimSemaphore> pool;
            std::unique_ptr<SimMutex> counterLock;
            std::unique_ptr<SharedVar<int>> inUse;
        };
        auto s = std::make_shared<State>();
        s->pool = std::make_unique<SimSemaphore>("pool", 2);
        s->counterLock = std::make_unique<SimMutex>("counter_lock");
        s->inUse = std::make_unique<SharedVar<int>>("in_use", 0);
        Program p;
        for (int i = 0; i < 4; ++i) {
            p.threads.push_back(
                {"client" + std::to_string(i), [s] {
                     s->pool->wait();
                     // The occupancy counter is lock-protected: this
                     // test is about semaphore admission, not about
                     // racy counting.
                     {
                         SimLock guard(*s->counterLock);
                         const int now = s->inUse->get();
                         simCheck(now < 2,
                                  "pool admitted a 3rd client");
                         s->inUse->set(now + 1);
                     }
                     yieldNow();
                     {
                         SimLock guard(*s->counterLock);
                         s->inUse->set(s->inUse->get() - 1);
                     }
                     s->pool->post();
                 }});
        }
        return p;
    };
    RandomPolicy policy;
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        ExecOptions opt;
        opt.seed = seed;
        auto exec = runProgram(factory, policy, opt);
        for (const auto &msg : exec.failureMessages)
            EXPECT_EQ(msg.find("3rd client"), std::string::npos)
                << "seed " << seed;
        EXPECT_FALSE(exec.deadlocked) << "seed " << seed;
    }
}

TEST(Spawn, NestedSpawnTreeJoinsCleanly)
{
    auto factory = [] {
        auto sum = std::make_shared<std::unique_ptr<SharedVar<int>>>();
        *sum = std::make_unique<SharedVar<int>>("sum", 0);
        Program p;
        p.threads.push_back(
            {"root", [sum] {
                 auto mid = spawnThread("mid", [sum] {
                     auto leaf1 = spawnThread("leaf1", [sum] {
                         (*sum)->add(1);
                     });
                     auto leaf2 = spawnThread("leaf2", [sum] {
                         (*sum)->add(10);
                     });
                     leaf1.join();
                     leaf2.join();
                     (*sum)->add(100);
                 });
                 mid.join();
                 simCheck((*sum)->get() >= 100,
                          "mid joined before leaves finished");
             }});
        return p;
    };
    RandomPolicy policy;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        ExecOptions opt;
        opt.seed = seed;
        auto exec = runProgram(factory, policy, opt);
        EXPECT_FALSE(exec.deadlocked) << "seed " << seed;
        for (const auto &msg : exec.failureMessages)
            EXPECT_EQ(msg.find("mid joined"), std::string::npos);
    }
}

TEST(RecursiveMutex, DepthCountsAcrossTryLock)
{
    RandomPolicy policy;
    auto exec = runProgram(
        [] {
            auto m = std::make_shared<std::unique_ptr<SimMutex>>();
            *m = std::make_unique<SimMutex>("rec", true);
            Program p;
            p.threads.push_back({"t", [m] {
                                     (*m)->lock();
                                     simCheck((*m)->tryLock(),
                                              "recursive trylock by "
                                              "owner failed");
                                     (*m)->unlock(); // depth 2 -> 1
                                     (*m)->unlock(); // depth 1 -> 0
                                 }});
            return p;
        },
        policy);
    EXPECT_FALSE(exec.failed());
    // Exactly one Lock and one Unlock event (outermost transitions).
    int locks = 0, unlocks = 0;
    for (const auto &event : exec.trace.events()) {
        locks += event.kind == trace::EventKind::Lock;
        unlocks += event.kind == trace::EventKind::Unlock;
    }
    EXPECT_EQ(locks, 1);
    EXPECT_EQ(unlocks, 1);
}

TEST(Determinism, IdenticalSeedsAcrossAllPolicies)
{
    auto factory = [] {
        auto v = std::make_shared<std::unique_ptr<SharedVar<int>>>();
        *v = std::make_unique<SharedVar<int>>("v", 0);
        Program p;
        auto body = [v] { (*v)->add(1); };
        p.threads.push_back({"a", body});
        p.threads.push_back({"b", body});
        return p;
    };
    RandomPolicy r1, r2;
    PctPolicy p1(3, 32), p2(3, 32);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        ExecOptions opt;
        opt.seed = seed;
        auto a = runProgram(factory, r1, opt);
        auto b = runProgram(factory, r2, opt);
        ASSERT_EQ(a.trace.size(), b.trace.size()) << "random";
        auto c = runProgram(factory, p1, opt);
        auto d = runProgram(factory, p2, opt);
        ASSERT_EQ(c.trace.size(), d.trace.size()) << "pct";
    }
}

} // namespace
