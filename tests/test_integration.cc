/**
 * @file
 * Cross-module integration scenarios: the full study-platform
 * pipeline from observation through exposure, minimization,
 * detection, and fix verification — plus consistency between the
 * database, the kernels, and the traces they produce.
 */

#include <gtest/gtest.h>

#include "bugs/registry.hh"
#include "detect/detector.hh"
#include "explore/active.hh"
#include "explore/dpor.hh"
#include "explore/minimize.hh"
#include "explore/runner.hh"
#include "sim/policy.hh"
#include "stm/stm.hh"
#include "study/database.hh"
#include "trace/serialize.hh"

namespace
{

using namespace lfm;

TEST(Pipeline, ObserveExposeMinimizeDetectFix)
{
    // The full study-guided testing workflow on one documented bug.
    const auto *kernel = bugs::findKernel("moz-jsclearscope");
    ASSERT_NE(kernel, nullptr);
    auto buggy = kernel->factory(bugs::Variant::Buggy);

    // 1. The in-house test run (benign scheduler) passes.
    sim::RoundRobinPolicy benign;
    auto observation = sim::runProgram(buggy, benign);
    ASSERT_FALSE(observation.failed());

    // 2. Active order-flipping exposes the bug.
    explore::ActiveOptions active;
    active.stopAtFirst = true;
    auto campaign = explore::activeTest(buggy, active);
    ASSERT_TRUE(campaign.foundBug());

    // 3. A systematic search produces a concrete failing schedule...
    explore::DporOptions dpor;
    dpor.stopAtFirst = true;
    auto found = explore::exploreDpor(buggy, dpor);
    ASSERT_TRUE(found.firstManifestPlan.has_value());
    explore::ThreadPlanPolicy replay(*found.firstManifestPlan);
    auto failing = sim::runProgram(buggy, replay);
    ASSERT_TRUE(failing.failed());

    // 4. ...whose decision path minimizes to few preemptions.
    std::vector<std::size_t> path;
    for (const auto &d : failing.decisions)
        path.push_back(d.chosen);
    auto minimal = explore::minimizeSchedule(buggy, path);
    EXPECT_TRUE(minimal.stillFails);
    EXPECT_LE(minimal.preemptionsAfter, 3u);

    // 5. The trace round-trips through serialization and the
    //    detectors flag the multi-variable violation.
    std::string error;
    auto loaded = trace::traceFromString(
        trace::traceToString(failing.trace), &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    bool flagged = false;
    for (auto &d : detect::allDetectors())
        flagged |= !d->analyze(*loaded).empty();
    EXPECT_TRUE(flagged);

    // 6. The developers' fix survives the same exposure attempts.
    auto fixed = kernel->factory(bugs::Variant::Fixed);
    auto fixedCampaign = explore::activeTest(fixed, active);
    EXPECT_FALSE(fixedCampaign.foundBug());
    auto fixedSearch = explore::exploreDpor(fixed);
    EXPECT_TRUE(fixedSearch.exhausted);
    EXPECT_EQ(fixedSearch.manifestations, 0u);
}

TEST(Consistency, KernelTracesMatchDatabaseCharacteristics)
{
    // Each anchored record's declared thread count must match what
    // the kernel's executions actually use.
    const auto &db = study::database();
    for (const auto *record : db.anchored()) {
        const auto *kernel = bugs::findKernel(record->kernelId);
        ASSERT_NE(kernel, nullptr) << record->id;
        sim::RandomPolicy policy;
        auto exec =
            sim::runProgram(kernel->factory(bugs::Variant::Buggy),
                            policy);
        EXPECT_EQ(exec.trace.threadCount(),
                  static_cast<std::size_t>(record->threads))
            << record->id;
        if (!record->isDeadlock()) {
            // Shared variables in the buggy trace: at least the
            // declared count (fix-scaffolding vars excluded by
            // construction in the buggy variant).
            EXPECT_GE(exec.trace.accessedVariables().size(),
                      static_cast<std::size_t>(record->variables))
                << record->id;
        }
    }
}

TEST(Consistency, EveryKernelTraceSerializesLosslessly)
{
    for (const auto *kernel : bugs::allKernels()) {
        sim::RandomPolicy policy;
        sim::ExecOptions opt;
        opt.seed = 3;
        auto exec =
            sim::runProgram(kernel->factory(bugs::Variant::Buggy),
                            policy, opt);
        std::string error;
        auto loaded = trace::traceFromString(
            trace::traceToString(exec.trace), &error);
        ASSERT_TRUE(loaded.has_value())
            << kernel->info().id << ": " << error;
        ASSERT_EQ(loaded->size(), exec.trace.size())
            << kernel->info().id;
        for (std::size_t i = 0; i < exec.trace.size(); ++i) {
            EXPECT_EQ(loaded->ev(i).kind, exec.trace.ev(i).kind);
            EXPECT_EQ(loaded->ev(i).label, exec.trace.ev(i).label);
        }
    }
}

TEST(Consistency, TransactionalTracesCarryNoAtomicityFindings)
{
    // STM-protected kernels: their TmFixed traces must not trigger
    // the single-variable atomicity detector (commits are ordered by
    // the version protocol's traced accesses).
    for (const auto *kernel : bugs::allKernels()) {
        if (!kernel->info().hasTmVariant)
            continue;
        sim::RandomPolicy policy;
        sim::ExecOptions opt;
        opt.seed = 11;
        auto exec =
            sim::runProgram(kernel->factory(bugs::Variant::TmFixed),
                            policy, opt);
        ASSERT_FALSE(exec.failed()) << kernel->info().id;
    }
}

TEST(Consistency, DeadlockFreeKernelsExhaustUnderDpor)
{
    // Every fixed deadlock kernel's full schedule space is deadlock
    // free — checked exhaustively (with partial-order reduction this
    // is actually feasible).
    for (const auto *kernel :
         bugs::kernelsOfType(study::BugType::Deadlock)) {
        const auto &info = kernel->info();
        // Retry-based fixes (tryLock back-off, detect-and-rollback)
        // have unbounded schedule trees: an adversarial scheduler
        // can always force one more retry round. Those are verified
        // within budget rather than to exhaustion.
        const bool retryFix = info.id == "openoffice-clipboard" ||
                              info.id == "mysql-dl-rollback";
        explore::DporOptions opt;
        opt.maxExecutions = retryFix ? 800 : 4000;
        opt.maxDecisions = 600;
        auto result = explore::exploreDpor(
            kernel->factory(bugs::Variant::Fixed), opt);
        EXPECT_EQ(result.manifestations, 0u) << info.id;
        if (!retryFix) {
            EXPECT_TRUE(result.exhausted)
                << info.id << " needed more than "
                << result.executions << " executions";
        }
    }
}

} // namespace
