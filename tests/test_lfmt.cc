/**
 * @file
 * Round-trip battery for the LFMT binary trace format and the LFMC
 * corpus container (trace/binary.hh, trace/corpus.hh).
 *
 * The format's contract is byte-level fidelity on both sides of the
 * fence: for every trace in a corpus spanning random programs and
 * every registered bug kernel,
 *  - text -> LFMT -> text must reproduce the v1 serialization
 *    byte-for-byte (both through the full decoder and through the
 *    zero-copy TraceView),
 *  - the detection pipeline over a mapped TraceView must emit
 *    findings documents byte-identical to the heap-Trace run, and
 *  - every TraceView accessor must match its Trace counterpart
 *    exactly, fallbacks included.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bugs/registry.hh"
#include "detect/batch.hh"
#include "detect/pipeline.hh"
#include "explore/randprog.hh"
#include "sim/policy.hh"
#include "sim/program.hh"
#include "trace/binary.hh"
#include "trace/corpus.hh"
#include "trace/serialize.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

namespace
{

using namespace lfm;
using trace::Trace;

/** Randprog shape varied with the seed (mirrors test_pipeline). */
explore::RandProgConfig
configFor(std::uint64_t seed)
{
    explore::RandProgConfig config;
    config.threads = 2 + static_cast<int>(seed % 3);
    config.variables = 1 + static_cast<int>(seed % 4);
    config.mutexes = 1 + static_cast<int>(seed % 2);
    config.opsPerThread = 3 + static_cast<int>(seed % 7);
    config.lockedFraction = (seed % 5) * 0.25;
    config.writeFraction = 0.3 + (seed % 3) * 0.2;
    config.consistentLocking = seed % 2 == 0;
    return config;
}

/** Random traces plus one trace per registered kernel. */
std::vector<Trace>
corpus()
{
    std::vector<Trace> traces;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        auto factory =
            explore::randomProgramFactory(configFor(seed), seed);
        sim::RandomPolicy policy;
        sim::ExecOptions opt;
        opt.seed = seed * 31 + 7;
        opt.maxDecisions = 5000;
        traces.push_back(
            sim::runProgram(factory, policy, opt).trace);
    }
    for (const auto *kernel : bugs::allKernels()) {
        sim::RandomPolicy policy;
        sim::ExecOptions opt;
        opt.seed = 1;
        opt.maxDecisions = 20000;
        traces.push_back(
            sim::runProgram(kernel->factory(bugs::Variant::Buggy),
                            policy, opt)
                .trace);
    }
    return traces;
}

/** An 8-aligned copy of an encoded image (heap strings are already
 * aligned in practice; this makes the guarantee explicit). */
std::vector<std::uint64_t>
aligned(const std::string &image)
{
    std::vector<std::uint64_t> buf((image.size() + 7) / 8, 0);
    std::memcpy(buf.data(), image.data(), image.size());
    return buf;
}

TEST(Lfmt, TextBinaryTextIsByteIdentical)
{
    std::size_t index = 0;
    for (const Trace &trace : corpus()) {
        const std::string text = trace::traceToString(trace);
        const std::string image = trace::encodeTrace(trace);
        const auto buf = aligned(image);

        std::string error;
        auto decoded =
            trace::decodeTrace(buf.data(), image.size(), &error);
        ASSERT_TRUE(decoded) << "trace " << index << ": " << error;
        EXPECT_EQ(trace::traceToString(*decoded), text)
            << "trace " << index;

        auto view =
            trace::TraceView::open(buf.data(), image.size(), &error);
        ASSERT_TRUE(view) << "trace " << index << ": " << error;
        EXPECT_EQ(trace::traceToString(view->decode()), text)
            << "trace " << index;
        ++index;
    }
}

TEST(Lfmt, ViewMatchesTraceAccessorForAccessor)
{
    for (const Trace &trace : corpus()) {
        const std::string image = trace::encodeTrace(trace);
        const auto buf = aligned(image);
        auto view = trace::TraceView::open(buf.data(), image.size());
        ASSERT_TRUE(view);

        ASSERT_EQ(view->size(), trace.size());
        EXPECT_EQ(view->threadCount(), trace.threadCount());
        EXPECT_EQ(view->objectCount(), trace.objects().size());
        EXPECT_EQ(view->threadNameCount(),
                  trace.threadNames().size());

        for (trace::SeqNo seq = 0; seq < trace.size(); ++seq) {
            const auto &e = trace.ev(seq);
            const trace::EventRef r = view->ev(seq);
            EXPECT_EQ(r.seq, e.seq);
            EXPECT_EQ(r.thread, e.thread);
            EXPECT_EQ(r.kind, e.kind);
            EXPECT_EQ(r.obj, e.obj);
            EXPECT_EQ(r.obj2, e.obj2);
            EXPECT_EQ(r.aux, e.aux);
            EXPECT_EQ(std::string(view->label(seq)), e.label);
        }
        for (const auto &[id, info] : trace.objects()) {
            EXPECT_EQ(view->objectName(id), trace.objectName(id));
            EXPECT_EQ(view->objectKind(id), trace.objectKind(id));
            auto row = view->objectInfo(id);
            ASSERT_TRUE(row);
            EXPECT_EQ(row->flags, info.flags);
            EXPECT_EQ(std::string(row->name), info.name);
            EXPECT_EQ(view->accessesTo(id), trace.accessesTo(id));
        }
        for (const auto &[tid, name] : trace.threadNames()) {
            (void)name;
            EXPECT_EQ(view->threadName(tid), trace.threadName(tid));
        }
        // Fallback semantics for ids nobody registered.
        EXPECT_EQ(view->objectName(987654), trace.objectName(987654));
        EXPECT_EQ(view->objectKind(987654), trace.objectKind(987654));
        EXPECT_EQ(view->threadName(1234), trace.threadName(1234));
        EXPECT_FALSE(view->objectInfo(987654));
    }
}

TEST(Lfmt, PipelineFindingsOverViewAreByteIdentical)
{
    detect::Pipeline pipeline;
    std::size_t index = 0;
    for (const Trace &trace : corpus()) {
        const std::string image = trace::encodeTrace(trace);
        const auto buf = aligned(image);
        auto view = trace::TraceView::open(buf.data(), image.size());
        ASSERT_TRUE(view);

        const std::string viaHeap =
            detect::findingsJson(trace, pipeline.run(trace), index)
                .str();
        const std::string viaView =
            detect::findingsJson(*view, pipeline.run(*view), index)
                .str();
        EXPECT_EQ(viaHeap, viaView) << "trace " << index;
        ++index;
    }
}

TEST(Lfmt, DecodeToleratesMisalignedBuffer)
{
    Trace t;
    t.registerObject({1, trace::ObjectKind::Variable, "x", 0});
    trace::Event e;
    e.thread = 0;
    e.kind = trace::EventKind::Write;
    e.obj = 1;
    t.append(e);
    const std::string image = trace::encodeTrace(t);

    std::vector<std::uint64_t> raw((image.size() + 15) / 8, 0);
    auto *base = reinterpret_cast<std::uint8_t *>(raw.data()) + 1;
    std::memcpy(base, image.data(), image.size());

    // The zero-copy view refuses a misaligned base...
    std::string error;
    EXPECT_FALSE(trace::TraceView::open(base, image.size(), &error));
    EXPECT_FALSE(error.empty());

    // ...while the decoder realigns internally and succeeds.
    auto decoded = trace::decodeTrace(base, image.size(), &error);
    ASSERT_TRUE(decoded) << error;
    EXPECT_EQ(trace::traceToString(*decoded),
              trace::traceToString(t));
}

TEST(Lfmt, EmptyTraceRoundTrips)
{
    Trace empty;
    const std::string image = trace::encodeTrace(empty);
    const auto buf = aligned(image);
    auto view = trace::TraceView::open(buf.data(), image.size());
    ASSERT_TRUE(view);
    EXPECT_EQ(view->size(), 0u);
    EXPECT_EQ(view->threadCount(), 0u);
    EXPECT_EQ(trace::traceToString(view->decode()),
              trace::traceToString(empty));
}

TEST(Lfmt, SaveAndLoadBinaryFile)
{
    const auto traces = corpus();
    const Trace &trace = traces.front();
    const std::string path =
        testing::TempDir() + "/lfmt_roundtrip.lfmt";
    std::string error;
    ASSERT_TRUE(trace::saveTraceBinary(trace, path, &error)) << error;

    auto loaded = trace::loadTraceBinary(path, &error);
    ASSERT_TRUE(loaded) << error;
    EXPECT_EQ(trace::traceToString(*loaded),
              trace::traceToString(trace));

    auto mapped = trace::MappedFile::open(path, &error);
    ASSERT_TRUE(mapped) << error;
    auto view = trace::TraceView::open(mapped->data(), mapped->size(),
                                       &error);
    ASSERT_TRUE(view) << error;
    EXPECT_EQ(trace::traceToString(view->decode()),
              trace::traceToString(trace));
}

TEST(Lfmc, CorpusRoundTripsEveryTrace)
{
    const auto traces = corpus();
    trace::CorpusWriter writer;
    for (const Trace &t : traces)
        writer.add(t);
    ASSERT_EQ(writer.count(), traces.size());

    const std::string path = testing::TempDir() + "/corpus.lfmc";
    std::string error;
    ASSERT_TRUE(writer.writeTo(path, &error)) << error;

    auto reader = trace::CorpusReader::open(path, &error);
    ASSERT_TRUE(reader) << error;
    ASSERT_EQ(reader->traceCount(), traces.size());

    for (std::size_t i = 0; i < traces.size(); ++i) {
        const std::string text = trace::traceToString(traces[i]);
        auto view = reader->viewAt(i, &error);
        ASSERT_TRUE(view) << "trace " << i << ": " << error;
        EXPECT_EQ(trace::traceToString(view->decode()), text)
            << "trace " << i;
        auto decoded = reader->decodeAt(i, &error);
        ASSERT_TRUE(decoded) << "trace " << i << ": " << error;
        EXPECT_EQ(trace::traceToString(*decoded), text)
            << "trace " << i;
    }
}

TEST(Lfmc, EncodeCorpusMatchesWriterAndBorrowsBuffer)
{
    const auto traces = corpus();
    const std::string encoded = trace::encodeCorpus(traces);

    trace::CorpusWriter writer;
    for (const Trace &t : traces)
        writer.add(t);
    EXPECT_EQ(writer.encode(), encoded);

    std::vector<std::uint64_t> buf((encoded.size() + 7) / 8, 0);
    std::memcpy(buf.data(), encoded.data(), encoded.size());
    std::string error;
    auto reader = trace::CorpusReader::fromBuffer(
        buf.data(), encoded.size(), &error);
    ASSERT_TRUE(reader) << error;
    EXPECT_EQ(reader->traceCount(), traces.size());
    EXPECT_EQ(reader->bytes(), encoded.size());
}

TEST(Lfmc, EmptyCorpusRoundTrips)
{
    trace::CorpusWriter writer;
    const std::string path = testing::TempDir() + "/empty.lfmc";
    std::string error;
    ASSERT_TRUE(writer.writeTo(path, &error)) << error;
    auto reader = trace::CorpusReader::open(path, &error);
    ASSERT_TRUE(reader) << error;
    EXPECT_EQ(reader->traceCount(), 0u);
}

TEST(Lfmc, BatchRunOverCorpusMatchesHeapBatch)
{
    const auto traces = corpus();
    const std::string path = testing::TempDir() + "/batch.lfmc";
    trace::CorpusWriter writer;
    for (const Trace &t : traces)
        writer.add(t);
    std::string error;
    ASSERT_TRUE(writer.writeTo(path, &error)) << error;
    auto reader = trace::CorpusReader::open(path, &error);
    ASSERT_TRUE(reader) << error;

    detect::Pipeline pipeline;
    detect::BatchRunner runner(2);
    const auto heapReports = runner.run(pipeline, traces);
    const auto corpusReports = runner.run(pipeline, *reader);

    ASSERT_EQ(corpusReports.size(), heapReports.size());
    for (std::size_t i = 0; i < heapReports.size(); ++i) {
        EXPECT_EQ(corpusReports[i].key, heapReports[i].key);
        EXPECT_EQ(static_cast<int>(corpusReports[i].status),
                  static_cast<int>(heapReports[i].status));
        ASSERT_EQ(corpusReports[i].findings.size(),
                  heapReports[i].findings.size())
            << "trace " << i;
        for (std::size_t j = 0; j < heapReports[i].findings.size();
             ++j) {
            EXPECT_EQ(corpusReports[i].findings[j].message,
                      heapReports[i].findings[j].message);
            EXPECT_EQ(corpusReports[i].findings[j].events,
                      heapReports[i].findings[j].events);
        }
    }

    // The emitters over the mapped corpus must byte-match the heap
    // emitters on the same reports.
    EXPECT_EQ(detect::reportsJson(*reader, corpusReports).str(),
              detect::reportsJson(traces, heapReports).str());
    EXPECT_EQ(detect::reportsSarif(*reader, corpusReports).str(),
              detect::reportsSarif(traces, heapReports).str());
}

TEST(Lfmc, StreamSubmitCorpusMatchesHeapSubmit)
{
    const auto traces = corpus();
    trace::CorpusWriter writer;
    for (const Trace &t : traces)
        writer.add(t);
    const std::string encoded = writer.encode();
    std::vector<std::uint64_t> buf((encoded.size() + 7) / 8, 0);
    std::memcpy(buf.data(), encoded.data(), encoded.size());
    auto reader =
        trace::CorpusReader::fromBuffer(buf.data(), encoded.size());
    ASSERT_TRUE(reader);

    detect::Pipeline pipeline;
    std::vector<detect::TraceReport> viaHeap;
    {
        detect::DetectionStream stream(pipeline, 2);
        for (std::size_t i = 0; i < traces.size(); ++i)
            stream.submit(i, traces[i]);
        viaHeap = stream.finish();
    }
    std::vector<detect::TraceReport> viaCorpus;
    {
        detect::DetectionStream stream(pipeline, 2);
        EXPECT_EQ(stream.submitCorpus(*reader), traces.size());
        viaCorpus = stream.finish();
    }
    ASSERT_EQ(viaCorpus.size(), viaHeap.size());
    for (std::size_t i = 0; i < viaHeap.size(); ++i) {
        EXPECT_EQ(viaCorpus[i].key, viaHeap[i].key);
        ASSERT_EQ(viaCorpus[i].findings.size(),
                  viaHeap[i].findings.size());
        for (std::size_t j = 0; j < viaHeap[i].findings.size(); ++j) {
            EXPECT_EQ(viaCorpus[i].findings[j].message,
                      viaHeap[i].findings[j].message);
        }
    }
}

} // namespace
