/**
 * @file
 * Fuzz sweep: random programs × the whole analysis stack. For every
 * generated program and seed, the full pipeline must be total and
 * deterministic — execution, trace validation, happens-before
 * construction, every detector (twice, identically), and the
 * serialization round trip.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include <unistd.h>

#include "detect/batch.hh"
#include "detect/detector.hh"
#include "explore/randprog.hh"
#include "sim/policy.hh"
#include "support/journal.hh"
#include "support/random.hh"
#include "trace/binary.hh"
#include "trace/corpus.hh"
#include "trace/hb.hh"
#include "trace/serialize.hh"
#include "trace/validate.hh"

namespace
{

using namespace lfm;
using explore::RandProgConfig;

struct FuzzCase
{
    std::uint64_t seed;
    RandProgConfig config;
};

class FuzzTest : public ::testing::TestWithParam<std::uint64_t>
{
};

RandProgConfig
configFor(std::uint64_t seed)
{
    // Vary the program shape with the seed so the sweep covers
    // small/large, disciplined/undisciplined programs.
    RandProgConfig config;
    config.threads = 2 + static_cast<int>(seed % 3);
    config.variables = 1 + static_cast<int>(seed % 4);
    config.mutexes = 1 + static_cast<int>(seed % 2);
    config.opsPerThread = 3 + static_cast<int>(seed % 7);
    config.lockedFraction = (seed % 5) * 0.25;
    config.writeFraction = 0.3 + (seed % 3) * 0.2;
    config.consistentLocking = seed % 2 == 0;
    return config;
}

TEST_P(FuzzTest, FullPipelineIsTotalAndDeterministic)
{
    const std::uint64_t seed = GetParam();
    const RandProgConfig config = configFor(seed);
    auto factory = explore::randomProgramFactory(config, seed);

    sim::RandomPolicy policy;
    sim::ExecOptions opt;
    opt.seed = seed * 31 + 7;
    opt.maxDecisions = 5000;
    auto exec = sim::runProgram(factory, policy, opt);
    EXPECT_FALSE(exec.stepLimitHit);
    EXPECT_FALSE(exec.deadlocked); // one lock at a time: no cycles

    // Structural validity.
    auto problems = trace::validateTrace(exec.trace);
    EXPECT_TRUE(problems.empty())
        << "seed " << seed << ": " << problems.front();

    // Happens-before always constructs.
    trace::HbRelation hb(exec.trace);
    if (exec.trace.size() >= 2)
        (void)hb.concurrent(0, exec.trace.size() - 1);

    // Detectors are total and deterministic.
    for (auto &detector : detect::allDetectors()) {
        auto first = detector->analyze(exec.trace);
        auto second = detector->analyze(exec.trace);
        ASSERT_EQ(first.size(), second.size()) << detector->name();
        for (std::size_t i = 0; i < first.size(); ++i) {
            EXPECT_EQ(first[i].message, second[i].message);
            EXPECT_EQ(first[i].events, second[i].events);
        }
        for (const auto &finding : first) {
            EXPECT_FALSE(finding.category.empty());
            for (auto eventSeq : finding.events)
                EXPECT_LT(eventSeq, exec.trace.size());
        }
    }

    // Serialization round trip preserves detector verdicts.
    std::string error;
    auto loaded =
        trace::traceFromString(trace::traceToString(exec.trace),
                               &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    for (auto &detector : detect::allDetectors()) {
        EXPECT_EQ(detector->analyze(exec.trace).size(),
                  detector->analyze(*loaded).size())
            << detector->name() << " differs after round trip, seed "
            << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range<std::uint64_t>(0, 60));

/**
 * Corruption sweep: serialized traces that were truncated or had
 * bytes mangled must either fail to parse (loadTrace → nullopt) or,
 * when they happen to still parse, flow through the batch pipeline
 * as quarantine-or-analyze — never a crash, never a hang.
 */
class CorruptTraceTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CorruptTraceTest, TruncatedOrMangledInputNeverCrashes)
{
    const std::uint64_t seed = GetParam();
    auto factory =
        explore::randomProgramFactory(configFor(seed), seed);
    sim::RandomPolicy policy;
    sim::ExecOptions opt;
    opt.seed = seed * 17 + 3;
    opt.maxDecisions = 5000;
    const std::string good =
        trace::traceToString(sim::runProgram(factory, policy, opt)
                                 .trace);

    // A deterministic batch of corruptions of the good artifact.
    std::vector<std::string> corrupted;
    corrupted.push_back(good.substr(0, good.size() / 2));
    corrupted.push_back(good.substr(0, good.size() / 3));
    corrupted.push_back(good.substr(good.size() / 4));
    corrupted.push_back("");
    corrupted.push_back("# lfm-trace v1\ngarbage line here\n");
    std::string mangled = good;
    support::Rng rng(seed * 1000003 + 1);
    for (int i = 0; i < 20 && !mangled.empty(); ++i)
        mangled[rng.index(mangled.size())] =
            static_cast<char>('0' + rng.index(75));
    corrupted.push_back(mangled);
    std::string swapped = good;
    for (char &c : swapped) {
        if (c == 'e')
            c = 'x';
    }
    corrupted.push_back(swapped);

    // Whatever still parses goes through the failsafe batch path:
    // a structurally broken trace is quarantined, a still-valid one
    // is analyzed; either way the campaign completes.
    std::vector<trace::Trace> survivors;
    for (const auto &text : corrupted) {
        std::string error;
        auto loaded = trace::traceFromString(text, &error);
        if (!loaded.has_value())
            continue; // rejected at the parser: the common case
        survivors.push_back(std::move(*loaded));
    }

    if (survivors.empty())
        return;
    detect::Pipeline pipeline;
    detect::BatchOptions options;
    options.validate = true;
    const auto reports =
        detect::BatchRunner(2).run(pipeline, survivors, options);
    ASSERT_EQ(reports.size(), survivors.size());
    for (const auto &r : reports) {
        EXPECT_TRUE(r.status == detect::TraceStatus::Analyzed ||
                    r.status == detect::TraceStatus::Quarantined);
        if (r.status == detect::TraceStatus::Quarantined)
            EXPECT_FALSE(r.error.empty());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptTraceTest,
                         ::testing::Range<std::uint64_t>(0, 20));

/**
 * Journal corruption sweep: a campaign journal whose tail was
 * truncated at an arbitrary byte or had an arbitrary bit flipped must
 * recover a valid prefix of what was appended — never crash, never
 * hallucinate a record that was not written, and warn whenever
 * anything was dropped.
 */
class JournalCorruptionTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(JournalCorruptionTest, RecoveryYieldsAValidPrefix)
{
    const std::uint64_t seed = GetParam();
    support::Rng rng(0xB10B'F00D ^ seed);
    const std::string path =
        "test_fuzz_journal_" + std::to_string(seed) + ".lfmj";
    std::remove(path.c_str());

    // Append a random batch of random-sized records.
    std::vector<std::vector<std::uint8_t>> written;
    {
        support::Journal journal;
        ASSERT_TRUE(journal.open(path, /*fsyncEveryAppend=*/false));
        const std::size_t count = 1 + rng.index(12);
        for (std::size_t i = 0; i < count; ++i) {
            std::vector<std::uint8_t> payload(rng.index(40));
            for (auto &b : payload)
                b = static_cast<std::uint8_t>(rng.next());
            ASSERT_TRUE(journal.append(
                1, payload.data(), payload.size()));
            written.push_back(std::move(payload));
        }
    }

    // Corrupt it: truncate at a random byte, flip a random bit, or
    // both — anywhere in the file, header included.
    std::vector<std::uint8_t> bytes;
    {
        std::ifstream in(path, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    ASSERT_FALSE(bytes.empty());
    const bool truncate = rng.chance(0.5);
    if (truncate)
        bytes.resize(rng.index(bytes.size()));
    if (!bytes.empty() && (!truncate || rng.chance(0.5)))
        bytes[rng.index(bytes.size())] ^=
            static_cast<std::uint8_t>(1u << rng.index(8));
    {
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
    }

    const auto recovered = support::recoverJournal(path);
    ASSERT_LE(recovered.records.size(), written.size());
    for (std::size_t i = 0; i < recovered.records.size(); ++i) {
        EXPECT_EQ(recovered.records[i].type, 1u) << "record " << i;
        EXPECT_EQ(recovered.records[i].payload, written[i])
            << "record " << i;
    }
    // A torn or mangled tail must be reported. (A truncation that
    // lands exactly on a record boundary is indistinguishable from a
    // journal that simply ended there — silence is correct then.)
    if (recovered.corruptTail) {
        EXPECT_FALSE(recovered.warning.empty())
            << "skipped bytes must be reported";
    }
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, JournalCorruptionTest,
                         ::testing::Range<std::uint64_t>(0, 40));

/**
 * Append-failure sweep: when the backing device fails mid-append
 * (ENOSPC/EIO after 0..N bytes of the frame reached the file), the
 * append must report failure, the torn frame must be rolled back —
 * never persisted as "committed" — and the journal must stay usable:
 * the next append lands exactly behind the last committed record and
 * recovery sees a clean file with no corrupt tail.
 */
class JournalWriteFailureTest
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(JournalWriteFailureTest, FailedAppendNeverPersistsATornRecord)
{
    const std::size_t allow = GetParam();
    const std::string path =
        "test_fuzz_enospc_" + std::to_string(allow) + ".lfmj";
    std::remove(path.c_str());

    support::Journal journal;
    ASSERT_TRUE(journal.open(path));
    const std::vector<std::uint8_t> a(8, 0xAA);
    const std::vector<std::uint8_t> b(16, 0xBB);
    ASSERT_TRUE(journal.append(1, a.data(), a.size()));
    ASSERT_TRUE(journal.append(2, nullptr, 0));
    ASSERT_TRUE(journal.append(3, b.data(), b.size()));

    // Let `allow` bytes of the next frame reach the file, then fail
    // every further write with ENOSPC.
    std::size_t budget = allow;
    journal.setWriteHookForTest(
        [&budget](int fd, const void *data, std::size_t len)
            -> ssize_t {
            if (budget == 0) {
                errno = ENOSPC;
                return -1;
            }
            const std::size_t n = std::min(len, budget);
            budget -= n;
            return ::write(fd, data, n);
        });
    const std::vector<std::uint8_t> torn(32, 0xCC);
    EXPECT_FALSE(journal.append(4, torn.data(), torn.size()));
    // The rollback succeeded, so the handle is NOT poisoned ...
    EXPECT_FALSE(journal.failed());

    // ... and with the device healthy again the journal accepts the
    // next record in place of the torn one.
    journal.setWriteHookForTest({});
    const std::vector<std::uint8_t> c(4, 0xDD);
    EXPECT_TRUE(journal.append(5, c.data(), c.size()));
    journal.close();

    const auto recovered = support::recoverJournal(path);
    EXPECT_FALSE(recovered.corruptTail) << recovered.warning;
    ASSERT_EQ(recovered.records.size(), 4u);
    EXPECT_EQ(recovered.records[0].type, 1u);
    EXPECT_EQ(recovered.records[0].payload, a);
    EXPECT_EQ(recovered.records[1].type, 2u);
    EXPECT_EQ(recovered.records[2].type, 3u);
    EXPECT_EQ(recovered.records[2].payload, b);
    EXPECT_EQ(recovered.records[3].type, 5u);
    EXPECT_EQ(recovered.records[3].payload, c);
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(PartialBytes, JournalWriteFailureTest,
                         ::testing::Values(0u, 1u, 7u, 12u, 19u,
                                           43u));

TEST(JournalWriteFailure, ShortWritesAreRetriedToCompletion)
{
    const std::string path = "test_fuzz_shortwrite.lfmj";
    std::remove(path.c_str());
    support::Journal journal;
    ASSERT_TRUE(journal.open(path));
    // A device that accepts at most 5 bytes per call but never
    // fails: appends must be completed by the retry loop.
    journal.setWriteHookForTest(
        [](int fd, const void *data, std::size_t len) -> ssize_t {
            return ::write(fd, data, std::min<std::size_t>(len, 5));
        });
    const std::vector<std::uint8_t> payload(57, 0x5A);
    ASSERT_TRUE(journal.append(9, payload.data(), payload.size()));
    journal.close();

    const auto recovered = support::recoverJournal(path);
    EXPECT_FALSE(recovered.corruptTail) << recovered.warning;
    ASSERT_EQ(recovered.records.size(), 1u);
    EXPECT_EQ(recovered.records[0].type, 9u);
    EXPECT_EQ(recovered.records[0].payload, payload);
    std::remove(path.c_str());
}

/**
 * LFMT corruption sweep: bit-flipped or truncated binary trace
 * images must either be rejected with a diagnostic or — when the
 * damage lands in padding or a reserved word — load a trace whose
 * pipeline findings are byte-identical to the pristine original.
 * Silent mis-parses are the failure mode being hunted here.
 */
class LfmtCorruptionTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

namespace
{

/// Copy raw bytes into an 8-byte-aligned buffer, as TraceView
/// requires, so the only thing under test is the corruption itself.
std::vector<std::uint64_t>
alignedCopy(const std::string &bytes)
{
    std::vector<std::uint64_t> buffer((bytes.size() + 7) / 8, 0);
    if (!bytes.empty())
        std::memcpy(buffer.data(), bytes.data(), bytes.size());
    return buffer;
}

} // namespace

TEST_P(LfmtCorruptionTest, MangledImageRejectsOrLoadsIdentically)
{
    const std::uint64_t seed = GetParam();
    auto factory =
        explore::randomProgramFactory(configFor(seed), seed);
    sim::RandomPolicy policy;
    sim::ExecOptions opt;
    opt.seed = seed * 29 + 11;
    opt.maxDecisions = 5000;
    const trace::Trace good =
        sim::runProgram(factory, policy, opt).trace;
    const std::string image = trace::encodeTrace(good);
    ASSERT_GE(image.size(), 32u);

    detect::Pipeline pipeline;
    const std::string baseline =
        detect::findingsJson(good, pipeline.run(good)).str();
    const std::string goodText = trace::traceToString(good);

    const auto check = [&](std::string bytes,
                           const std::string &what) {
        const auto buffer = alignedCopy(bytes);
        std::string error;
        auto view = trace::TraceView::open(buffer.data(),
                                           bytes.size(), &error);
        if (!view.has_value()) {
            // Rejected: fine, but the rejection must carry a reason.
            EXPECT_FALSE(error.empty()) << what;
            return;
        }
        // Survived: the flip hit padding or a reserved word. The
        // loaded trace must then be indistinguishable from pristine.
        EXPECT_EQ(trace::traceToString(view->decode()), goodText)
            << what << ": corrupt image decoded to a different trace";
        EXPECT_EQ(
            detect::findingsJson(view->decode(),
                                 pipeline.run(view->decode()))
                .str(),
            baseline)
            << what << ": corrupt image changed pipeline findings";
    };

    // Truncations: empty, mid-header, mid-section-table, random.
    check("", "empty buffer");
    check(image.substr(0, 8), "cut inside the file header");
    check(image.substr(0, 16), "cut after the file header");
    support::Rng rng(0xC0FFEE ^ (seed * 2654435761u));
    for (int i = 0; i < 6; ++i)
        check(image.substr(0, rng.index(image.size())),
              "random truncation");

    // Targeted single-bit flips in the file and first section
    // headers: magic, version, section count, header CRC, tag,
    // payload size, payload CRC.
    for (std::size_t at : {0u, 4u, 8u, 12u, 16u, 20u, 24u}) {
        std::string bytes = image;
        bytes[at] ^= static_cast<char>(1u << rng.index(8));
        check(bytes,
              "bit flip at header offset " + std::to_string(at));
    }

    // Random single-bit flips anywhere: string tables, event
    // columns, section padding — every byte is fair game.
    for (int i = 0; i < 24; ++i) {
        std::string bytes = image;
        const std::size_t at = rng.index(bytes.size());
        bytes[at] ^= static_cast<char>(1u << rng.index(8));
        check(bytes, "bit flip at offset " + std::to_string(at));
    }

    // An all-zero buffer of plausible size must be rejected.
    check(std::string(image.size(), '\0'), "all-zero buffer");
}

TEST_P(LfmtCorruptionTest, CorruptCorpusIsolatesDamagedEntries)
{
    const std::uint64_t seed = GetParam();
    sim::RandomPolicy policy;
    trace::CorpusWriter writer;
    std::vector<std::string> baselines;
    detect::Pipeline pipeline;
    for (std::uint64_t i = 0; i < 3; ++i) {
        auto factory = explore::randomProgramFactory(
            configFor(seed + i), seed + i);
        sim::ExecOptions opt;
        opt.seed = (seed + i) * 29 + 11;
        opt.maxDecisions = 5000;
        const trace::Trace t =
            sim::runProgram(factory, policy, opt).trace;
        baselines.push_back(
            detect::findingsJson(t, pipeline.run(t)).str());
        writer.add(t);
    }
    const std::string image = writer.encode();

    const auto check = [&](std::string bytes,
                           const std::string &what) {
        const auto buffer = alignedCopy(bytes);
        std::string error;
        auto reader = trace::CorpusReader::fromBuffer(
            buffer.data(), bytes.size(), &error);
        if (!reader.has_value()) {
            EXPECT_FALSE(error.empty()) << what;
            return;
        }
        // The index survived. Each entry must now individually
        // reject with a diagnostic or analyze identically — one
        // mangled trace must never poison its neighbours.
        for (std::size_t i = 0; i < reader->traceCount(); ++i) {
            std::string entryError;
            auto view = reader->viewAt(i, &entryError);
            if (!view.has_value()) {
                EXPECT_FALSE(entryError.empty())
                    << what << ": entry " << i;
                continue;
            }
            if (i < baselines.size()) {
                const trace::Trace t = view->decode();
                EXPECT_EQ(
                    detect::findingsJson(t, pipeline.run(t)).str(),
                    baselines[i])
                    << what << ": entry " << i
                    << " changed pipeline findings";
            }
        }
    };

    support::Rng rng(0xD15EA5E ^ (seed * 2654435761u));
    check("", "empty corpus buffer");
    check(image.substr(0, 12), "cut inside the corpus header");
    for (int i = 0; i < 4; ++i)
        check(image.substr(0, rng.index(image.size())),
              "random corpus truncation");
    // Flips in the index region (header + INDX section) and beyond.
    for (int i = 0; i < 8; ++i) {
        std::string bytes = image;
        const std::size_t at =
            rng.index(std::min<std::size_t>(bytes.size(), 80));
        bytes[at] ^= static_cast<char>(1u << rng.index(8));
        check(bytes, "bit flip in index at " + std::to_string(at));
    }
    for (int i = 0; i < 16; ++i) {
        std::string bytes = image;
        const std::size_t at = rng.index(bytes.size());
        bytes[at] ^= static_cast<char>(1u << rng.index(8));
        check(bytes, "bit flip at offset " + std::to_string(at));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LfmtCorruptionTest,
                         ::testing::Range<std::uint64_t>(0, 12));

/**
 * Text-format property fuzz: the mirror of LfmtCorruptionTest for the
 * v1 *text* format. Traces whose labels, object names, and thread
 * names are arbitrary byte strings (every value 0x00–0xFF, tabs,
 * '%', spaces, DEL) must serialize to a line-structured artifact,
 * load back byte-identically, and re-serialize to the exact same
 * bytes. Whitespace-padded lines must parse to the same trace.
 */
class TextRoundTripFuzzTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

namespace
{

/// Arbitrary bytes, deliberately biased toward the nasty region:
/// control characters, '%', ' ', DEL, and high bytes.
std::string
arbitraryBytes(support::Rng &rng, std::size_t maxLen)
{
    std::string out;
    const std::size_t len = rng.index(maxLen + 1);
    for (std::size_t i = 0; i < len; ++i) {
        switch (rng.index(4)) {
          case 0:
            out += static_cast<char>(rng.index(0x21)); // controls
            break;
          case 1:
            out += "% \t\x7F"[rng.index(4)];
            break;
          default:
            out += static_cast<char>(rng.index(256));
            break;
        }
    }
    return out;
}

} // namespace

TEST_P(TextRoundTripFuzzTest, ArbitraryByteNamesRoundTrip)
{
    const std::uint64_t seed = GetParam();
    support::Rng rng(0x7E47'F0D0 ^ (seed * 2654435761u));

    trace::Trace original;
    const std::size_t objects = 1 + rng.index(5);
    for (std::size_t i = 0; i < objects; ++i) {
        original.registerObject(
            {i + 1,
             static_cast<trace::ObjectKind>(rng.index(7)),
             arbitraryBytes(rng, 24),
             static_cast<std::uint32_t>(rng.index(4))});
    }
    const std::size_t threads = 1 + rng.index(3);
    for (std::size_t i = 0; i < threads; ++i)
        original.registerThread(static_cast<trace::ThreadId>(i),
                                arbitraryBytes(rng, 16));
    const std::size_t events = rng.index(30);
    for (std::size_t i = 0; i < events; ++i) {
        trace::Event e;
        e.thread = static_cast<trace::ThreadId>(rng.index(threads));
        e.kind = static_cast<trace::EventKind>(rng.index(22));
        e.obj = rng.index(objects + 1);
        e.obj2 = rng.index(objects + 1);
        e.aux = rng.next();
        e.label = arbitraryBytes(rng, 32);
        original.append(e);
    }

    const std::string text = trace::traceToString(original);
    // Property 1: the artifact is line-structured — no raw byte
    // below 0x21 except '\n' and ' ', and no raw DEL.
    for (unsigned char c : text) {
        ASSERT_TRUE(c == '\n' || c == ' ' ||
                    (c >= 0x21 && c != 0x7F))
            << "seed " << seed << ": unescaped byte "
            << static_cast<int>(c);
    }

    // Property 2: round trip is the identity on every field.
    std::string error;
    auto loaded = trace::traceFromString(text, &error);
    ASSERT_TRUE(loaded.has_value()) << "seed " << seed << ": "
                                    << error;
    ASSERT_EQ(loaded->size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded->ev(i).label, original.ev(i).label)
            << "seed " << seed << " event " << i;
        EXPECT_EQ(loaded->ev(i).aux, original.ev(i).aux);
    }
    for (std::size_t i = 0; i < objects; ++i)
        EXPECT_EQ(loaded->objectName(i + 1),
                  original.objectName(i + 1))
            << "seed " << seed;

    // Property 3: the canonical form is a fixed point.
    EXPECT_EQ(trace::traceToString(*loaded), text);

    // Property 4 (whitespace-edge lines): padding every line with
    // leading/trailing ASCII whitespace parses to the same trace.
    std::string padded;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line))
        padded += "  " + line + " \t\r\n";
    auto reloaded = trace::traceFromString(padded, &error);
    ASSERT_TRUE(reloaded.has_value()) << "seed " << seed << ": "
                                      << error;
    EXPECT_EQ(trace::traceToString(*reloaded), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextRoundTripFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 40));

} // namespace
