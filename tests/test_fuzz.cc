/**
 * @file
 * Fuzz sweep: random programs × the whole analysis stack. For every
 * generated program and seed, the full pipeline must be total and
 * deterministic — execution, trace validation, happens-before
 * construction, every detector (twice, identically), and the
 * serialization round trip.
 */

#include <gtest/gtest.h>

#include "detect/detector.hh"
#include "explore/randprog.hh"
#include "sim/policy.hh"
#include "trace/hb.hh"
#include "trace/serialize.hh"
#include "trace/validate.hh"

namespace
{

using namespace lfm;
using explore::RandProgConfig;

struct FuzzCase
{
    std::uint64_t seed;
    RandProgConfig config;
};

class FuzzTest : public ::testing::TestWithParam<std::uint64_t>
{
};

RandProgConfig
configFor(std::uint64_t seed)
{
    // Vary the program shape with the seed so the sweep covers
    // small/large, disciplined/undisciplined programs.
    RandProgConfig config;
    config.threads = 2 + static_cast<int>(seed % 3);
    config.variables = 1 + static_cast<int>(seed % 4);
    config.mutexes = 1 + static_cast<int>(seed % 2);
    config.opsPerThread = 3 + static_cast<int>(seed % 7);
    config.lockedFraction = (seed % 5) * 0.25;
    config.writeFraction = 0.3 + (seed % 3) * 0.2;
    config.consistentLocking = seed % 2 == 0;
    return config;
}

TEST_P(FuzzTest, FullPipelineIsTotalAndDeterministic)
{
    const std::uint64_t seed = GetParam();
    const RandProgConfig config = configFor(seed);
    auto factory = explore::randomProgramFactory(config, seed);

    sim::RandomPolicy policy;
    sim::ExecOptions opt;
    opt.seed = seed * 31 + 7;
    opt.maxDecisions = 5000;
    auto exec = sim::runProgram(factory, policy, opt);
    EXPECT_FALSE(exec.stepLimitHit);
    EXPECT_FALSE(exec.deadlocked); // one lock at a time: no cycles

    // Structural validity.
    auto problems = trace::validateTrace(exec.trace);
    EXPECT_TRUE(problems.empty())
        << "seed " << seed << ": " << problems.front();

    // Happens-before always constructs.
    trace::HbRelation hb(exec.trace);
    if (exec.trace.size() >= 2)
        (void)hb.concurrent(0, exec.trace.size() - 1);

    // Detectors are total and deterministic.
    for (auto &detector : detect::allDetectors()) {
        auto first = detector->analyze(exec.trace);
        auto second = detector->analyze(exec.trace);
        ASSERT_EQ(first.size(), second.size()) << detector->name();
        for (std::size_t i = 0; i < first.size(); ++i) {
            EXPECT_EQ(first[i].message, second[i].message);
            EXPECT_EQ(first[i].events, second[i].events);
        }
        for (const auto &finding : first) {
            EXPECT_FALSE(finding.category.empty());
            for (auto eventSeq : finding.events)
                EXPECT_LT(eventSeq, exec.trace.size());
        }
    }

    // Serialization round trip preserves detector verdicts.
    std::string error;
    auto loaded =
        trace::traceFromString(trace::traceToString(exec.trace),
                               &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    for (auto &detector : detect::allDetectors()) {
        EXPECT_EQ(detector->analyze(exec.trace).size(),
                  detector->analyze(*loaded).size())
            << detector->name() << " differs after round trip, seed "
            << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range<std::uint64_t>(0, 60));

} // namespace
