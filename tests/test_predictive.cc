/**
 * @file
 * Predictive atomicity detection: flags violations from *benign*
 * traces (where the execution-sensitive detector sees nothing), and
 * stays silent once the fix orders the remote access.
 */

#include <gtest/gtest.h>

#include "bugs/registry.hh"
#include "detect/atomicity.hh"
#include "detect/predictive.hh"
#include "explore/runner.hh"
#include "sim/policy.hh"

namespace
{

using namespace lfm;

/** A benign (non-manifesting) execution of the kernel variant. */
std::optional<sim::Execution>
benignTrace(const bugs::BugKernel &kernel, bugs::Variant variant)
{
    // Round-robin runs each thread to completion: the classic
    // in-house test schedule that hides these bugs.
    sim::RoundRobinPolicy policy;
    auto exec = sim::runProgram(kernel.factory(variant), policy);
    if (explore::defaultManifest(exec))
        return std::nullopt;
    return exec;
}

TEST(Predictive, HandBuiltBenignTraceIsPredicted)
{
    using namespace lfm::trace;
    Trace t;
    auto begin = [&t](ThreadId tid) {
        Event e;
        e.thread = tid;
        e.kind = EventKind::ThreadBegin;
        e.aux = kSpuriousWakeup;
        t.append(e);
    };
    auto access = [&t](ThreadId tid, EventKind kind, ObjectId obj) {
        Event e;
        e.thread = tid;
        e.kind = kind;
        e.obj = obj;
        t.append(e);
    };
    begin(0);
    begin(1);
    // T0's read-then-write region executes untouched; T1's write
    // happens after — benign order, but nothing synchronizes it.
    access(0, EventKind::Read, 9);
    access(0, EventKind::Write, 9);
    access(1, EventKind::Write, 9);

    detect::AtomicityDetector plain;
    detect::PredictiveAtomicityDetector predictive;
    EXPECT_TRUE(plain.analyze(t).empty())
        << "no interleaving occurred, plain AVIO must be silent";
    auto fs = predictive.analyze(t);
    ASSERT_FALSE(fs.empty());
    EXPECT_NE(fs[0].message.find("RWW"), std::string::npos);
}

TEST(Predictive, LockOrderedRemoteIsNotPredicted)
{
    using namespace lfm::trace;
    Trace t;
    Event e;
    e.thread = 0;
    e.kind = EventKind::ThreadBegin;
    e.aux = kSpuriousWakeup;
    t.append(e);
    e.thread = 1;
    t.append(e);

    auto ev = [&t](ThreadId tid, EventKind kind, ObjectId obj) {
        Event x;
        x.thread = tid;
        x.kind = kind;
        x.obj = obj;
        t.append(x);
    };
    // T0 region under lock 5; T1's write also under lock 5.
    ev(0, EventKind::Lock, 5);
    ev(0, EventKind::Read, 9);
    ev(0, EventKind::Write, 9);
    ev(0, EventKind::Unlock, 5);
    ev(1, EventKind::Lock, 5);
    ev(1, EventKind::Write, 9);
    ev(1, EventKind::Unlock, 5);

    detect::PredictiveAtomicityDetector predictive;
    EXPECT_TRUE(predictive.analyze(t).empty());
}

class PredictiveKernelTest
    : public ::testing::TestWithParam<const bugs::BugKernel *>
{
};

std::string
predName(const ::testing::TestParamInfo<const bugs::BugKernel *> &i)
{
    std::string name = i.param->info().id;
    for (char &c : name) {
        if (c == '-')
            c = '_';
    }
    return name;
}

TEST_P(PredictiveKernelTest, PredictsFromBenignBuggyTrace)
{
    const auto &kernel = *GetParam();
    auto exec = benignTrace(kernel, bugs::Variant::Buggy);
    ASSERT_TRUE(exec.has_value())
        << "round-robin unexpectedly manifested the bug";
    detect::AtomicityDetector plain;
    detect::PredictiveAtomicityDetector predictive;
    EXPECT_TRUE(plain.analyze(exec->trace).empty())
        << "benign trace should carry no actual interleaving";
    EXPECT_FALSE(predictive.analyze(exec->trace).empty())
        << kernel.info().id
        << ": prediction missed the latent violation";
}

TEST_P(PredictiveKernelTest, SilentOnLockFixedVariant)
{
    const auto &kernel = *GetParam();
    if (kernel.info().ndFix != study::NonDeadlockFix::AddLock)
        GTEST_SKIP() << "fix does not order the remote access";
    auto exec = benignTrace(kernel, bugs::Variant::Fixed);
    ASSERT_TRUE(exec.has_value());
    detect::PredictiveAtomicityDetector predictive;
    EXPECT_TRUE(predictive.analyze(exec->trace).empty())
        << kernel.info().id << ": false positive on the lock fix";
}

/** Single-variable atomicity kernels: prediction's target shape. */
std::vector<const bugs::BugKernel *>
predictableKernels()
{
    std::vector<const bugs::BugKernel *> out;
    for (const auto *k : bugs::allKernels()) {
        const auto &info = k->info();
        if (info.type != study::BugType::NonDeadlock)
            continue;
        if (!info.patterns.count(study::Pattern::Atomicity))
            continue;
        if (info.variables != 1)
            continue;
        // The double-free kernel's region is check/free/clear over
        // two cells; its single-variable projection is not a triple.
        if (info.id == "moz-18025")
            continue;
        out.push_back(k);
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(SingleVarAtomicity, PredictiveKernelTest,
                         ::testing::ValuesIn(predictableKernels()),
                         predName);

} // namespace
