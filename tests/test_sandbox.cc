/**
 * @file
 * Sandbox + journal tests: crash containment (SIGSEGV, SIGABRT,
 * rlimit kills), worker restart and benching, journal durability and
 * total recovery under corruption, checkpoint/resume equivalence, and
 * the honesty sweep — sandbox-on must reproduce every study-table
 * number exactly.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bugs/registry.hh"
#include "detect/batch.hh"
#include "detect/detector.hh"
#include "detect/pipeline.hh"
#include "explore/parallel.hh"
#include "explore/runner.hh"
#include "sim/policy.hh"
#include "sim/shared.hh"
#include "study/analysis.hh"
#include "study/database.hh"
#include "support/journal.hh"
#include "support/random.hh"
#include "support/sandbox.hh"

namespace
{

using namespace lfm;
using support::RunOutcome;
using support::SandboxOptions;
using support::SandboxPolicy;
using support::SandboxSupervisor;

#if defined(__SANITIZE_ADDRESS__)
constexpr bool kAsan = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
constexpr bool kAsan = true;
#else
constexpr bool kAsan = false;
#endif
#else
constexpr bool kAsan = false;
#endif

SandboxOptions
forkOptions(unsigned workers = 1)
{
    SandboxOptions opt;
    opt.policy = SandboxPolicy::Fork;
    opt.workers = workers;
    opt.maxConsecutiveCrashes = 1000;
    return opt;
}

std::vector<std::uint64_t>
iota(std::uint64_t n)
{
    std::vector<std::uint64_t> units;
    for (std::uint64_t i = 0; i < n; ++i)
        units.push_back(i);
    return units;
}

/** A scratch file removed on scope exit (journal tests). */
struct ScratchFile
{
    explicit ScratchFile(std::string p) : path(std::move(p))
    {
        std::remove(path.c_str());
        std::remove(support::journalCheckpointPath(path).c_str());
    }
    ~ScratchFile()
    {
        std::remove(path.c_str());
        std::remove(support::journalCheckpointPath(path).c_str());
    }
    std::string path;
};

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeFile(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------
// Supervisor: containment, restarts, benching, rlimits
// ---------------------------------------------------------------

TEST(Supervisor, CompletesAllUnits)
{
    std::vector<std::uint64_t> done;
    const auto stats = SandboxSupervisor(forkOptions(2)).run(
        iota(16),
        [](std::uint64_t unit) {
            return std::vector<std::uint8_t>(
                reinterpret_cast<std::uint8_t *>(&unit),
                reinterpret_cast<std::uint8_t *>(&unit) + 8);
        },
        [&](std::uint64_t unit, const std::vector<std::uint8_t> &p) {
            ASSERT_EQ(p.size(), 8u);
            std::uint64_t echoed = 0;
            std::memcpy(&echoed, p.data(), 8);
            EXPECT_EQ(echoed, unit);
            done.push_back(unit);
        },
        [](const support::CrashInfo &) { FAIL() << "no crashes"; });
    EXPECT_EQ(stats.completed, 16u);
    EXPECT_EQ(stats.crashed, 0u);
    EXPECT_EQ(stats.restarts, 0u);
    EXPECT_EQ(done.size(), 16u);
    EXPECT_EQ(stats.outcome, RunOutcome::Completed);
}

TEST(Supervisor, ContainsSegfaultAndRestarts)
{
    std::vector<support::CrashInfo> crashes;
    std::size_t completed = 0;
    const auto stats = SandboxSupervisor(forkOptions(1)).run(
        iota(10),
        [](std::uint64_t unit) -> std::vector<std::uint8_t> {
            if (unit == 3 || unit == 7) {
                volatile int *null = nullptr;
                *null = 1;
            }
            return {};
        },
        [&](std::uint64_t, const std::vector<std::uint8_t> &) {
            ++completed;
        },
        [&](const support::CrashInfo &c) { crashes.push_back(c); });
    EXPECT_EQ(stats.completed, 8u);
    EXPECT_EQ(completed, 8u);
    ASSERT_EQ(stats.crashed, 2u);
    ASSERT_EQ(crashes.size(), 2u);
    for (const auto &c : crashes) {
        EXPECT_TRUE(c.unit == 3 || c.unit == 7) << c.unit;
        EXPECT_EQ(c.signal, SIGSEGV);
        EXPECT_EQ(c.signalName(), "SIGSEGV");
    }
    // Both crashes left queued work, so both slots were re-forked.
    EXPECT_EQ(stats.restarts, 2u);
    EXPECT_EQ(stats.benched, 0u);
    EXPECT_EQ(stats.abandoned, 0u);
}

TEST(Supervisor, ContainsAbort)
{
    std::vector<support::CrashInfo> crashes;
    const auto stats = SandboxSupervisor(forkOptions(1)).run(
        iota(4),
        [](std::uint64_t unit) -> std::vector<std::uint8_t> {
            if (unit == 1)
                std::abort();
            return {};
        },
        [](std::uint64_t, const std::vector<std::uint8_t> &) {},
        [&](const support::CrashInfo &c) { crashes.push_back(c); });
    EXPECT_EQ(stats.completed, 3u);
    ASSERT_EQ(crashes.size(), 1u);
    EXPECT_EQ(crashes[0].unit, 1u);
    EXPECT_EQ(crashes[0].signal, SIGABRT);
}

TEST(Supervisor, BenchesAfterConsecutiveCrashes)
{
    SandboxOptions opt = forkOptions(1);
    opt.maxConsecutiveCrashes = 2;
    const auto stats = SandboxSupervisor(opt).run(
        iota(6),
        [](std::uint64_t) -> std::vector<std::uint8_t> {
            volatile int *null = nullptr;
            *null = 1;
            return {};
        },
        [](std::uint64_t, const std::vector<std::uint8_t> &) {
            FAIL() << "every unit crashes";
        },
        [](const support::CrashInfo &) {});
    // Two consecutive crashes bench the only slot; the rest of the
    // queue is abandoned rather than fed to a poisoned environment.
    EXPECT_EQ(stats.crashed, 2u);
    EXPECT_EQ(stats.benched, 1u);
    EXPECT_EQ(stats.restarts, 1u);
    EXPECT_EQ(stats.abandoned, 4u);
    EXPECT_EQ(stats.completed, 0u);
}

TEST(Supervisor, CompletionResetsConsecutiveCount)
{
    // crash, ok, crash, ok, ... never two in a row -> never benched.
    SandboxOptions opt = forkOptions(1);
    opt.maxConsecutiveCrashes = 2;
    const auto stats = SandboxSupervisor(opt).run(
        iota(8),
        [](std::uint64_t unit) -> std::vector<std::uint8_t> {
            if (unit % 2 == 0) {
                volatile int *null = nullptr;
                *null = 1;
            }
            return {};
        },
        [](std::uint64_t, const std::vector<std::uint8_t> &) {},
        [](const support::CrashInfo &) {});
    EXPECT_EQ(stats.crashed, 4u);
    EXPECT_EQ(stats.completed, 4u);
    EXPECT_EQ(stats.benched, 0u);
}

TEST(Supervisor, AddressSpaceLimitContainsRunawayAllocation)
{
    if (kAsan)
        GTEST_SKIP() << "RLIMIT_AS is incompatible with ASan's "
                        "shadow-memory reservation";
    SandboxOptions opt = forkOptions(1);
    opt.limits.addressSpaceBytes = 256ull << 20;
    std::vector<support::CrashInfo> crashes;
    const auto stats = SandboxSupervisor(opt).run(
        iota(2),
        [](std::uint64_t unit) -> std::vector<std::uint8_t> {
            if (unit == 0) {
                // Far past the rlimit: bad_alloc -> terminate ->
                // contained SIGABRT instead of a host OOM kill.
                std::vector<std::uint8_t> hog;
                hog.resize(1ull << 30, 1);
                return {hog[12345]};
            }
            return {};
        },
        [](std::uint64_t, const std::vector<std::uint8_t> &) {},
        [&](const support::CrashInfo &c) { crashes.push_back(c); });
    EXPECT_EQ(stats.completed, 1u);
    ASSERT_EQ(crashes.size(), 1u);
    EXPECT_EQ(crashes[0].unit, 0u);
    EXPECT_EQ(crashes[0].signal, SIGABRT);
}

TEST(Supervisor, CpuLimitContainsSpinningChild)
{
    SandboxOptions opt = forkOptions(1);
    opt.limits.cpuSeconds = 1;
    std::vector<support::CrashInfo> crashes;
    const auto stats = SandboxSupervisor(opt).run(
        iota(2),
        [](std::uint64_t unit) -> std::vector<std::uint8_t> {
            if (unit == 0) {
                volatile std::uint64_t sink = 0;
                for (;;)
                    sink = sink * 6364136223846793005ull + 1;
            }
            return {};
        },
        [](std::uint64_t, const std::vector<std::uint8_t> &) {},
        [&](const support::CrashInfo &c) { crashes.push_back(c); });
    EXPECT_EQ(stats.completed, 1u);
    ASSERT_EQ(crashes.size(), 1u);
    EXPECT_EQ(crashes[0].unit, 0u);
    EXPECT_TRUE(crashes[0].signal == SIGXCPU ||
                crashes[0].signal == SIGKILL)
        << crashes[0].signal;
}

TEST(Supervisor, RunIsDeterministic)
{
    const auto once = [] {
        SandboxSupervisor::Stats stats =
            SandboxSupervisor(forkOptions(2)).run(
                iota(12),
                [](std::uint64_t unit) -> std::vector<std::uint8_t> {
                    if (unit % 5 == 2) {
                        volatile int *null = nullptr;
                        *null = 1;
                    }
                    return {static_cast<std::uint8_t>(unit)};
                },
                [](std::uint64_t, const std::vector<std::uint8_t> &) {},
                [](const support::CrashInfo &) {});
        return stats;
    };
    const auto a = once();
    const auto b = once();
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.crashed, b.crashed);
    EXPECT_EQ(a.benched, b.benched);
    EXPECT_EQ(a.abandoned, b.abandoned);
}

// ---------------------------------------------------------------
// One-shot isolation (the DFS/DPOR containment primitive)
// ---------------------------------------------------------------

TEST(RunIsolated, DeliversPayload)
{
    const auto iso = support::runIsolated({}, [] {
        return std::vector<std::uint8_t>{1, 2, 3};
    });
    EXPECT_TRUE(iso.ok);
    EXPECT_FALSE(iso.crashed);
    EXPECT_EQ(iso.payload, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(RunIsolated, ContainsCrash)
{
    const auto iso =
        support::runIsolated({}, []() -> std::vector<std::uint8_t> {
            volatile int *null = nullptr;
            *null = 1;
            return {};
        });
    EXPECT_FALSE(iso.ok);
    EXPECT_TRUE(iso.crashed);
    EXPECT_EQ(iso.crash.signal, SIGSEGV);
}

// ---------------------------------------------------------------
// Journal durability + total recovery
// ---------------------------------------------------------------

TEST(Journal, AppendRecoverRoundTrip)
{
    ScratchFile f("test_sandbox_journal_rt.lfmj");
    {
        support::Journal j;
        ASSERT_TRUE(j.open(f.path));
        for (std::uint8_t i = 0; i < 5; ++i) {
            const std::vector<std::uint8_t> payload(i + 1, i);
            ASSERT_TRUE(
                j.append(7, payload.data(), payload.size()));
        }
        EXPECT_EQ(j.appended(), 5u);
    }
    const auto rec = support::recoverJournal(f.path);
    EXPECT_FALSE(rec.corruptTail);
    EXPECT_TRUE(rec.warning.empty()) << rec.warning;
    ASSERT_EQ(rec.records.size(), 5u);
    for (std::uint8_t i = 0; i < 5; ++i) {
        EXPECT_EQ(rec.records[i].type, 7u);
        EXPECT_EQ(rec.records[i].payload,
                  std::vector<std::uint8_t>(i + 1, i));
    }
}

TEST(Journal, MissingFileRecoversEmpty)
{
    const auto rec =
        support::recoverJournal("test_sandbox_journal_nope.lfmj");
    EXPECT_TRUE(rec.records.empty());
    EXPECT_FALSE(rec.hasCheckpoint);
    EXPECT_TRUE(rec.warning.empty()) << rec.warning;
}

TEST(Journal, CheckpointPlusTailReplay)
{
    ScratchFile f("test_sandbox_journal_ckpt.lfmj");
    support::Journal j;
    ASSERT_TRUE(j.open(f.path));
    const std::vector<std::uint8_t> a{1, 1}, b{2, 2}, c{3, 3};
    ASSERT_TRUE(j.append(1, a.data(), a.size()));
    ASSERT_TRUE(j.append(1, b.data(), b.size()));
    const std::vector<std::uint8_t> snap{9, 9, 9};
    ASSERT_TRUE(j.checkpoint(snap.data(), snap.size()));
    ASSERT_TRUE(j.append(1, c.data(), c.size()));
    j.close();

    const auto rec = support::recoverJournal(f.path);
    EXPECT_TRUE(rec.hasCheckpoint);
    EXPECT_EQ(rec.checkpoint, snap);
    // Only the record past the checkpoint's covered offset replays.
    ASSERT_EQ(rec.records.size(), 1u);
    EXPECT_EQ(rec.records[0].payload, c);
}

TEST(Journal, TruncatedTailIsSkippedWithWarning)
{
    ScratchFile f("test_sandbox_journal_trunc.lfmj");
    {
        support::Journal j;
        ASSERT_TRUE(j.open(f.path));
        for (std::uint8_t i = 0; i < 4; ++i) {
            const std::vector<std::uint8_t> payload(8, i);
            ASSERT_TRUE(
                j.append(1, payload.data(), payload.size()));
        }
    }
    auto bytes = readFile(f.path);
    ASSERT_GT(bytes.size(), 5u);
    bytes.resize(bytes.size() - 5); // tear the last record
    writeFile(f.path, bytes);

    const auto rec = support::recoverJournal(f.path);
    EXPECT_TRUE(rec.corruptTail);
    EXPECT_FALSE(rec.warning.empty());
    ASSERT_EQ(rec.records.size(), 3u);
    EXPECT_EQ(rec.records[2].payload,
              std::vector<std::uint8_t>(8, 2));
}

TEST(Journal, BitFlippedTailIsSkippedWithWarning)
{
    ScratchFile f("test_sandbox_journal_flip.lfmj");
    {
        support::Journal j;
        ASSERT_TRUE(j.open(f.path));
        for (std::uint8_t i = 0; i < 4; ++i) {
            const std::vector<std::uint8_t> payload(8, i);
            ASSERT_TRUE(
                j.append(1, payload.data(), payload.size()));
        }
    }
    auto bytes = readFile(f.path);
    bytes[bytes.size() - 3] ^= 0x40; // corrupt the last payload
    writeFile(f.path, bytes);

    const auto rec = support::recoverJournal(f.path);
    EXPECT_TRUE(rec.corruptTail);
    EXPECT_FALSE(rec.warning.empty());
    ASSERT_EQ(rec.records.size(), 3u);
}

TEST(Journal, CorruptHeaderRecoversEmptyWithWarning)
{
    ScratchFile f("test_sandbox_journal_hdr.lfmj");
    {
        support::Journal j;
        ASSERT_TRUE(j.open(f.path));
        const std::vector<std::uint8_t> payload(8, 1);
        ASSERT_TRUE(j.append(1, payload.data(), payload.size()));
    }
    auto bytes = readFile(f.path);
    bytes[0] ^= 0xFF;
    writeFile(f.path, bytes);

    const auto rec = support::recoverJournal(f.path);
    EXPECT_TRUE(rec.records.empty());
    EXPECT_FALSE(rec.warning.empty());
}

TEST(Journal, CorruptCheckpointFallsBackToFullReplay)
{
    ScratchFile f("test_sandbox_journal_badckpt.lfmj");
    support::Journal j;
    ASSERT_TRUE(j.open(f.path));
    const std::vector<std::uint8_t> a{1}, b{2};
    ASSERT_TRUE(j.append(1, a.data(), a.size()));
    const std::vector<std::uint8_t> snap{9};
    ASSERT_TRUE(j.checkpoint(snap.data(), snap.size()));
    ASSERT_TRUE(j.append(1, b.data(), b.size()));
    j.close();

    const auto ckpt = support::journalCheckpointPath(f.path);
    auto bytes = readFile(ckpt);
    ASSERT_FALSE(bytes.empty());
    bytes[bytes.size() / 2] ^= 0x01;
    writeFile(ckpt, bytes);

    const auto rec = support::recoverJournal(f.path);
    EXPECT_FALSE(rec.hasCheckpoint);
    EXPECT_FALSE(rec.warning.empty());
    // Full journal replay covers what the checkpoint would have.
    ASSERT_EQ(rec.records.size(), 2u);
    EXPECT_EQ(rec.records[0].payload, a);
    EXPECT_EQ(rec.records[1].payload, b);
}

// ---------------------------------------------------------------
// Campaign-level stress: sandbox equivalence, crashes, resume
// ---------------------------------------------------------------

/** Two threads, one unlocked increment each, lost-update oracle. */
sim::ProgramFactory
racyFactory()
{
    return [] {
        auto v =
            std::make_shared<std::unique_ptr<sim::SharedVar<int>>>();
        *v = std::make_unique<sim::SharedVar<int>>("c", 0);
        sim::Program p;
        auto body = [v] { (*v)->add(1); };
        p.threads.push_back({"a", body});
        p.threads.push_back({"b", body});
        p.oracle = [v]() -> std::optional<std::string> {
            if ((*v)->peek() != 2)
                return "lost update";
            return std::nullopt;
        };
        return p;
    };
}

/** Order-violation program that genuinely segfaults on a subset of
 * interleavings (reader between the writer's two stores). */
sim::ProgramFactory
crashyFactory()
{
    return [] {
        struct State
        {
            std::unique_ptr<sim::SharedVar<int>> ready;
            std::unique_ptr<sim::SharedVar<int>> data;
            bool sawStale = false;
        };
        auto s = std::make_shared<State>();
        s->ready = std::make_unique<sim::SharedVar<int>>("ready", 0);
        s->data = std::make_unique<sim::SharedVar<int>>("data", 0);
        sim::Program p;
        p.threads.push_back({"writer", [s] {
                                 s->ready->set(1);
                                 s->data->set(42);
                             }});
        p.threads.push_back({"reader", [s] {
                                 if (s->ready->get() == 1 &&
                                     s->data->get() != 42) {
                                     volatile int *null = nullptr;
                                     *null = 1;
                                 }
                             }});
        return p;
    };
}

void
expectSameStress(const explore::StressResult &a,
                 const explore::StressResult &b)
{
    EXPECT_EQ(a.runs, b.runs);
    EXPECT_EQ(a.manifestations, b.manifestations);
    EXPECT_EQ(a.truncatedRuns, b.truncatedRuns);
    EXPECT_EQ(a.firstManifestSeed, b.firstManifestSeed);
    EXPECT_EQ(a.avgDecisions, b.avgDecisions);
}

TEST(SandboxStress, MatchesClassicPathExactly)
{
    explore::StressOptions classic;
    classic.runs = 80;
    const explore::ParallelRunner runner(2);
    const auto reference = runner.stress(
        racyFactory(), explore::makePolicy<sim::RandomPolicy>(),
        classic);
    ASSERT_GT(reference.manifestations, 0u);

    explore::StressOptions sandboxed = classic;
    sandboxed.sandbox = forkOptions(2);
    const auto contained = runner.stress(
        racyFactory(), explore::makePolicy<sim::RandomPolicy>(),
        sandboxed);
    expectSameStress(contained, reference);
    EXPECT_EQ(contained.crashedRuns, 0u);
    EXPECT_EQ(contained.outcome, RunOutcome::Completed);
}

TEST(SandboxStress, CrashesAreContainedAndHarvested)
{
    explore::StressOptions opt;
    opt.runs = 60;
    opt.sandbox = forkOptions(2);
    const auto result = explore::ParallelRunner(2).stress(
        crashyFactory(), explore::makePolicy<sim::RandomPolicy>(),
        opt);
    ASSERT_GT(result.crashedRuns, 0u);
    EXPECT_EQ(result.crashedRuns, result.crashes.size());
    EXPECT_EQ(result.runs + result.crashedRuns, 60u);
    EXPECT_EQ(result.outcome, RunOutcome::Crashed);
    for (const auto &crash : result.crashes) {
        EXPECT_EQ(crash.signal, SIGSEGV);
        EXPECT_LT(crash.unit, 60u);
        // The probe harvested the schedule up to the crash.
        EXPECT_GT(crash.steps, 0u);
        EXPECT_FALSE(crash.prefix.empty());
    }
    // Same campaign again: the crashed seed set is deterministic.
    const auto again = explore::ParallelRunner(2).stress(
        crashyFactory(), explore::makePolicy<sim::RandomPolicy>(),
        opt);
    EXPECT_EQ(again.crashedRuns, result.crashedRuns);
    expectSameStress(again, result);
}

TEST(Resume, ClassicPartialJournalThenResumeMatchesStraightRun)
{
    ScratchFile f("test_sandbox_resume_classic.lfmj");
    const std::uint64_t campaign =
        explore::campaignKey("resume-classic");
    const explore::ParallelRunner runner(2);
    const auto policy = explore::makePolicy<sim::RandomPolicy>();

    explore::StressOptions opt;
    opt.runs = 60;
    opt.campaignId = campaign;
    const auto reference = runner.stress(racyFactory(), policy, opt);

    // First run covers only half the seeds, journaled.
    {
        explore::CampaignJournal journal;
        ASSERT_TRUE(journal.open(f.path));
        explore::StressOptions half = opt;
        half.runs = 30;
        half.journal = &journal;
        const auto partial =
            runner.stress(racyFactory(), policy, half);
        EXPECT_EQ(partial.runs, 30u);
    }

    // Second run resumes the half and executes the rest.
    const auto recovered = explore::RecoveredCampaigns::load(f.path);
    EXPECT_TRUE(recovered.warning.empty()) << recovered.warning;
    ASSERT_EQ(recovered.count(campaign), 30u);
    explore::CampaignJournal journal;
    ASSERT_TRUE(journal.open(f.path));
    journal.seedSnapshot(recovered.all);
    explore::StressOptions resumeOpt = opt;
    resumeOpt.journal = &journal;
    resumeOpt.resume = &recovered;
    const auto resumed =
        runner.stress(racyFactory(), policy, resumeOpt);
    EXPECT_EQ(resumed.resumedRuns, 30u);
    expectSameStress(resumed, reference);

    // And the journal now covers the whole campaign.
    journal.close();
    const auto full = explore::RecoveredCampaigns::load(f.path);
    EXPECT_EQ(full.count(campaign), 60u);
}

TEST(Resume, SandboxJournalRestoresCrashedSeedsWithoutRerun)
{
    ScratchFile f("test_sandbox_resume_crash.lfmj");
    const std::uint64_t campaign =
        explore::campaignKey("resume-crashy");
    const explore::ParallelRunner runner(2);
    const auto policy = explore::makePolicy<sim::RandomPolicy>();

    explore::StressOptions opt;
    opt.runs = 40;
    opt.campaignId = campaign;
    opt.sandbox = forkOptions(2);

    explore::StressResult first;
    {
        explore::CampaignJournal journal;
        ASSERT_TRUE(journal.open(f.path));
        explore::StressOptions j = opt;
        j.journal = &journal;
        first = runner.stress(crashyFactory(), policy, j);
    }
    ASSERT_GT(first.crashedRuns, 0u);

    const auto recovered = explore::RecoveredCampaigns::load(f.path);
    ASSERT_EQ(recovered.count(campaign), 40u);
    explore::StressOptions resumeOpt = opt;
    resumeOpt.resume = &recovered;
    const auto resumed =
        runner.stress(crashyFactory(), policy, resumeOpt);
    // Everything restores from the journal — including the crashed
    // seeds, which must not be re-executed (they would just crash
    // again) yet still count as crashes.
    EXPECT_EQ(resumed.resumedRuns, 40u);
    EXPECT_EQ(resumed.runs, first.runs);
    EXPECT_EQ(resumed.crashedRuns, first.crashedRuns);
    EXPECT_EQ(resumed.outcome, RunOutcome::Crashed);
    EXPECT_EQ(resumed.workerRestarts, 0u);
}

// ---------------------------------------------------------------
// DFS / DPOR whole-campaign containment
// ---------------------------------------------------------------

TEST(SandboxDfs, MatchesClassicPathExactly)
{
    explore::DfsOptions classic;
    classic.maxExecutions = 2000;
    const explore::ParallelRunner runner(2);
    const auto reference = runner.dfs(racyFactory(), classic);
    ASSERT_TRUE(reference.exhausted);
    ASSERT_GT(reference.manifestations, 0u);

    explore::DfsOptions sandboxed = classic;
    sandboxed.sandbox = forkOptions();
    const auto contained = runner.dfs(racyFactory(), sandboxed);
    EXPECT_FALSE(contained.crashed);
    EXPECT_EQ(contained.executions, reference.executions);
    EXPECT_EQ(contained.manifestations, reference.manifestations);
    EXPECT_EQ(contained.exhausted, reference.exhausted);
    EXPECT_EQ(contained.truncated, reference.truncated);
    EXPECT_EQ(contained.firstManifestPath,
              reference.firstManifestPath);
    EXPECT_EQ(contained.outcome, reference.outcome);
}

TEST(SandboxDfs, CrashIsContainedAsOutcome)
{
    explore::DfsOptions opt;
    opt.maxExecutions = 2000;
    opt.sandbox = forkOptions();
    const auto result =
        explore::ParallelRunner(1).dfs(crashyFactory(), opt);
    EXPECT_TRUE(result.crashed);
    EXPECT_EQ(result.outcome, RunOutcome::Crashed);
    EXPECT_EQ(result.crash.signal, SIGSEGV);
}

TEST(SandboxDpor, MatchesClassicPathExactly)
{
    explore::DporOptions classic;
    classic.maxExecutions = 2000;
    const explore::ParallelRunner runner(2);
    const auto reference = runner.dpor(racyFactory(), classic);
    ASSERT_TRUE(reference.exhausted);

    explore::DporOptions sandboxed = classic;
    sandboxed.sandbox = forkOptions();
    const auto contained = runner.dpor(racyFactory(), sandboxed);
    EXPECT_FALSE(contained.crashed);
    EXPECT_EQ(contained.executions, reference.executions);
    EXPECT_EQ(contained.manifestations, reference.manifestations);
    EXPECT_EQ(contained.exhausted, reference.exhausted);
    EXPECT_EQ(contained.firstManifestPlan,
              reference.firstManifestPlan);
    EXPECT_EQ(contained.outcome, reference.outcome);
}

// ---------------------------------------------------------------
// Batch detection under the sandbox
// ---------------------------------------------------------------

std::vector<trace::Trace>
smallCorpus(std::size_t n)
{
    std::vector<trace::Trace> corpus;
    for (std::size_t i = 0; i < n; ++i) {
        sim::RandomPolicy policy;
        sim::ExecOptions opt;
        opt.seed = i + 1;
        corpus.push_back(
            sim::runProgram(racyFactory(), policy, opt).trace);
    }
    return corpus;
}

TEST(SandboxBatch, MatchesClassicPathExactly)
{
    const detect::Pipeline pipeline;
    const auto corpus = smallCorpus(6);
    const auto reference =
        detect::BatchRunner(2).run(pipeline, corpus,
                                   detect::BatchOptions{});

    detect::BatchOptions options;
    options.sandbox = forkOptions(2);
    const auto contained =
        detect::BatchRunner(2).run(pipeline, corpus, options);

    ASSERT_EQ(contained.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(contained[i].status, reference[i].status) << i;
        ASSERT_EQ(contained[i].findings.size(),
                  reference[i].findings.size())
            << i;
        for (std::size_t k = 0; k < reference[i].findings.size();
             ++k) {
            EXPECT_EQ(contained[i].findings[k].detector,
                      reference[i].findings[k].detector);
            EXPECT_EQ(contained[i].findings[k].message,
                      reference[i].findings[k].message);
        }
    }
}

/** A detector that dies on a real memory error (the failure mode the
 * in-process quarantine cannot catch). */
class SegfaultingDetector : public detect::Detector
{
  public:
    std::vector<detect::Finding>
    fromContext(const detect::AnalysisContext &) const override
    {
        volatile int *null = nullptr;
        *null = 1;
        return {};
    }
    const char *name() const override { return "segfaulting"; }
};

TEST(SandboxBatch, CrashingDetectorIsContainedPerTrace)
{
    std::vector<std::unique_ptr<detect::Detector>> detectors;
    detectors.push_back(std::make_unique<SegfaultingDetector>());
    const detect::Pipeline pipeline(std::move(detectors));
    const auto corpus = smallCorpus(3);

    detect::BatchOptions options;
    options.sandbox = forkOptions(2);
    const auto reports =
        detect::BatchRunner(2).run(pipeline, corpus, options);

    ASSERT_EQ(reports.size(), 3u);
    for (const auto &r : reports) {
        EXPECT_EQ(r.status, detect::TraceStatus::Crashed);
        EXPECT_TRUE(r.findings.empty());
        EXPECT_NE(r.error.find("SIGSEGV"), std::string::npos)
            << r.error;
    }
}

// ---------------------------------------------------------------
// The honesty sweep: sandbox-on reproduces the study tables
// ---------------------------------------------------------------

/**
 * Mirror of Faults.SweepLeavesStudyTablesUnchanged for the sandbox:
 * crash containment must be *transparent* — per-seed results under
 * SandboxPolicy::Fork are produced by the same deterministic executor
 * in a forked child, so every number a study table derives from a
 * stress campaign (manifestation counts, rates, first manifesting
 * seed, decision averages) must be identical to the classic
 * in-process path, kernel by kernel.
 */
TEST(Sandbox, SweepLeavesStudyTablesUnchanged)
{
    const auto &db = study::database();
    const study::Analysis before(db);
    const int totalBugs = before.totalBugs();
    const int totalNd = before.totalNonDeadlock();
    const int atomOrOrder = before.atomicityOrOrder();

    const explore::ParallelRunner runner(2);
    for (const auto *kernel : bugs::allKernels()) {
        const auto &info = kernel->info();
        explore::StressOptions opt;
        opt.runs = 20;
        opt.exec.maxDecisions = info.stepCeiling != 0
                                    ? info.stepCeiling
                                    : 20000;
        const auto classic = runner.stress(
            kernel->factory(bugs::Variant::Buggy),
            explore::makePolicy<sim::RandomPolicy>(), opt);

        explore::StressOptions sandboxed = opt;
        sandboxed.sandbox = forkOptions(2);
        const auto contained = runner.stress(
            kernel->factory(bugs::Variant::Buggy),
            explore::makePolicy<sim::RandomPolicy>(), sandboxed);

        EXPECT_EQ(contained.runs, classic.runs) << info.id;
        EXPECT_EQ(contained.manifestations, classic.manifestations)
            << info.id;
        EXPECT_EQ(contained.truncatedRuns, classic.truncatedRuns)
            << info.id;
        EXPECT_EQ(contained.firstManifestSeed,
                  classic.firstManifestSeed)
            << info.id;
        EXPECT_EQ(contained.avgDecisions, classic.avgDecisions)
            << info.id;
        EXPECT_EQ(contained.crashedRuns, 0u)
            << info.id << ": kernels model bugs in the simulator; "
                          "none should crash the harness";
    }

    const study::Analysis after(db);
    EXPECT_EQ(after.totalBugs(), totalBugs);
    EXPECT_EQ(after.totalNonDeadlock(), totalNd);
    EXPECT_EQ(after.atomicityOrOrder(), atomOrOrder);
}

} // namespace
