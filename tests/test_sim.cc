/**
 * @file
 * Core executor semantics: determinism, mutual exclusion, condition
 * variables, deadlock detection, replay, and dynamic threads.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "sim/policy.hh"
#include "sim/program.hh"
#include "sim/shared.hh"
#include "sim/sync.hh"

namespace
{

using namespace lfm;
using namespace lfm::sim;

/** Two threads increment a counter without a lock (racy). */
Program
racyCounterProgram()
{
    auto v = std::make_shared<std::unique_ptr<SharedVar<int>>>();
    *v = std::make_unique<SharedVar<int>>("counter", 0);
    Program p;
    auto body = [v] { (*v)->add(1, "R", "W"); };
    p.threads.push_back({"inc1", body});
    p.threads.push_back({"inc2", body});
    p.oracle = [v]() -> std::optional<std::string> {
        if ((*v)->peek() != 2)
            return "lost update: counter=" +
                   std::to_string((*v)->peek());
        return std::nullopt;
    };
    return p;
}

/** Same increment, properly locked. */
Program
lockedCounterProgram()
{
    struct State
    {
        std::unique_ptr<SharedVar<int>> v;
        std::unique_ptr<SimMutex> m;
    };
    auto s = std::make_shared<State>();
    s->v = std::make_unique<SharedVar<int>>("counter", 0);
    s->m = std::make_unique<SimMutex>("m");
    Program p;
    auto body = [s] {
        SimLock guard(*s->m);
        s->v->add(1);
    };
    p.threads.push_back({"inc1", body});
    p.threads.push_back({"inc2", body});
    p.oracle = [s]() -> std::optional<std::string> {
        if (s->v->peek() != 2)
            return "lost update under lock";
        return std::nullopt;
    };
    return p;
}

/** Classic ABBA deadlock candidate. */
Program
abbaProgram()
{
    struct State
    {
        std::unique_ptr<SimMutex> a, b;
    };
    auto s = std::make_shared<State>();
    s->a = std::make_unique<SimMutex>("A");
    s->b = std::make_unique<SimMutex>("B");
    Program p;
    p.threads.push_back({"t1", [s] {
                             s->a->lock();
                             s->b->lock();
                             s->b->unlock();
                             s->a->unlock();
                         }});
    p.threads.push_back({"t2", [s] {
                             s->b->lock();
                             s->a->lock();
                             s->a->unlock();
                             s->b->unlock();
                         }});
    return p;
}

TEST(Executor, SingleThreadTraceShape)
{
    RandomPolicy policy;
    auto exec = runProgram(
        [] {
            Program p;
            p.threads.push_back({"solo", [] { yieldNow(); }});
            return p;
        },
        policy);
    ASSERT_FALSE(exec.failed());
    const auto &events = exec.trace.events();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].kind, trace::EventKind::ThreadBegin);
    EXPECT_EQ(events[1].kind, trace::EventKind::Yield);
    EXPECT_EQ(events[2].kind, trace::EventKind::ThreadEnd);
}

TEST(Executor, RacyCounterManifestsUnderSomeSeed)
{
    RandomPolicy policy;
    bool sawLost = false;
    bool sawOk = false;
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        ExecOptions opt;
        opt.seed = seed;
        auto exec = runProgram(racyCounterProgram, policy, opt);
        EXPECT_FALSE(exec.deadlocked);
        if (exec.oracleFailure)
            sawLost = true;
        else
            sawOk = true;
    }
    EXPECT_TRUE(sawLost) << "no interleaving lost the update";
    EXPECT_TRUE(sawOk) << "no interleaving preserved the update";
}

TEST(Executor, LockedCounterNeverLosesUpdates)
{
    RandomPolicy policy;
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        ExecOptions opt;
        opt.seed = seed;
        auto exec = runProgram(lockedCounterProgram, policy, opt);
        EXPECT_FALSE(exec.failed())
            << exec.oracleFailure.value_or("deadlock?");
    }
}

TEST(Executor, DeterministicReplaySameSeed)
{
    RandomPolicy policy;
    ExecOptions opt;
    opt.seed = 7;
    auto a = runProgram(racyCounterProgram, policy, opt);
    auto b = runProgram(racyCounterProgram, policy, opt);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace.ev(i).kind, b.trace.ev(i).kind);
        EXPECT_EQ(a.trace.ev(i).thread, b.trace.ev(i).thread);
    }
    ASSERT_EQ(a.decisions.size(), b.decisions.size());
}

TEST(Executor, FixedScheduleReplaysDecisions)
{
    RandomPolicy random;
    ExecOptions opt;
    opt.seed = 3;
    auto original = runProgram(racyCounterProgram, random, opt);

    std::vector<std::size_t> prefix;
    for (const auto &d : original.decisions)
        prefix.push_back(d.chosen);

    FixedSchedulePolicy fixed(prefix);
    auto replayed = runProgram(racyCounterProgram, fixed);
    EXPECT_FALSE(fixed.diverged());
    ASSERT_EQ(original.trace.size(), replayed.trace.size());
    for (std::size_t i = 0; i < original.trace.size(); ++i) {
        EXPECT_EQ(original.trace.ev(i).thread,
                  replayed.trace.ev(i).thread);
        EXPECT_EQ(original.trace.ev(i).kind,
                  replayed.trace.ev(i).kind);
    }
    EXPECT_EQ(original.oracleFailure.has_value(),
              replayed.oracleFailure.has_value());
}

TEST(Executor, AbbaDeadlockDetected)
{
    // Force t1: lock A, then t2: lock B, then both block.
    bool sawDeadlock = false;
    RandomPolicy policy;
    for (std::uint64_t seed = 0; seed < 100 && !sawDeadlock; ++seed) {
        ExecOptions opt;
        opt.seed = seed;
        auto exec = runProgram(abbaProgram, policy, opt);
        if (exec.deadlocked) {
            sawDeadlock = true;
            EXPECT_GE(exec.blockedThreads.size(), 2u);
        }
    }
    EXPECT_TRUE(sawDeadlock);
}

TEST(Executor, SelfRelockDeadlocks)
{
    RandomPolicy policy;
    auto exec = runProgram(
        [] {
            auto m = std::make_shared<std::unique_ptr<SimMutex>>();
            *m = std::make_unique<SimMutex>("self");
            Program p;
            p.threads.push_back({"t", [m] {
                                     (*m)->lock();
                                     (*m)->lock(); // deadlock
                                 }});
            return p;
        },
        policy);
    EXPECT_TRUE(exec.deadlocked);
    ASSERT_EQ(exec.blockedThreads.size(), 1u);
    EXPECT_EQ(exec.blockedThreads[0].holder,
              exec.blockedThreads[0].thread);
}

TEST(Executor, RecursiveMutexAllowsRelock)
{
    RandomPolicy policy;
    auto exec = runProgram(
        [] {
            auto m = std::make_shared<std::unique_ptr<SimMutex>>();
            *m = std::make_unique<SimMutex>("rec", true);
            Program p;
            p.threads.push_back({"t", [m] {
                                     (*m)->lock();
                                     (*m)->lock();
                                     (*m)->unlock();
                                     (*m)->unlock();
                                 }});
            return p;
        },
        policy);
    EXPECT_FALSE(exec.failed());
}

TEST(Executor, CondVarHandshake)
{
    struct State
    {
        std::unique_ptr<SimMutex> m;
        std::unique_ptr<SimCondVar> cv;
        std::unique_ptr<SharedVar<int>> ready;
        std::unique_ptr<SharedVar<int>> got;
    };
    auto makeProgram = [] {
        auto s = std::make_shared<State>();
        s->m = std::make_unique<SimMutex>("m");
        s->cv = std::make_unique<SimCondVar>("cv");
        s->ready = std::make_unique<SharedVar<int>>("ready", 0);
        s->got = std::make_unique<SharedVar<int>>("got", 0);
        Program p;
        p.threads.push_back({"consumer", [s] {
                                 s->m->lock();
                                 s->cv->waitWhile(*s->m, [s] {
                                     return s->ready->get() == 0;
                                 });
                                 s->got->set(s->ready->get());
                                 s->m->unlock();
                             }});
        p.threads.push_back({"producer", [s] {
                                 s->m->lock();
                                 s->ready->set(42);
                                 s->cv->signal();
                                 s->m->unlock();
                             }});
        p.oracle = [s]() -> std::optional<std::string> {
            if (s->got->peek() != 42)
                return "consumer missed the value";
            return std::nullopt;
        };
        return p;
    };
    RandomPolicy policy;
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        ExecOptions opt;
        opt.seed = seed;
        auto exec = runProgram(makeProgram, policy, opt);
        EXPECT_FALSE(exec.failed())
            << "seed " << seed << ": "
            << exec.oracleFailure.value_or("deadlock");
    }
}

TEST(Executor, LostSignalStallsWaiter)
{
    // wait() after the only signal() already fired: the waiter parks
    // forever and the executor reports the global block.
    struct State
    {
        std::unique_ptr<SimMutex> m;
        std::unique_ptr<SimCondVar> cv;
    };
    auto makeProgram = [] {
        auto s = std::make_shared<State>();
        s->m = std::make_unique<SimMutex>("m");
        s->cv = std::make_unique<SimCondVar>("cv");
        Program p;
        // No predicate re-check: the buggy `if`-less wait pattern.
        p.threads.push_back({"waiter", [s] {
                                 s->m->lock();
                                 s->cv->wait(*s->m);
                                 s->m->unlock();
                             }});
        p.threads.push_back({"signaler", [s] {
                                 s->m->lock();
                                 s->cv->signal();
                                 s->m->unlock();
                             }});
        return p;
    };
    bool sawStall = false;
    bool sawOk = false;
    RandomPolicy policy;
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
        ExecOptions opt;
        opt.seed = seed;
        auto exec = runProgram(makeProgram, policy, opt);
        if (exec.deadlocked)
            sawStall = true;
        else
            sawOk = true;
    }
    EXPECT_TRUE(sawStall) << "signal-before-wait never manifested";
    EXPECT_TRUE(sawOk) << "wait-before-signal never happened";
}

TEST(Executor, SemaphoreOrdering)
{
    struct State
    {
        std::unique_ptr<SimSemaphore> sem;
        std::unique_ptr<SharedVar<int>> order;
    };
    auto makeProgram = [] {
        auto s = std::make_shared<State>();
        s->sem = std::make_unique<SimSemaphore>("sem", 0);
        s->order = std::make_unique<SharedVar<int>>("order", 0);
        Program p;
        p.threads.push_back({"after", [s] {
                                 s->sem->wait();
                                 simCheck(s->order->get() == 1,
                                          "ran before post");
                             }});
        p.threads.push_back({"before", [s] {
                                 s->order->set(1);
                                 s->sem->post();
                             }});
        return p;
    };
    RandomPolicy policy;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        ExecOptions opt;
        opt.seed = seed;
        auto exec = runProgram(makeProgram, policy, opt);
        EXPECT_FALSE(exec.failed()) << "seed " << seed;
    }
}

TEST(Executor, BarrierReleasesEveryone)
{
    struct State
    {
        std::unique_ptr<SimBarrier> bar;
        std::vector<std::unique_ptr<SharedVar<int>>> arrived;
    };
    auto makeProgram = [] {
        auto s = std::make_shared<State>();
        s->bar = std::make_unique<SimBarrier>("bar", 3);
        for (int i = 0; i < 3; ++i) {
            s->arrived.push_back(std::make_unique<SharedVar<int>>(
                "arrived" + std::to_string(i), 0));
        }
        Program p;
        for (int i = 0; i < 3; ++i) {
            p.threads.push_back({"t" + std::to_string(i), [s, i] {
                                     s->arrived[i]->set(1);
                                     s->bar->arrive();
                                     int sum = 0;
                                     for (auto &a : s->arrived)
                                         sum += a->get();
                                     simCheck(sum == 3,
                                              "crossed barrier early");
                                 }});
        }
        return p;
    };
    RandomPolicy policy;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        ExecOptions opt;
        opt.seed = seed;
        auto exec = runProgram(makeProgram, policy, opt);
        for (const auto &msg : exec.failureMessages)
            EXPECT_NE(msg, "crossed barrier early") << "seed " << seed;
        EXPECT_FALSE(exec.deadlocked);
    }
}

TEST(Executor, SpawnAndJoin)
{
    auto makeProgram = [] {
        auto v = std::make_shared<std::unique_ptr<SharedVar<int>>>();
        *v = std::make_unique<SharedVar<int>>("x", 0);
        Program p;
        p.threads.push_back({"parent", [v] {
                                 auto h = spawnThread("child", [v] {
                                     (*v)->set(5);
                                 });
                                 h.join();
                                 simCheck((*v)->get() == 5,
                                          "join did not order write");
                             }});
        return p;
    };
    RandomPolicy policy;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        ExecOptions opt;
        opt.seed = seed;
        auto exec = runProgram(makeProgram, policy, opt);
        EXPECT_FALSE(exec.failed()) << "seed " << seed;
    }
}

TEST(Executor, UseAfterFreeIsReported)
{
    RandomPolicy policy;
    auto exec = runProgram(
        [] {
            auto v = std::make_shared<std::unique_ptr<SharedVar<int>>>();
            *v = std::make_unique<SharedVar<int>>("obj", 1);
            Program p;
            p.threads.push_back({"t", [v] {
                                     (*v)->free();
                                     (*v)->get();
                                 }});
            return p;
        },
        policy);
    ASSERT_FALSE(exec.failureMessages.empty());
    EXPECT_NE(exec.failureMessages[0].find("use-after-free"),
              std::string::npos);
}

TEST(Executor, StepLimitAborts)
{
    RandomPolicy policy;
    ExecOptions opt;
    opt.maxDecisions = 50;
    auto exec = runProgram(
        [] {
            auto v = std::make_shared<std::unique_ptr<SharedVar<int>>>();
            *v = std::make_unique<SharedVar<int>>("x", 0);
            Program p;
            p.threads.push_back({"spin", [v] {
                                     for (;;)
                                         (*v)->get();
                                 }});
            return p;
        },
        policy, opt);
    EXPECT_TRUE(exec.stepLimitHit);
}

TEST(Executor, RWLockAllowsConcurrentReadersBlocksWriter)
{
    struct State
    {
        std::unique_ptr<SimRWLock> rw;
        std::vector<std::unique_ptr<SharedVar<int>>> inside;
    };
    auto makeProgram = [] {
        auto s = std::make_shared<State>();
        s->rw = std::make_unique<SimRWLock>("rw");
        for (int i = 0; i < 2; ++i) {
            s->inside.push_back(std::make_unique<SharedVar<int>>(
                "inside" + std::to_string(i), 0));
        }
        Program p;
        for (int i = 0; i < 2; ++i) {
            p.threads.push_back({"r" + std::to_string(i), [s, i] {
                                     s->rw->rdLock();
                                     s->inside[i]->set(1);
                                     yieldNow();
                                     s->inside[i]->set(0);
                                     s->rw->rdUnlock();
                                 }});
        }
        p.threads.push_back({"w", [s] {
                                 s->rw->wrLock();
                                 simCheck(s->inside[0]->get() == 0 &&
                                              s->inside[1]->get() == 0,
                                          "writer saw readers inside");
                                 s->rw->wrUnlock();
                             }});
        return p;
    };
    RandomPolicy policy;
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        ExecOptions opt;
        opt.seed = seed;
        auto exec = runProgram(makeProgram, policy, opt);
        EXPECT_FALSE(exec.failed()) << "seed " << seed;
    }
}

TEST(Executor, SpuriousWakeupsExploreIfVsWhile)
{
    // With spurious wakeups allowed, a waiter using `if` instead of
    // `while` can observe the predicate false after waking.
    struct State
    {
        std::unique_ptr<SimMutex> m;
        std::unique_ptr<SimCondVar> cv;
        std::unique_ptr<SharedVar<int>> ready;
    };
    auto makeProgram = [] {
        auto s = std::make_shared<State>();
        s->m = std::make_unique<SimMutex>("m");
        s->cv = std::make_unique<SimCondVar>("cv");
        s->ready = std::make_unique<SharedVar<int>>("ready", 0);
        Program p;
        p.threads.push_back({"waiter", [s] {
                                 s->m->lock();
                                 if (s->ready->get() == 0)
                                     s->cv->wait(*s->m); // bug: `if`
                                 simCheck(s->ready->get() == 1,
                                          "woke with predicate false");
                                 s->m->unlock();
                             }});
        p.threads.push_back({"setter", [s] {
                                 s->m->lock();
                                 s->ready->set(1);
                                 s->cv->signal();
                                 s->m->unlock();
                             }});
        return p;
    };
    RandomPolicy policy;
    bool manifested = false;
    for (std::uint64_t seed = 0; seed < 200 && !manifested; ++seed) {
        ExecOptions opt;
        opt.seed = seed;
        opt.spuriousWakeups = true;
        auto exec = runProgram(makeProgram, policy, opt);
        for (const auto &msg : exec.failureMessages) {
            if (msg == "woke with predicate false")
                manifested = true;
        }
    }
    EXPECT_TRUE(manifested);
}

TEST(Policies, PctAndRoundRobinRunToCompletion)
{
    PctPolicy pct(3, 32);
    RoundRobinPolicy rr;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        ExecOptions opt;
        opt.seed = seed;
        auto a = runProgram(racyCounterProgram, pct, opt);
        EXPECT_FALSE(a.deadlocked);
        auto b = runProgram(racyCounterProgram, rr, opt);
        EXPECT_FALSE(b.deadlocked);
    }
}

} // namespace
