/**
 * @file
 * Failsafe-layer tests: cancellation races, deadline expiry,
 * deterministic backoff, outcome taxonomy, graceful degradation of
 * the executor and the exploration engines, batch/stream quarantine,
 * and the fault-injection honesty sweep (injected faults must not
 * change any study-table number — fixed kernels stay fixed).
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bugs/registry.hh"
#include "detect/batch.hh"
#include "detect/pipeline.hh"
#include "explore/dfs.hh"
#include "explore/parallel.hh"
#include "explore/runner.hh"
#include "sim/faults.hh"
#include "sim/policy.hh"
#include "sim/shared.hh"
#include "sim/sync.hh"
#include "study/analysis.hh"
#include "study/database.hh"
#include "support/failsafe.hh"
#include "support/metrics.hh"

namespace
{

using namespace lfm;
using support::CancellationToken;
using support::Deadline;
using support::RetryPolicy;
using support::RunOutcome;

/** N threads, each `ops` locked increments: long, bounded, clean. */
sim::ProgramFactory
counterFactory(int threads, int ops)
{
    return [threads, ops] {
        struct State
        {
            std::unique_ptr<sim::SimMutex> m;
            std::unique_ptr<sim::SharedVar<int>> v;
        };
        auto s = std::make_shared<State>();
        s->m = std::make_unique<sim::SimMutex>("m");
        s->v = std::make_unique<sim::SharedVar<int>>("v", 0);
        sim::Program p;
        for (int t = 0; t < threads; ++t) {
            p.threads.push_back(
                {"t" + std::to_string(t), [s, ops] {
                     for (int i = 0; i < ops; ++i) {
                         sim::SimLock guard(*s->m);
                         s->v->add(1);
                     }
                 }});
        }
        return p;
    };
}

/** Two threads, one unlocked increment each, lost-update oracle. */
sim::ProgramFactory
racyFactory()
{
    return [] {
        auto v =
            std::make_shared<std::unique_ptr<sim::SharedVar<int>>>();
        *v = std::make_unique<sim::SharedVar<int>>("c", 0);
        sim::Program p;
        auto body = [v] { (*v)->add(1); };
        p.threads.push_back({"a", body});
        p.threads.push_back({"b", body});
        p.oracle = [v]() -> std::optional<std::string> {
            if ((*v)->peek() != 2)
                return "lost update";
            return std::nullopt;
        };
        return p;
    };
}

// ---------------------------------------------------------------
// Outcome taxonomy
// ---------------------------------------------------------------

TEST(Outcome, SeverityOrderAndNames)
{
    using support::worseOutcome;
    EXPECT_EQ(worseOutcome(RunOutcome::Completed,
                           RunOutcome::Truncated),
              RunOutcome::Truncated);
    EXPECT_EQ(worseOutcome(RunOutcome::Cancelled,
                           RunOutcome::Truncated),
              RunOutcome::Cancelled);
    EXPECT_EQ(worseOutcome(RunOutcome::DeadlineExpired,
                           RunOutcome::Truncated),
              RunOutcome::DeadlineExpired);
    EXPECT_EQ(worseOutcome(RunOutcome::Completed,
                           RunOutcome::Completed),
              RunOutcome::Completed);

    EXPECT_STREQ(support::outcomeName(RunOutcome::Completed),
                 "completed");
    EXPECT_STREQ(support::outcomeName(RunOutcome::Truncated),
                 "truncated");
    EXPECT_STREQ(support::outcomeName(RunOutcome::DeadlineExpired),
                 "deadline");
    EXPECT_STREQ(support::outcomeName(RunOutcome::Cancelled),
                 "cancelled");
}

// ---------------------------------------------------------------
// CancellationToken
// ---------------------------------------------------------------

TEST(Cancellation, FirstReasonWinsUnderRace)
{
    CancellationToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_EQ(token.reason(), "");

    // Many threads race to cancel; exactly one reason must win and
    // every observer must see the token cancelled afterwards. TSan
    // guards the flag/reason publication protocol.
    constexpr int kThreads = 8;
    std::vector<std::thread> racers;
    racers.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        racers.emplace_back([&token, i] {
            token.requestCancel("racer-" + std::to_string(i));
        });
    }
    for (auto &t : racers)
        t.join();

    EXPECT_TRUE(token.cancelled());
    const std::string reason = token.reason();
    EXPECT_EQ(reason.rfind("racer-", 0), 0u) << reason;

    // Idempotent: a late request does not replace the winner.
    token.requestCancel("too-late");
    EXPECT_EQ(token.reason(), reason);

    token.reset();
    EXPECT_FALSE(token.cancelled());
    EXPECT_EQ(token.reason(), "");
}

// ---------------------------------------------------------------
// Deadline and Budget
// ---------------------------------------------------------------

TEST(DeadlineTest, UnarmedNeverExpires)
{
    Deadline none;
    EXPECT_FALSE(none.armed());
    EXPECT_FALSE(none.expired());
}

TEST(DeadlineTest, EarlierPicksTheSoonerCutoff)
{
    Deadline none;
    Deadline soon = Deadline::afterNs(0);
    Deadline late = Deadline::afterMs(60'000);

    EXPECT_FALSE(Deadline::earlier(none, none).armed());
    EXPECT_EQ(Deadline::earlier(none, late).when(), late.when());
    EXPECT_EQ(Deadline::earlier(late, none).when(), late.when());
    EXPECT_EQ(Deadline::earlier(soon, late).when(), soon.when());

    EXPECT_TRUE(soon.expired());
    EXPECT_FALSE(late.expired());
}

TEST(BudgetTest, CompositeLimits)
{
    support::Budget none;
    EXPECT_TRUE(none.unlimited());
    EXPECT_EQ(none.check(1u << 30, 1u << 30), RunOutcome::Completed);

    support::Budget steps;
    steps.maxSteps = 100;
    EXPECT_FALSE(steps.unlimited());
    EXPECT_EQ(steps.check(99, 0), RunOutcome::Completed);
    EXPECT_EQ(steps.check(100, 0), RunOutcome::Truncated);

    support::Budget bytes;
    bytes.maxTraceBytes = 1024;
    EXPECT_EQ(bytes.check(0, 1023), RunOutcome::Completed);
    EXPECT_EQ(bytes.check(0, 1024), RunOutcome::Truncated);

    support::Budget wall;
    wall.deadline = Deadline::afterNs(0);
    EXPECT_EQ(wall.check(0, 0), RunOutcome::DeadlineExpired);
}

// ---------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------

TEST(Retry, DeterministicJitteredBackoff)
{
    const RetryPolicy a(5, 1000, 1'000'000, /*seed=*/42);
    const RetryPolicy b(5, 1000, 1'000'000, /*seed=*/42);

    // Same seed, same key: identical sequences (replayability).
    for (unsigned i = 0; i < 5; ++i) {
        EXPECT_EQ(a.delayNs(i, 7), b.delayNs(i, 7)) << "retry " << i;
    }

    // Exponential envelope with jitter in [raw/2, raw).
    for (unsigned i = 0; i < 5; ++i) {
        const std::uint64_t raw =
            std::min<std::uint64_t>(1000ull << i, 1'000'000);
        const std::uint64_t d = a.delayNs(i, 7);
        EXPECT_GE(d, raw / 2) << "retry " << i;
        EXPECT_LT(d, raw) << "retry " << i;
    }

    // The cap holds far past the doubling range (no overflow).
    EXPECT_LT(a.delayNs(60, 7), 1'000'000u);

    // Different keys decorrelate the jitter (same envelope though).
    bool anyDiffer = false;
    for (unsigned i = 0; i < 5; ++i)
        anyDiffer |= a.delayNs(i, 1) != a.delayNs(i, 2);
    EXPECT_TRUE(anyDiffer);
}

TEST(Retry, AttemptAccounting)
{
    const RetryPolicy once; // default: a single attempt
    EXPECT_EQ(once.maxAttempts(), 1u);
    EXPECT_FALSE(once.shouldRetry(1));

    const RetryPolicy zero(0, 0, 0); // 0 clamps to 1
    EXPECT_EQ(zero.maxAttempts(), 1u);

    const RetryPolicy three(3, 10, 100);
    EXPECT_TRUE(three.shouldRetry(1));
    EXPECT_TRUE(three.shouldRetry(2));
    EXPECT_FALSE(three.shouldRetry(3));
}

// ---------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------

TEST(WatchdogTest, FiresOnExpiryAndCancelsTheToken)
{
    CancellationToken token;
    support::Watchdog dog(token, Deadline::afterNs(1),
                          "test watchdog");
    // Polling, not sleeping: the watchdog thread needs a moment.
    for (int i = 0; i < 10'000 && !token.cancelled(); ++i)
        std::this_thread::yield();
    EXPECT_TRUE(token.cancelled());
    EXPECT_TRUE(dog.fired());
    EXPECT_EQ(token.reason(), "test watchdog");
}

TEST(WatchdogTest, DisarmPreventsTheFire)
{
    CancellationToken token;
    {
        support::Watchdog dog(token, Deadline::afterMs(60'000));
        dog.disarm();
        EXPECT_FALSE(dog.fired());
    }
    EXPECT_FALSE(token.cancelled());
}

TEST(WatchdogTest, UnarmedDeadlineIsInert)
{
    CancellationToken token;
    support::Watchdog dog(token, Deadline{});
    EXPECT_FALSE(dog.fired());
    EXPECT_FALSE(token.cancelled());
}

// The shutdown race: a watchdog being disarmed from several threads
// at once — a worker reporting completion racing the owner tearing
// the watchdog down — while the deadline is short enough that the
// fire path races the disarm path too. Every disarm must return
// only after the watcher thread is fully gone (exactly one join,
// never a double join, never a detached firing thread), and a fire
// observed after disarm() returned would be the shutdown bug this
// guards against. Run under TSan (test_failsafe is in the TSan CI
// stage) this also proves the fire/disarm handshake is race-free.
TEST(WatchdogTest, ConcurrentDisarmStressIsSingleJoinSafe)
{
    for (int round = 0; round < 200; ++round) {
        CancellationToken token;
        // Deadlines straddle "already expired" and "barely ahead"
        // so some rounds fire, some disarm in time, and many race.
        auto dog = std::make_unique<support::Watchdog>(
            token, Deadline::afterNs((round % 4) * 20'000),
            "stress watchdog");
        std::vector<std::thread> disarmers;
        for (int t = 0; t < 3; ++t)
            disarmers.emplace_back([&dog] { dog->disarm(); });
        for (auto &thread : disarmers)
            thread.join();
        // All disarms returned: the watcher is gone, so the fired /
        // cancelled verdict is final and consistent.
        EXPECT_EQ(dog->fired(), token.cancelled());
        dog.reset();
        EXPECT_EQ(token.cancelled() ? "stress watchdog" : "",
                  token.reason());
    }
}

// Destruction immediately after an expired deadline: the destructor
// must join the in-flight fire, never detach it (a detached fire
// would touch a destroyed token / watchdog — use-after-free under
// ASan, a data race under TSan).
TEST(WatchdogTest, DestructionJoinsAnInFlightFire)
{
    for (int round = 0; round < 500; ++round) {
        CancellationToken token;
        {
            support::Watchdog dog(token, Deadline::afterNs(1),
                                  "fire in flight");
        }
        // The watchdog is destroyed; whatever happened is final.
        if (token.cancelled())
            EXPECT_EQ(token.reason(), "fire in flight");
    }
}

// ---------------------------------------------------------------
// Executor outcomes
// ---------------------------------------------------------------

TEST(ExecutorFailsafe, CancelledRunSkipsTheOracle)
{
    CancellationToken token;
    token.requestCancel("pre-cancelled");

    sim::RandomPolicy policy;
    sim::ExecOptions opt;
    opt.seed = 3;
    opt.cancel = &token;
    auto exec = sim::runProgram(counterFactory(2, 50), policy, opt);

    EXPECT_EQ(exec.outcome, RunOutcome::Cancelled);
    // The final state was never reached: no oracle verdict, and the
    // abort is not misread as a deadlock.
    EXPECT_FALSE(exec.oracleFailure.has_value());
    EXPECT_FALSE(exec.deadlocked);
}

TEST(ExecutorFailsafe, ExpiredDeadlineEndsTheRun)
{
    sim::RandomPolicy policy;
    sim::ExecOptions opt;
    opt.seed = 3;
    opt.deadline = Deadline::afterNs(0);
    auto exec = sim::runProgram(counterFactory(2, 50), policy, opt);

    EXPECT_EQ(exec.outcome, RunOutcome::DeadlineExpired);
    EXPECT_FALSE(exec.oracleFailure.has_value());
}

TEST(ExecutorFailsafe, StepCeilingIsATruncatedOutcome)
{
    sim::RandomPolicy policy;
    sim::ExecOptions opt;
    opt.seed = 3;
    opt.maxDecisions = 20;
    auto exec = sim::runProgram(counterFactory(2, 200), policy, opt);

    EXPECT_TRUE(exec.stepLimitHit);
    EXPECT_EQ(exec.outcome, RunOutcome::Truncated);
    EXPECT_FALSE(exec.oracleFailure.has_value());
}

TEST(ExecutorFailsafe, UntouchedRunStaysCompleted)
{
    sim::RandomPolicy policy;
    sim::ExecOptions opt;
    opt.seed = 3;
    auto exec = sim::runProgram(counterFactory(2, 5), policy, opt);
    EXPECT_EQ(exec.outcome, RunOutcome::Completed);
}

// ---------------------------------------------------------------
// Campaign-level degradation: stress / DFS
// ---------------------------------------------------------------

TEST(StressFailsafe, CancelledCampaignHarvestsPartialResults)
{
    CancellationToken token;
    token.requestCancel("operator stop");

    explore::StressOptions opt;
    opt.runs = 64;
    opt.cancel = &token;
    auto result = explore::ParallelRunner(2).stress(
        counterFactory(2, 20),
        explore::makePolicy<sim::RandomPolicy>(), opt);

    EXPECT_EQ(result.outcome, RunOutcome::Cancelled);
    EXPECT_LT(result.runs, 64u);
    EXPECT_LE(result.manifestations, result.runs);
}

TEST(StressFailsafe, ExpiredDeadlineCutsTheCampaign)
{
    explore::StressOptions opt;
    opt.runs = 64;
    opt.deadline = Deadline::afterNs(0);
    auto result = explore::ParallelRunner(2).stress(
        counterFactory(2, 20),
        explore::makePolicy<sim::RandomPolicy>(), opt);

    EXPECT_EQ(result.outcome, RunOutcome::DeadlineExpired);
    EXPECT_LT(result.runs, 64u);
}

TEST(StressFailsafe, StepBudgetTruncatesTheCampaign)
{
    explore::StressOptions opt;
    opt.runs = 1000;
    opt.budget.maxSteps = 200;
    auto result = explore::ParallelRunner(2).stress(
        counterFactory(2, 20),
        explore::makePolicy<sim::RandomPolicy>(), opt);

    EXPECT_EQ(result.outcome, RunOutcome::Truncated);
    EXPECT_GT(result.runs, 0u);
    EXPECT_LT(result.runs, 1000u);
}

TEST(StressFailsafe, WatchdogCancelsAStuckCampaignMidSteal)
{
    // A real mid-campaign cut: the watchdog fires a few milliseconds
    // in while workers are stealing seeds of a long campaign.
    CancellationToken token;
    support::Watchdog dog(token, Deadline::afterMs(5));

    explore::StressOptions opt;
    opt.runs = 200'000;
    opt.cancel = &token;
    auto result = explore::ParallelRunner(4).stress(
        counterFactory(3, 40),
        explore::makePolicy<sim::RandomPolicy>(), opt);
    dog.disarm();

    EXPECT_EQ(result.outcome, RunOutcome::Cancelled);
    EXPECT_LT(result.runs, 200'000u);
    EXPECT_TRUE(dog.fired());
}

TEST(StressFailsafe, UnboundedCampaignIsUnchanged)
{
    explore::StressOptions opt;
    opt.runs = 50;
    auto result = explore::ParallelRunner(2).stress(
        racyFactory(), explore::makePolicy<sim::RandomPolicy>(),
        opt);
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.runs, 50u);
    EXPECT_EQ(result.truncatedRuns, 0u);
}

TEST(DfsFailsafe, CancelledSearchReportsTheCut)
{
    CancellationToken token;
    token.requestCancel("stop");

    explore::DfsOptions opt;
    opt.maxExecutions = 1000;
    opt.cancel = &token;
    auto result = explore::exploreDfs(counterFactory(2, 4), opt);

    EXPECT_EQ(result.outcome, RunOutcome::Cancelled);
    EXPECT_FALSE(result.exhausted);
}

TEST(DfsFailsafe, ExpiredDeadlineReportsTheCut)
{
    explore::DfsOptions opt;
    opt.maxExecutions = 1000;
    opt.deadline = Deadline::afterNs(0);
    auto result = explore::exploreDfs(counterFactory(2, 4), opt);

    EXPECT_EQ(result.outcome, RunOutcome::DeadlineExpired);
    EXPECT_FALSE(result.exhausted);
}

TEST(DfsFailsafe, PerExecutionCapCountsTruncatedRuns)
{
    explore::DfsOptions opt;
    opt.maxExecutions = 50;
    opt.maxDecisions = 10;
    auto result = explore::exploreDfs(counterFactory(2, 20), opt);

    // Each run hits the 10-decision ceiling and is counted; the
    // campaign itself was not cut, so the outcome stays Completed
    // (exhausted refers to the decision-capped tree).
    EXPECT_GT(result.truncated, 0u);
    EXPECT_EQ(result.outcome, support::RunOutcome::Completed);
}

TEST(DfsFailsafe, UnboundedSearchStaysCompletedAndExhausts)
{
    explore::DfsOptions opt;
    opt.maxExecutions = 100'000;
    auto result = explore::exploreDfs(racyFactory(), opt);
    EXPECT_EQ(result.outcome, RunOutcome::Completed);
    EXPECT_TRUE(result.exhausted);
    EXPECT_EQ(result.truncated, 0u);
}

// ---------------------------------------------------------------
// Batch / stream quarantine
// ---------------------------------------------------------------

/** A detector that always throws (a buggy analysis pass). */
class ThrowingDetector : public detect::Detector
{
  public:
    std::vector<detect::Finding>
    fromContext(const detect::AnalysisContext &) const override
    {
        throw std::runtime_error("detector exploded");
    }
    const char *name() const override { return "throwing"; }
};

detect::Pipeline
throwingPipeline()
{
    std::vector<std::unique_ptr<detect::Detector>> detectors;
    detectors.push_back(std::make_unique<ThrowingDetector>());
    return detect::Pipeline(std::move(detectors));
}

std::vector<trace::Trace>
smallCorpus(std::size_t n)
{
    std::vector<trace::Trace> corpus;
    for (std::size_t i = 0; i < n; ++i) {
        sim::RandomPolicy policy;
        sim::ExecOptions opt;
        opt.seed = i + 1;
        corpus.push_back(
            sim::runProgram(racyFactory(), policy, opt).trace);
    }
    return corpus;
}

/** A structurally invalid trace: unlock of a never-locked mutex. */
trace::Trace
corruptTrace()
{
    trace::Trace t;
    t.registerThread(0, "t0");
    t.registerObject({1, trace::ObjectKind::Mutex, "m", 0});
    trace::Event begin;
    begin.thread = 0;
    begin.kind = trace::EventKind::ThreadBegin;
    t.append(begin);
    trace::Event unlock;
    unlock.thread = 0;
    unlock.kind = trace::EventKind::Unlock;
    unlock.obj = 1;
    t.append(unlock);
    trace::Event end;
    end.thread = 0;
    end.kind = trace::EventKind::ThreadEnd;
    t.append(end);
    return t;
}

TEST(BatchFailsafe, ThrowingDetectorQuarantinesEachTrace)
{
    const auto pipeline = throwingPipeline();
    const auto corpus = smallCorpus(3);

    detect::BatchRunner runner(2);
    const auto reports =
        runner.run(pipeline, corpus, detect::BatchOptions{});

    ASSERT_EQ(reports.size(), 3u);
    for (const auto &r : reports) {
        EXPECT_EQ(r.status, detect::TraceStatus::Quarantined);
        EXPECT_TRUE(r.findings.empty());
        EXPECT_NE(r.error.find("detector exploded"),
                  std::string::npos)
            << r.error;
    }
}

TEST(BatchFailsafe, RetriesAreCountedAndStillQuarantine)
{
    support::metrics::setEnabled(true);
    const auto before =
        support::metrics::counter("detect.batch.retries").value();

    const auto pipeline = throwingPipeline();
    const auto corpus = smallCorpus(2);

    detect::BatchOptions options;
    options.retry = RetryPolicy(3, 1, 1, /*seed=*/1);
    const auto reports =
        detect::BatchRunner(1).run(pipeline, corpus, options);
    support::metrics::setEnabled(false);

    ASSERT_EQ(reports.size(), 2u);
    for (const auto &r : reports)
        EXPECT_EQ(r.status, detect::TraceStatus::Quarantined);

    // Three attempts per trace: two retries each.
    const auto after =
        support::metrics::counter("detect.batch.retries").value();
    EXPECT_EQ(after - before, 4u);
}

TEST(BatchFailsafe, ValidateQuarantinesCorruptTraces)
{
    detect::Pipeline pipeline; // the real detector set
    std::vector<trace::Trace> corpus = smallCorpus(1);
    corpus.push_back(corruptTrace());
    corpus.push_back(smallCorpus(1).front());

    detect::BatchOptions options;
    options.validate = true;
    const auto reports =
        detect::BatchRunner(2).run(pipeline, corpus, options);

    ASSERT_EQ(reports.size(), 3u);
    EXPECT_EQ(reports[0].status, detect::TraceStatus::Analyzed);
    EXPECT_EQ(reports[1].status, detect::TraceStatus::Quarantined);
    EXPECT_NE(reports[1].error.find("invalid trace"),
              std::string::npos)
        << reports[1].error;
    EXPECT_EQ(reports[2].status, detect::TraceStatus::Analyzed);
}

TEST(BatchFailsafe, CancelledBatchSkipsRemainingTraces)
{
    CancellationToken token;
    token.requestCancel("stop");

    detect::Pipeline pipeline;
    detect::BatchOptions options;
    options.cancel = &token;
    const auto reports = detect::BatchRunner(2).run(
        pipeline, smallCorpus(4), options);

    ASSERT_EQ(reports.size(), 4u);
    for (const auto &r : reports)
        EXPECT_EQ(r.status, detect::TraceStatus::Skipped);
}

TEST(BatchFailsafe, DefaultOptionsMatchTheClassicRun)
{
    detect::Pipeline pipeline;
    const auto corpus = smallCorpus(4);
    detect::BatchRunner runner(2);

    const auto classic = runner.run(pipeline, corpus);
    const auto withOptions =
        runner.run(pipeline, corpus, detect::BatchOptions{});

    ASSERT_EQ(classic.size(), withOptions.size());
    for (std::size_t i = 0; i < classic.size(); ++i) {
        EXPECT_EQ(classic[i].status, detect::TraceStatus::Analyzed);
        EXPECT_EQ(withOptions[i].status,
                  detect::TraceStatus::Analyzed);
        EXPECT_EQ(classic[i].findings.size(),
                  withOptions[i].findings.size());
    }
}

TEST(StreamFailsafe, ThrowingDetectorQuarantinesStreamedTraces)
{
    const auto pipeline = throwingPipeline();
    detect::DetectionStream stream(pipeline, 2);
    const auto corpus = smallCorpus(3);
    for (std::size_t i = 0; i < corpus.size(); ++i)
        EXPECT_TRUE(stream.submit(i, corpus[i]));

    const auto reports = stream.finish();
    ASSERT_EQ(reports.size(), 3u);
    for (const auto &r : reports) {
        EXPECT_EQ(r.status, detect::TraceStatus::Quarantined);
        EXPECT_NE(r.error.find("detector exploded"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------

TEST(Faults, PlanDerivationIsDeterministic)
{
    const auto a = sim::FaultPlan::fromSeed(1234);
    const auto b = sim::FaultPlan::fromSeed(1234);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.spuriousWakeupRate, b.spuriousWakeupRate);
    EXPECT_EQ(a.tryLockFailRate, b.tryLockFailRate);
    EXPECT_EQ(a.perturbChance, b.perturbChance);
    EXPECT_EQ(a.perturbLength, b.perturbLength);
    EXPECT_TRUE(a.active());

    const auto c = sim::FaultPlan::fromSeed(5678);
    EXPECT_NE(a.seed, c.seed);

    EXPECT_FALSE(sim::FaultPlan{}.active());
}

TEST(Faults, InjectedExecutionIsReplayable)
{
    const auto plan = sim::FaultPlan::fromSeed(99);

    const auto once = [&plan](std::uint64_t seed) {
        sim::RandomPolicy inner;
        sim::FaultInjectingPolicy faulty(plan, inner);
        sim::ExecOptions opt;
        opt.seed = seed;
        opt.spuriousWakeups = true;
        opt.faults = &plan;
        return sim::runProgram(counterFactory(3, 6), faulty, opt);
    };

    const auto a = once(7);
    const auto b = once(7);
    EXPECT_EQ(a.decisionCount, b.decisionCount);
    ASSERT_EQ(a.decisions.size(), b.decisions.size());
    for (std::size_t i = 0; i < a.decisions.size(); ++i)
        EXPECT_EQ(a.decisions[i].chosen, b.decisions[i].chosen)
            << "decision " << i;
    EXPECT_EQ(a.trace.size(), b.trace.size());
}

/**
 * The honesty sweep EXPERIMENTS.md points at: deterministic fault
 * injection (forced spurious wakeups, tryLock failures, scheduler
 * perturbation) is legal scheduling behavior, so it must not change
 * any number the study tables report. Concretely: the tables derived
 * from the bug database cannot move (they are static data), and the
 * empirical columns cannot move either — every kernel's Fixed
 * variant stays clean under injected faults, because the developers'
 * fixes are exactly the condition-recheck/retry patterns that
 * tolerate them.
 */
TEST(Faults, SweepLeavesStudyTablesUnchanged)
{
    const auto &db = study::database();
    const study::Analysis before(db);
    const int totalBugs = before.totalBugs();
    const int totalNd = before.totalNonDeadlock();
    const int atomOrOrder = before.atomicityOrOrder();

    const auto plan = sim::FaultPlan::fromSeed(2026);
    for (const auto *kernel : bugs::allKernels()) {
        const auto &info = kernel->info();

        explore::StressOptions opt;
        opt.runs = 40;
        opt.exec.spuriousWakeups = true;
        opt.exec.faults = &plan;
        opt.exec.maxDecisions = info.stepCeiling != 0
                                    ? info.stepCeiling
                                    : 20000;
        sim::RandomPolicy inner;
        sim::FaultInjectingPolicy faulty(plan, inner);
        auto fixed = explore::stressProgram(
            kernel->factory(bugs::Variant::Fixed), faulty, opt);
        EXPECT_EQ(fixed.manifestations, 0u)
            << info.id << ": the Fixed variant must tolerate "
                          "injected faults";

        // The declared manifestation certificate is static data the
        // study counts; the sweep must find it untouched.
        EXPECT_EQ(kernel->info().manifestation.size(),
                  info.manifestation.size());
    }

    const study::Analysis after(db);
    EXPECT_EQ(after.totalBugs(), totalBugs);
    EXPECT_EQ(after.totalNonDeadlock(), totalNd);
    EXPECT_EQ(after.atomicityOrOrder(), atomOrOrder);
}

} // namespace
