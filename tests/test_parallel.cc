/**
 * @file
 * Parallel exploration engine tests: worker-count invariance of
 * stress/DFS/DPOR results, determinism across identical campaigns,
 * count-only vs traced verdict agreement, and equivalence of the two
 * executor handoff implementations.
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "bugs/registry.hh"
#include "explore/parallel.hh"
#include "explore/sharded.hh"
#include "sim/policy.hh"
#include "sim/shared.hh"
#include "sim/sync.hh"

namespace
{

using namespace lfm;

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

/** Two threads, each: one unlocked increment on a shared counter. */
sim::ProgramFactory
racyFactory()
{
    return [] {
        auto v =
            std::make_shared<std::unique_ptr<sim::SharedVar<int>>>();
        *v = std::make_unique<sim::SharedVar<int>>("c", 0);
        sim::Program p;
        auto body = [v] { (*v)->add(1); };
        p.threads.push_back({"a", body});
        p.threads.push_back({"b", body});
        p.oracle = [v]() -> std::optional<std::string> {
            if ((*v)->peek() != 2)
                return "lost update";
            return std::nullopt;
        };
        return p;
    };
}

/** Threads touching disjoint variables: everything independent. */
sim::ProgramFactory
independentFactory(int threads)
{
    return [threads] {
        auto vars = std::make_shared<
            std::vector<std::unique_ptr<sim::SharedVar<int>>>>();
        for (int i = 0; i < threads; ++i) {
            vars->push_back(std::make_unique<sim::SharedVar<int>>(
                "v" + std::to_string(i), 0));
        }
        sim::Program p;
        for (int i = 0; i < threads; ++i) {
            p.threads.push_back(
                {"t" + std::to_string(i), [vars, i] {
                     (*vars)[static_cast<std::size_t>(i)]->add(1);
                     (*vars)[static_cast<std::size_t>(i)]->add(1);
                 }});
        }
        return p;
    };
}

/** A slice of the kernel suite large enough to exercise every
 * synchronization primitive the parallel engine must reproduce. */
std::vector<const bugs::BugKernel *>
kernelSample()
{
    const auto &all = bugs::allKernels();
    std::vector<const bugs::BugKernel *> sample;
    for (const auto *kernel : all) {
        sample.push_back(kernel);
        if (sample.size() == 8)
            break;
    }
    return sample;
}

explore::StressResult
stressWith(const sim::ProgramFactory &factory, unsigned workers,
           bool countOnly = false, bool stopAtFirst = false)
{
    explore::StressOptions opt;
    opt.runs = 25;
    opt.exec.maxDecisions = 4000;
    opt.countOnly = countOnly;
    opt.stopAtFirst = stopAtFirst;
    return explore::ParallelRunner(workers).stress(
        factory, explore::makePolicy<sim::RandomPolicy>(), opt);
}

void
expectSameStress(const explore::StressResult &a,
                 const explore::StressResult &b)
{
    EXPECT_EQ(a.runs, b.runs);
    EXPECT_EQ(a.manifestations, b.manifestations);
    EXPECT_EQ(a.firstManifestSeed, b.firstManifestSeed);
    EXPECT_DOUBLE_EQ(a.avgDecisions, b.avgDecisions);
    EXPECT_EQ(a.truncatedRuns, b.truncatedRuns);
    EXPECT_EQ(a.manifestedSeeds, b.manifestedSeeds);
}

TEST(ParallelStress, WorkerCountInvariantOnKernelSample)
{
    const auto sample = kernelSample();
    ASSERT_GE(sample.size(), 6u);
    for (const auto *kernel : sample) {
        auto factory = kernel->factory(bugs::Variant::Buggy);
        const auto base = stressWith(factory, 1);
        for (unsigned workers : {2u, 8u}) {
            SCOPED_TRACE(kernel->info().id + " workers=" +
                         std::to_string(workers));
            expectSameStress(base, stressWith(factory, workers));
        }
    }
}

TEST(ParallelStress, StopAtFirstCutsAtTheEarliestSeed)
{
    auto factory = racyFactory();
    const auto base = stressWith(factory, 1, false, true);
    for (unsigned workers : {2u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        expectSameStress(base,
                         stressWith(factory, workers, false, true));
    }
}

TEST(ParallelStress, DeterministicAcrossIdenticalCampaigns)
{
    auto factory = racyFactory();
    expectSameStress(stressWith(factory, 8), stressWith(factory, 8));
}

TEST(ParallelStress, CountOnlyAgreesWithTraced)
{
    for (const auto *kernel : kernelSample()) {
        SCOPED_TRACE(kernel->info().id);
        auto factory = kernel->factory(bugs::Variant::Buggy);
        expectSameStress(stressWith(factory, 1, false),
                         stressWith(factory, 1, true));
    }
}

TEST(ParallelStress, InlinePoolAndShardedOneWorkerAgree)
{
    // The sequential-fallback gate: a 1-worker campaign routes
    // through the inline executor backend, a multi-worker one
    // through the pool, and shards=1 through the multi-process
    // backend — all three must merge to the same result.
    auto factory = racyFactory();
    const auto inlineResult = stressWith(factory, 1);
    const auto poolResult = stressWith(factory, 4);
    expectSameStress(inlineResult, poolResult);

    if (kTsan)
        return;  // shard children respawn sim threads after fork()
    explore::StressOptions opt;
    opt.runs = 25;
    opt.exec.maxDecisions = 4000;
    explore::ShardedOptions sharded;
    sharded.shards = 1;
    sharded.stateDir = testing::TempDir();
    sharded.campaignName =
        "parallel_equiv_" + std::to_string(::getpid());
    const auto shardedResult = explore::shardedStress(
        factory, explore::makePolicy<sim::RandomPolicy>(), opt,
        sharded);
    expectSameStress(inlineResult, shardedResult);
}

explore::DfsResult
dfsWith(const sim::ProgramFactory &factory, unsigned workers,
        bool countOnly = false)
{
    explore::DfsOptions opt;
    opt.maxExecutions = 20000;
    opt.countOnly = countOnly;
    return explore::ParallelRunner(workers).dfs(factory, opt);
}

TEST(ParallelDfs, WorkerCountInvariantWhenExhausted)
{
    // independentFactory(3)'s DFS tree is exponential (that is
    // DPOR's selling point), so the exhaustible case uses 2 threads.
    for (const auto &factory :
         {racyFactory(), independentFactory(2)}) {
        const auto base = dfsWith(factory, 1);
        ASSERT_TRUE(base.exhausted);
        for (unsigned workers : {2u, 8u}) {
            SCOPED_TRACE("workers=" + std::to_string(workers));
            const auto got = dfsWith(factory, workers);
            EXPECT_TRUE(got.exhausted);
            EXPECT_EQ(base.executions, got.executions);
            EXPECT_EQ(base.manifestations, got.manifestations);
            EXPECT_EQ(base.firstManifestPath, got.firstManifestPath);
        }
    }
}

TEST(ParallelDfs, MatchesTheSequentialEntryPoint)
{
    explore::DfsOptions opt;
    opt.maxExecutions = 20000;
    const auto seq = explore::exploreDfs(racyFactory(), opt);
    const auto par = dfsWith(racyFactory(), 1);
    EXPECT_EQ(seq.executions, par.executions);
    EXPECT_EQ(seq.manifestations, par.manifestations);
    EXPECT_EQ(seq.exhausted, par.exhausted);
    EXPECT_EQ(seq.firstManifestPath, par.firstManifestPath);
}

TEST(ParallelDfs, CountOnlyAgreesWithTraced)
{
    const auto traced = dfsWith(racyFactory(), 1, false);
    const auto counted = dfsWith(racyFactory(), 1, true);
    EXPECT_EQ(traced.executions, counted.executions);
    EXPECT_EQ(traced.manifestations, counted.manifestations);
    EXPECT_EQ(traced.exhausted, counted.exhausted);
    EXPECT_EQ(traced.firstManifestPath, counted.firstManifestPath);
}

explore::DporResult
dporWith(const sim::ProgramFactory &factory, unsigned workers,
         bool countOnly = false)
{
    explore::DporOptions opt;
    opt.maxExecutions = 20000;
    opt.countOnly = countOnly;
    return explore::ParallelRunner(workers).dpor(factory, opt);
}

TEST(ParallelDpor, WorkerCountInvariantWhenExhausted)
{
    for (const auto &factory :
         {racyFactory(), independentFactory(3)}) {
        const auto base = dporWith(factory, 1);
        ASSERT_TRUE(base.exhausted);
        for (unsigned workers : {2u, 8u}) {
            SCOPED_TRACE("workers=" + std::to_string(workers));
            const auto got = dporWith(factory, workers);
            EXPECT_TRUE(got.exhausted);
            EXPECT_EQ(base.executions, got.executions);
            EXPECT_EQ(base.manifestations, got.manifestations);
            EXPECT_EQ(base.firstManifestPlan, got.firstManifestPlan);
        }
    }
}

TEST(ParallelDpor, CountOnlyAgreesWithTraced)
{
    const auto traced = dporWith(racyFactory(), 1, false);
    const auto counted = dporWith(racyFactory(), 1, true);
    EXPECT_EQ(traced.executions, counted.executions);
    EXPECT_EQ(traced.manifestations, counted.manifestations);
    EXPECT_EQ(traced.exhausted, counted.exhausted);
    EXPECT_EQ(traced.firstManifestPlan, counted.firstManifestPlan);
}

/** The baton fast path and the legacy condvar handoff must produce
 * identical executions: same choice sets, same decisions, same
 * verdicts, for any seed. */
TEST(ExecutorHandoff, FastAndLegacyProduceIdenticalExecutions)
{
    for (const auto *kernel : kernelSample()) {
        auto factory = kernel->factory(bugs::Variant::Buggy);
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            SCOPED_TRACE(kernel->info().id + " seed=" +
                         std::to_string(seed));
            sim::RandomPolicy fastPolicy, legacyPolicy;
            sim::ExecOptions opt;
            opt.maxDecisions = 4000;
            opt.seed = seed;
            auto fast = sim::runProgram(factory, fastPolicy, opt);
            opt.legacyHandoff = true;
            auto legacy =
                sim::runProgram(factory, legacyPolicy, opt);

            EXPECT_EQ(fast.failed(), legacy.failed());
            EXPECT_EQ(fast.deadlocked, legacy.deadlocked);
            EXPECT_EQ(fast.steps(), legacy.steps());
            ASSERT_EQ(fast.decisions.size(),
                      legacy.decisions.size());
            for (std::size_t i = 0; i < fast.decisions.size(); ++i) {
                EXPECT_EQ(fast.decisions[i].chosen,
                          legacy.decisions[i].chosen);
                EXPECT_EQ(fast.decisions[i].choices.size(),
                          legacy.decisions[i].choices.size());
            }
            EXPECT_EQ(fast.trace.size(), legacy.trace.size());
        }
    }
}

/** Count-only executions keep verdicts and step counts while
 * producing an empty trace. */
TEST(CountOnlyExecution, VerdictsMatchTracedRuns)
{
    for (const auto *kernel : kernelSample()) {
        auto factory = kernel->factory(bugs::Variant::Buggy);
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            SCOPED_TRACE(kernel->info().id + " seed=" +
                         std::to_string(seed));
            sim::RandomPolicy tracedPolicy, countPolicy;
            sim::ExecOptions opt;
            opt.maxDecisions = 4000;
            opt.seed = seed;
            auto traced = sim::runProgram(factory, tracedPolicy, opt);
            opt.collectTrace = false;
            opt.recordDecisions = false;
            auto counted = sim::runProgram(factory, countPolicy, opt);

            EXPECT_EQ(traced.failed(), counted.failed());
            EXPECT_EQ(traced.deadlocked, counted.deadlocked);
            EXPECT_EQ(traced.oracleFailure, counted.oracleFailure);
            EXPECT_EQ(traced.failureMessages,
                      counted.failureMessages);
            EXPECT_EQ(traced.steps(), counted.steps());
            EXPECT_TRUE(counted.trace.events().empty());
            EXPECT_TRUE(counted.decisions.empty());
        }
    }
}

} // namespace
