/**
 * @file
 * Exploration-layer tests: stress statistics, DFS exhaustiveness and
 * bug finding, preemption bounding, and order enforcement.
 */

#include <gtest/gtest.h>

#include <memory>

#include "bugs/registry.hh"
#include "explore/dfs.hh"
#include "explore/order_enforce.hh"
#include "explore/pbound.hh"
#include "explore/runner.hh"
#include "sim/policy.hh"
#include "sim/shared.hh"
#include "sim/sync.hh"

namespace
{

using namespace lfm;
using namespace lfm::explore;

/** Two-thread racy increment; bug = lost update. */
sim::Program
racyProgram()
{
    auto v = std::make_shared<std::unique_ptr<sim::SharedVar<int>>>();
    *v = std::make_unique<sim::SharedVar<int>>("c", 0);
    sim::Program p;
    auto body = [v] { (*v)->add(1); };
    p.threads.push_back({"a", body});
    p.threads.push_back({"b", body});
    p.oracle = [v]() -> std::optional<std::string> {
        if ((*v)->peek() != 2)
            return "lost update";
        return std::nullopt;
    };
    return p;
}

/** Single thread, no bug, tiny schedule tree. */
sim::Program
trivialProgram()
{
    sim::Program p;
    p.threads.push_back({"t", [] { sim::yieldNow(); }});
    return p;
}

TEST(Stress, FindsRacyIncrementSometimes)
{
    sim::RandomPolicy policy;
    StressOptions opt;
    opt.runs = 200;
    auto result = stressProgram(racyProgram, policy, opt);
    EXPECT_EQ(result.runs, 200u);
    EXPECT_GT(result.manifestations, 0u);
    EXPECT_LT(result.manifestations, 200u);
    EXPECT_TRUE(result.firstManifestSeed.has_value());
    EXPECT_GT(result.avgDecisions, 0.0);
    EXPECT_GT(result.rate(), 0.0);
    EXPECT_LT(result.rate(), 1.0);
}

TEST(Stress, StopAtFirstStopsEarly)
{
    sim::RandomPolicy policy;
    StressOptions opt;
    opt.runs = 1000;
    opt.stopAtFirst = true;
    auto result = stressProgram(racyProgram, policy, opt);
    EXPECT_EQ(result.manifestations, 1u);
    EXPECT_LT(result.runs, 1000u);
}

TEST(Dfs, ExhaustsTrivialProgram)
{
    auto result = exploreDfs(trivialProgram);
    EXPECT_TRUE(result.exhausted);
    EXPECT_EQ(result.executions, 1u);
    EXPECT_EQ(result.manifestations, 0u);
}

TEST(Dfs, EnumeratesAllInterleavingsOfRacyPair)
{
    auto result = exploreDfs(racyProgram);
    EXPECT_TRUE(result.exhausted);
    // Two threads, several schedule points each: more than a handful
    // of schedules, and some of them lose the update.
    EXPECT_GT(result.executions, 10u);
    EXPECT_GT(result.manifestations, 0u);
    ASSERT_TRUE(result.firstManifestPath.has_value());

    // The found path replays to a manifesting execution.
    sim::FixedSchedulePolicy replay(*result.firstManifestPath);
    auto exec = sim::runProgram(racyProgram, replay);
    EXPECT_TRUE(exec.failed());
}

TEST(Dfs, RespectsExecutionBudget)
{
    DfsOptions opt;
    opt.maxExecutions = 3;
    auto result = exploreDfs(racyProgram, opt);
    EXPECT_EQ(result.executions, 3u);
    EXPECT_FALSE(result.exhausted);
}

TEST(Dfs, StopAtFirstReturnsEarly)
{
    DfsOptions opt;
    opt.stopAtFirst = true;
    auto result = exploreDfs(racyProgram, opt);
    EXPECT_EQ(result.manifestations, 1u);
    EXPECT_FALSE(result.exhausted);
}

TEST(PBound, ZeroBudgetNeverPreempts)
{
    sim::RandomPolicy inner;
    PreemptionBoundPolicy policy(0, inner);
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        sim::ExecOptions opt;
        opt.seed = seed;
        auto exec = sim::runProgram(racyProgram, policy, opt);
        // Without preemptions each increment runs atomically, so the
        // update can never be lost.
        EXPECT_FALSE(exec.failed()) << "seed " << seed;
        EXPECT_EQ(policy.used(), 0u);
    }
}

TEST(PBound, TwoPreemptionsSufficeForLostUpdate)
{
    sim::RandomPolicy inner;
    PreemptionBoundPolicy policy(2, inner);
    bool manifested = false;
    for (std::uint64_t seed = 0; seed < 300 && !manifested; ++seed) {
        sim::ExecOptions opt;
        opt.seed = seed;
        auto exec = sim::runProgram(racyProgram, policy, opt);
        manifested |= exec.failed();
        EXPECT_LE(policy.used(), 2u);
    }
    EXPECT_TRUE(manifested);
}

TEST(OrderEnforce, GuaranteesRacyManifestation)
{
    // Labels from SharedVar::add below are absent; use a kernel-like
    // program with explicit labels instead.
    auto labelled = [] {
        auto v =
            std::make_shared<std::unique_ptr<sim::SharedVar<int>>>();
        *v = std::make_unique<sim::SharedVar<int>>("c", 0);
        sim::Program p;
        p.threads.push_back({"a", [v] {
                                 int t = (*v)->get("a.r");
                                 (*v)->set(t + 1, "a.w");
                             }});
        p.threads.push_back({"b", [v] {
                                 int t = (*v)->get("b.r");
                                 (*v)->set(t + 1, "b.w");
                             }});
        p.oracle = [v]() -> std::optional<std::string> {
            if ((*v)->peek() != 2)
                return "lost update";
            return std::nullopt;
        };
        return p;
    };

    std::vector<bugs::OrderConstraint> constraints = {
        {"a.r", "b.r"},
        {"b.r", "a.w"},
    };
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        sim::RandomPolicy inner;
        OrderEnforcingPolicy policy(constraints, inner);
        sim::ExecOptions opt;
        opt.seed = seed;
        auto exec = sim::runProgram(labelled, policy, opt);
        EXPECT_FALSE(policy.infeasible()) << "seed " << seed;
        EXPECT_TRUE(exec.failed())
            << "constraint-enforced run did not manifest, seed "
            << seed;
    }
}

TEST(OrderEnforce, NegatedConstraintSuppressesBug)
{
    // Force b's read after a's write: serial order, no lost update.
    auto labelled = [] {
        auto v =
            std::make_shared<std::unique_ptr<sim::SharedVar<int>>>();
        *v = std::make_unique<sim::SharedVar<int>>("c", 0);
        sim::Program p;
        p.threads.push_back({"a", [v] {
                                 int t = (*v)->get("a.r");
                                 (*v)->set(t + 1, "a.w");
                             }});
        p.threads.push_back({"b", [v] {
                                 int t = (*v)->get("b.r");
                                 (*v)->set(t + 1, "b.w");
                             }});
        p.oracle = [v]() -> std::optional<std::string> {
            if ((*v)->peek() != 2)
                return "lost update";
            return std::nullopt;
        };
        return p;
    };
    std::vector<bugs::OrderConstraint> constraints = {
        {"a.w", "b.r"},
    };
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        sim::RandomPolicy inner;
        OrderEnforcingPolicy policy(constraints, inner);
        sim::ExecOptions opt;
        opt.seed = seed;
        auto exec = sim::runProgram(labelled, policy, opt);
        EXPECT_FALSE(exec.failed()) << "seed " << seed;
    }
}

TEST(OrderEnforce, CertificateCheckerWorksOnAKernel)
{
    const auto *kernel = bugs::findKernel("apache-25520");
    ASSERT_NE(kernel, nullptr);
    auto check = checkCertificate(*kernel, 20);
    EXPECT_TRUE(check.holds());
    EXPECT_EQ(check.runs, 20u);
    EXPECT_EQ(check.manifested, 20u);
}

TEST(OrderEnforce, InfeasibleConstraintsAreFlagged)
{
    // "b.r before a.r" plus "a.r before b.r" is unsatisfiable; the
    // policy must detect the dead end rather than hang.
    auto labelled = [] {
        auto v =
            std::make_shared<std::unique_ptr<sim::SharedVar<int>>>();
        *v = std::make_unique<sim::SharedVar<int>>("c", 0);
        sim::Program p;
        p.threads.push_back({"a", [v] { (*v)->get("a.r"); }});
        p.threads.push_back({"b", [v] { (*v)->get("b.r"); }});
        return p;
    };
    std::vector<bugs::OrderConstraint> constraints = {
        {"a.r", "b.r"},
        {"b.r", "a.r"},
    };
    sim::RandomPolicy inner;
    OrderEnforcingPolicy policy(constraints, inner);
    auto exec = sim::runProgram(labelled, policy);
    EXPECT_TRUE(policy.infeasible());
    (void)exec;
}

} // namespace
