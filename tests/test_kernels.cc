/**
 * @file
 * Kernel-suite validation, parameterized over every registered
 * kernel:
 *
 *  - the Buggy variant manifests under some explored schedule;
 *  - the Fixed variant never manifests under stress + bounded DFS;
 *  - the manifestation certificate (<=4 labeled ops for most bugs)
 *    guarantees manifestation when enforced — the executable form of
 *    the study's Finding 5;
 *  - the TmFixed variant (where present) never manifests — the
 *    executable form of the TM-implications finding;
 *  - the right detector family flags the manifesting trace.
 */

#include <gtest/gtest.h>

#include "bugs/registry.hh"
#include "detect/atomicity.hh"
#include "detect/deadlock.hh"
#include "detect/detector.hh"
#include "detect/multivar.hh"
#include "detect/order.hh"
#include "detect/race_hb.hh"
#include "explore/dfs.hh"
#include "explore/order_enforce.hh"
#include "explore/runner.hh"
#include "sim/policy.hh"

namespace
{

using namespace lfm;
using bugs::BugKernel;
using bugs::Variant;

class KernelTest : public ::testing::TestWithParam<const BugKernel *>
{
  protected:
    const BugKernel &kernel() const { return *GetParam(); }
};

std::string
kernelName(const ::testing::TestParamInfo<const BugKernel *> &info)
{
    std::string name = info.param->info().id;
    for (char &c : name) {
        if (c == '-')
            c = '_';
    }
    return name;
}

/** Find one manifesting buggy execution (stress, then DFS). */
std::optional<sim::Execution>
findManifestation(const BugKernel &kernel)
{
    auto factory = kernel.factory(Variant::Buggy);
    sim::RandomPolicy random;
    for (std::uint64_t seed = 0; seed < 300; ++seed) {
        sim::ExecOptions opt;
        opt.seed = seed;
        opt.maxDecisions = 2000;
        auto exec = sim::runProgram(factory, random, opt);
        if (explore::defaultManifest(exec))
            return exec;
    }
    // Rare interleavings: systematic search.
    explore::DfsOptions dfs;
    dfs.maxExecutions = 5000;
    dfs.stopAtFirst = true;
    auto result = explore::exploreDfs(factory, dfs);
    if (result.firstManifestPath) {
        sim::FixedSchedulePolicy policy(*result.firstManifestPath);
        sim::ExecOptions opt;
        opt.maxDecisions = 2000;
        return sim::runProgram(factory, policy, opt);
    }
    return std::nullopt;
}

TEST_P(KernelTest, BuggyVariantManifests)
{
    auto exec = findManifestation(kernel());
    ASSERT_TRUE(exec.has_value())
        << kernel().info().id
        << ": no schedule manifested the buggy variant";
    if (kernel().info().isDeadlock()) {
        EXPECT_TRUE(exec->deadlocked || exec->stepLimitHit)
            << "deadlock kernel manifested without a global block";
    }
}

TEST_P(KernelTest, FixedVariantNeverManifests)
{
    auto factory = kernel().factory(Variant::Fixed);

    sim::RandomPolicy random;
    explore::StressOptions stress;
    stress.runs = 200;
    stress.exec.maxDecisions = 5000;
    auto result = explore::stressProgram(factory, random, stress);
    EXPECT_EQ(result.manifestations, 0u)
        << kernel().info().id << ": fixed variant failed under seed "
        << result.firstManifestSeed.value_or(0);

    explore::DfsOptions dfs;
    dfs.maxExecutions = 1500;
    dfs.maxDecisions = 5000;
    dfs.stopAtFirst = true;
    auto dfsResult = explore::exploreDfs(factory, dfs);
    EXPECT_EQ(dfsResult.manifestations, 0u)
        << kernel().info().id
        << ": fixed variant failed under systematic search";
}

TEST_P(KernelTest, ManifestationCertificateHolds)
{
    const auto &info = kernel().info();
    if (info.manifestation.empty()) {
        // The >4-access bugs have no small certificate; they are
        // covered by BuggyVariantManifests.
        GTEST_SKIP() << "no small certificate (by design)";
    }
    auto check = explore::checkCertificate(kernel(), 40);
    EXPECT_TRUE(check.holds())
        << info.id << ": certificate enforced " << check.manifested
        << "/" << check.runs
        << (check.everInfeasible ? " (infeasible path hit)" : "");
}

TEST_P(KernelTest, CertificateUsesAtMostFourOpsUnlessFlagged)
{
    const auto &info = kernel().info();
    if (info.manifestation.empty())
        GTEST_SKIP() << "certificate-free kernel";
    // generic-3lock-cycle is the deliberate >4-op exception.
    if (info.id == "generic-3lock-cycle") {
        EXPECT_GT(info.manifestationLabels().size(), 4u);
        return;
    }
    EXPECT_LE(info.manifestationLabels().size(), 4u) << info.id;
}

TEST_P(KernelTest, TmVariantNeverManifests)
{
    const auto &info = kernel().info();
    if (!info.hasTmVariant)
        GTEST_SKIP() << "no TM variant";
    auto factory = kernel().factory(Variant::TmFixed);

    sim::RandomPolicy random;
    explore::StressOptions stress;
    stress.runs = 200;
    stress.exec.maxDecisions = 20000;
    auto result = explore::stressProgram(factory, random, stress);
    EXPECT_EQ(result.manifestations, 0u)
        << info.id << ": TM variant failed under seed "
        << result.firstManifestSeed.value_or(0);
}

TEST_P(KernelTest, ManifestingTraceIsFlaggedByTheRightDetector)
{
    const auto &info = kernel().info();
    auto exec = findManifestation(kernel());
    ASSERT_TRUE(exec.has_value()) << info.id;

    if (info.isDeadlock()) {
        // Join/cond deadlocks are reported by the executor itself;
        // lock-cycle deadlocks must also be visible statically.
        detect::DeadlockDetector d;
        const bool lockCycle = info.id != "generic-join-deadlock" &&
                               info.id != "mysql-binlog-cond";
        if (lockCycle) {
            EXPECT_FALSE(d.analyze(exec->trace).empty())
                << info.id << ": lock-order graph saw no cycle";
        }
        return;
    }

    if (info.patterns.count(study::Pattern::Other)) {
        // Livelock/starvation shapes are exactly what none of the
        // pattern detectors target — the study's point about the
        // "other" residue. Nothing to assert beyond manifestation.
        return;
    }

    // Non-deadlock pattern kernels: the corresponding family (or the
    // generic race detectors, whose reports overlap heavily for
    // unsynchronized accesses) must flag the manifesting trace.
    detect::AtomicityDetector atomicity;
    detect::MultiVarDetector multivar;
    detect::OrderDetector order;
    detect::HbRaceDetector race;

    bool flagged = false;
    if (info.patterns.count(study::Pattern::Atomicity)) {
        flagged = !atomicity.analyze(exec->trace).empty() ||
                  !multivar.analyze(exec->trace).empty() ||
                  !race.analyze(exec->trace).empty();
    }
    if (!flagged && info.patterns.count(study::Pattern::Order)) {
        flagged = !order.analyze(exec->trace).empty() ||
                  !race.analyze(exec->trace).empty();
    }
    EXPECT_TRUE(flagged)
        << info.id << ": no detector family flagged the "
        << "manifesting trace";
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelTest,
                         ::testing::ValuesIn(bugs::allKernels()),
                         kernelName);

TEST(KernelRegistry, LookupAndCounts)
{
    EXPECT_GE(bugs::allKernels().size(), 26u);
    EXPECT_NE(bugs::findKernel("apache-25520"), nullptr);
    EXPECT_EQ(bugs::findKernel("no-such-kernel"), nullptr);
    EXPECT_GE(bugs::kernelsOfType(study::BugType::Deadlock).size(),
              7u);
    EXPECT_GE(
        bugs::kernelsWithPattern(study::Pattern::Atomicity).size(),
        11u);
    EXPECT_GE(bugs::kernelsWithPattern(study::Pattern::Order).size(),
              6u);
}

TEST(KernelRegistry, IdsAreUnique)
{
    std::set<std::string> ids;
    for (const auto *k : bugs::allKernels())
        EXPECT_TRUE(ids.insert(k->info().id).second)
            << "duplicate kernel id " << k->info().id;
}

} // namespace
